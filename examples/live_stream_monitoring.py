#!/usr/bin/env python
"""Live ingestion: TCP feed → streaming robust PCA → drift alarms.

Demonstrates the paper's "network TCP sockets ... supported out of the
box as a source of data" path end to end: a feeder thread serves
telemetry vectors over a local socket; the application graph ingests
them with :class:`TCPVectorSource`, updates the robust PCA per tuple,
and a :class:`SubspaceDriftDetector` watches periodic eigensystem
snapshots for the "significant eigensystem deviation [that] could
indicate a hardware failure".

Halfway through the feed, the telemetry's correlation structure is
deliberately broken (a simulated controller firmware bug flips the
load/fan correlation) — the drift detector should alarm shortly after.

Run:  python examples/live_stream_monitoring.py
"""

import numpy as np

from repro.core import RobustIncrementalPCA, SubspaceDriftDetector
from repro.data import ClusterTelemetryModel
from repro.streams import (
    CallbackSink,
    Graph,
    SynchronousEngine,
    TCPVectorSource,
    serve_vectors,
)


def build_feed(n_healthy: int = 2500, n_broken: int = 1200) -> np.ndarray:
    """Telemetry with a structural break at ``n_healthy``."""
    model = ClusterTelemetryModel(n_servers=15, fault_rate=0.0, seed=17)
    rng = np.random.default_rng(9)
    healthy = np.vstack(list(model.stream(n_healthy, rng)))
    broken = np.vstack(list(model.stream(n_broken, rng)))
    # Firmware bug: fan RPMs (sensor index 1 of each server) decouple
    # from load and start oscillating on their own.
    fan_cols = np.arange(1, broken.shape[1], 4)
    t = np.arange(n_broken)[:, None]
    broken[:, fan_cols] = (
        3000.0
        + 1500.0 * np.sin(2 * np.pi * t / 60.0)
        + 100.0 * rng.standard_normal((n_broken, fan_cols.size))
    )
    return np.vstack([healthy, broken]), n_healthy


def main() -> None:
    feed, break_at = build_feed()
    print(f"serving {feed.shape[0]} telemetry vectors "
          f"({feed.shape[1]} channels) over a local TCP socket...")
    port, feeder = serve_vectors(feed)

    est = RobustIncrementalPCA(n_components=3, alpha=0.999, init_size=50)
    # The telemetry's trailing factors are weak, so the basis wanders a
    # little between snapshots even when healthy — rely on the
    # eigenvalue/scale axes (with a loose angle gate) for alarming.
    detector = SubspaceDriftDetector(
        warmup_snapshots=4, angle_threshold=0.8,
        eigenvalue_rtol=0.6, scale_rtol=0.6,
    )
    alarms: list[tuple[int, str]] = []

    def on_tuple(tup, port_idx):
        est.update(tup["x"])
        if est.is_initialized and est.n_seen % 250 == 0:
            report = detector.observe(est.public_state())
            if report and report.alarmed:
                alarms.append((est.n_seen, report.worst_axis()))

    g = Graph("live-monitoring")
    src = g.add(TCPVectorSource("tcp-feed", "127.0.0.1", port))
    sink = g.add(CallbackSink("monitor", on_tuple))
    g.connect(src, sink)
    SynchronousEngine(g).run()
    feeder.join(timeout=10)

    print(f"processed {est.n_seen} observations; structural break "
          f"injected at t={break_at}")
    if alarms:
        for n_seen, axis in alarms:
            print(f"  DRIFT ALARM at t={n_seen} (dominant axis: {axis})")
        first = alarms[0][0]
        print(f"\ndetection delay: {first - break_at} observations "
              f"after the break")
    else:
        print("no drift alarms raised — try a larger structural break")


if __name__ == "__main__":
    main()
