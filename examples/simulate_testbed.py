#!/usr/bin/env python
"""Reproduce the paper's throughput figures on the simulated testbed.

Runs compact versions of the Fig. 6 (throughput vs parallel threads,
single-node vs distributed placement) and Fig. 7 (tuples/s/thread vs
dimensionality) sweeps on the discrete-event model of the 10-node
testbed, and prints the same series the paper plots.

Run:  python examples/simulate_testbed.py [--full]
      (--full uses the complete sweep grids; takes a few minutes)
"""

import sys

from repro.experiments import Fig6Config, Fig7Config, run_fig6, run_fig7


def main(full: bool = False) -> None:
    if full:
        fig6_cfg = Fig6Config()
        fig7_cfg = Fig7Config()
    else:
        fig6_cfg = Fig6Config(
            threads=(1, 5, 10, 20, 30), warmup_s=0.2, window_s=0.5
        )
        fig7_cfg = Fig7Config(
            dims=(250, 500, 1000, 2000), warmup_s=0.2, window_s=0.5
        )

    print("simulating Fig. 6: throughput vs parallel threads "
          f"(d={fig6_cfg.dim}, N={fig6_cfg.sync_window})...\n")
    fig6 = run_fig6(fig6_cfg)
    print(fig6.table().render())
    threads, rate = fig6.distributed_peak()
    print(f"\ndistributed peak: {rate:,.0f} tuples/s at {threads} threads "
          f"(paper: optimum at 2 threads/node = 20 threads)")

    print("\nsimulating Fig. 7: tuples/s/thread vs dimensionality...\n")
    fig7 = run_fig7(fig7_cfg)
    print(fig7.table().render())
    d = fig7_cfg.dims[0]
    print(
        f"\nat d={d}: 20 threads reach "
        f"{fig7.per_thread(20, d) / fig7.per_thread(10, d):.0%} of the "
        "10-thread per-thread rate (interconnect saturation)"
    )


if __name__ == "__main__":
    main(full="--full" in sys.argv)
