#!/usr/bin/env python
"""Parallel streaming PCA with ring synchronization (Fig. 2 end to end).

Builds the paper's full analysis graph — source → threaded split → four
PCA engines ⇄ sync controller — and runs it on the *threaded* runtime,
so the engines genuinely process their sub-streams concurrently.  Engines
announce sync-readiness through the data-driven 1.5·N gate; the controller
routes eigensystems around the ring; the final answer is the merge of all
engines' states.

Run:  python examples/parallel_streaming.py
"""

import numpy as np

from repro.core import largest_principal_angle
from repro.data import (
    GrossOutlierInjector,
    PlantedSubspaceModel,
    VectorStream,
)
from repro.parallel import ParallelStreamingPCA


def main() -> None:
    model = PlantedSubspaceModel(
        dim=120,
        signal_variances=(25.0, 16.0, 9.0),
        noise_std=0.5,
        seed=3,
    )
    rng = np.random.default_rng(10)
    injector = GrossOutlierInjector(rate=0.03, amplitude=25.0, rng=rng)
    print("generating a contaminated stream of 12000 observations...")
    stream = np.vstack([injector(x)[0] for x in model.stream(12_000, rng)])

    runner = ParallelStreamingPCA(
        n_components=3,
        n_engines=4,
        alpha=0.998,              # effective window N = 500
        strategy="ring",          # Fig. 3's circular pattern
        runtime="threaded",
        split_strategy="random",  # the paper's load balancer
        split_seed=5,
    )
    print("running the Fig. 2 graph on the threaded runtime...")
    result = runner.run(VectorStream.from_array(stream))

    print(f"\nwall time: {result.run_stats.wall_time_s:.2f}s, "
          f"throughput: {result.run_stats.throughput():,.0f} tuples/s")
    print(f"sync traffic: {result.sync_stats.n_states_routed} states "
          f"routed, {result.sync_stats.n_merge_commands} merges")

    print("\nper-engine report:")
    for rep in result.engine_reports:
        print(
            f"  engine {rep['engine']}: {rep['n_local']:>5} tuples, "
            f"{rep['n_outliers']:>3} outliers flagged, "
            f"{rep['n_syncs_received']} merges received"
        )

    angle = largest_principal_angle(result.global_state.basis, model.basis)
    print(f"\nglobal eigenvalues: {np.round(result.eigenvalues, 2)} "
          f"(truth: {np.round(model.eigenvalues, 2)})")
    print(f"global subspace angle to truth: {angle:.3f} rad")

    # "The resulting eigensystem can be obtained from any node":
    print("\nper-engine subspace angles to truth:")
    for engine_id, state in sorted(result.engine_states.items()):
        a = largest_principal_angle(state.basis, model.basis)
        print(f"  engine {engine_id}: {a:.3f} rad")

    flagged = result.outlier_seqs()
    truth = set((injector.steps - 1).tolist())
    hits = sum(1 for s in flagged if int(s) in truth)
    print(f"\noutliers: {len(flagged)} flagged across engines, "
          f"{hits}/{len(truth)} injected ones caught")


if __name__ == "__main__":
    main()
