#!/usr/bin/env python
"""Quickstart: robust streaming PCA on a contaminated data stream.

Generates a Gaussian stream with a planted low-rank subspace, corrupts 4%
of the observations with gross outliers, and runs both the classical and
the robust incremental PCA over it — the Fig. 1 story of the paper in
~30 lines of user code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    IncrementalPCA,
    OutlierLog,
    RobustIncrementalPCA,
    largest_principal_angle,
)
from repro.data import GrossOutlierInjector, PlantedSubspaceModel


def main() -> None:
    # A 100-dimensional stream with 4 strong directions + noise.
    model = PlantedSubspaceModel(
        dim=100,
        signal_variances=(25.0, 16.0, 9.0, 4.0),
        noise_std=0.5,
        seed=7,
    )
    rng = np.random.default_rng(42)
    injector = GrossOutlierInjector(rate=0.04, amplitude=20.0, rng=rng)

    classic = IncrementalPCA(n_components=4, alpha=0.998)
    robust = RobustIncrementalPCA(n_components=4, alpha=0.998)
    log = OutlierLog()

    print("streaming 6000 observations (4% gross outliers)...")
    for x in injector.wrap(model.stream(6000, rng)):
        classic.update(x)
        log.observe(robust.update(x))

    print(f"\ntrue eigenvalues    : {np.round(model.eigenvalues, 2)}")
    print(f"classic estimate    : {np.round(classic.eigenvalues_, 2)}")
    print(f"robust estimate     : {np.round(robust.eigenvalues_, 2)}")

    ang_c = largest_principal_angle(classic.state.basis, model.basis)
    ang_r = largest_principal_angle(
        robust.state.basis[:, :4], model.basis
    )
    print(f"\nsubspace angle to truth — classic: {ang_c:.3f} rad "
          f"(captured by outliers!)")
    print(f"subspace angle to truth — robust : {ang_r:.3f} rad")

    stats = log.detection_stats(injector.steps)
    print(
        f"\noutlier detection: {int(stats['true_positives'])} hits, "
        f"precision {stats['precision']:.2%}, recall {stats['recall']:.2%}"
    )


if __name__ == "__main__":
    main()
