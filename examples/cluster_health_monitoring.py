#!/usr/bin/env python
"""Cluster-health monitoring with streaming robust PCA.

The paper's conclusion proposes exactly this: stream per-server telemetry
(CPU/disk temperatures, fan RPMs, power) through the robust PCA; the
healthy cluster is low-rank (shared load + ambient + diurnal factors),
and "a significant eigensystem deviation could indicate a hardware
failure".  Here a fan failure and thermal runaway are injected into the
simulated telemetry and surface as residual spikes/outlier flags.

Run:  python examples/cluster_health_monitoring.py
"""

import numpy as np

from repro.core import RobustIncrementalPCA
from repro.data import ClusterTelemetryModel


def main() -> None:
    model = ClusterTelemetryModel(
        n_servers=25,      # 25 servers × 4 sensors = 100-dim stream
        fault_rate=0.0,
        seed=13,
    )
    rng = np.random.default_rng(4)
    est = RobustIncrementalPCA(
        n_components=3, alpha=0.995, init_size=50
    )

    print(f"monitoring {model.n_servers} servers "
          f"({model.dim} sensor channels)...")
    print("learning the healthy regime (3000 ticks)...")
    for x in model.stream(3000, rng):
        est.update(x)
    print(f"  residual scale sigma² = {est.scale_:.1f}")
    print(f"  top eigenvalues (latent factors): "
          f"{np.round(est.eigenvalues_, 1)}")

    print("\nenabling hardware faults (fault_rate = 2%/tick)...")
    model.fault_rate = 0.02
    alarms: list[tuple[int, float]] = []
    for x in model.stream(1000, rng):
        res = est.update(x)
        if res is not None and res.is_outlier:
            alarms.append((model._step, res.scaled_residual))

    fault_steps = set(model.fault_steps().tolist())
    print(f"\ninjected faults: {len(model.faults)}")
    for ev in model.faults:
        print(f"  t={ev.step}: {ev.kind} on server {ev.server} "
              f"({ev.duration} ticks)")

    hits = sum(1 for step, _ in alarms if step in fault_steps)
    print(f"\nalarms raised: {len(alarms)} "
          f"({hits} during a fault window)")
    if alarms:
        worst = max(alarms, key=lambda a: a[1])
        print(f"largest deviation: t={worst[0]}, r²/σ² = {worst[1]:.1f}")
    if len(alarms) == 0:
        print("no alarms — try a longer fault window or higher fault_rate")


if __name__ == "__main__":
    main()
