#!/usr/bin/env python
"""Galaxy eigenspectra from a stream of SDSS-like spectra (Figs. 4–5).

The paper's headline application: stream synthetic galaxy spectra —
redshifted, gappy, brightness-scattered, with a sprinkle of junk — through
the robust incremental PCA.  Spectra are mean-flux normalized on the fly,
gaps are patched with the running eigenbasis, and the eigensystem is
checkpointed periodically so the convergence history can be inspected
afterwards (Fig. 4 "noisy" → Fig. 5 "smooth, physical").

Run:  python examples/galaxy_spectra_pipeline.py [output_dir]
"""

import sys
import tempfile

import numpy as np

from repro.core import (
    NormalizationError,
    RobustIncrementalPCA,
    principal_angles,
    roughness,
    unit_mean_flux,
)
from repro.data import GalaxySpectrumModel, WavelengthGrid, shuffled
from repro.io import CheckpointStore, write_vectors_csv


def main(output_dir: str | None = None) -> None:
    if output_dir is None:
        output_dir = tempfile.mkdtemp(prefix="eigenspectra-")

    model = GalaxySpectrumModel(
        grid=WavelengthGrid(lam_min=3800.0, lam_max=9200.0, n_bins=400),
        z_max=0.2,          # redshift-correlated blue-end gaps
        noise_std=0.06,
        dropout_rate=0.15,  # random snippet dropouts
        outlier_rate=0.01,  # junk spectra
        seed=11,
    )
    rng = np.random.default_rng(1)
    print("generating 4000 synthetic galaxy spectra...")
    sample = model.sample(4000, rng)
    gap_fraction = float(np.mean(~np.isfinite(sample.flux)))
    print(f"  gap fraction: {gap_fraction:.1%}, "
          f"junk spectra: {int(sample.is_outlier.sum())}")

    est = RobustIncrementalPCA(
        n_components=4,
        extra_components=2,   # higher-order gap residual correction
        alpha=0.9995,
        init_size=32,
    )
    store = CheckpointStore(output_dir, every=500)

    dropped = 0
    # Randomized order: "it is clearly disadvantageous to put the spectra
    # on the stream in a systematic order" (§II-B).
    for flux in shuffled(sample.flux, np.random.default_rng(2)):
        try:
            x = unit_mean_flux(flux)
        except NormalizationError:
            dropped += 1
            continue
        est.update(x)
        if est.is_initialized:
            store.maybe_save(est.state)
    store.save(est.state)
    print(f"processed {est.n_seen} spectra "
          f"({dropped} unnormalizable dropped, "
          f"{est.n_outliers} flagged as outliers)")

    # Convergence history: roughness of the leading eigenspectra.
    history = store.load_history()
    print("\neigenspectrum roughness over the stream "
          "(smoothness = robustness, Fig. 5):")
    print(f"{'n_seen':>8}  " + "  ".join(f"{'e'+str(j+1):>9}" for j in range(4)))
    for n_seen, state in history:
        vals = [
            roughness(state.basis[:, j])
            for j in range(min(4, state.n_components))
        ]
        print(f"{n_seen:>8}  " + "  ".join(f"{v:9.2e}" for v in vals))

    # Compare against the clean-population ground truth.
    _, truth, _ = model.ground_truth_basis(4)
    angles = principal_angles(est.state.basis[:, :4], truth)
    print(f"\nprincipal angles to the clean-population basis: "
          f"{np.round(angles, 3)}")

    # Dump the final eigenspectra for plotting.
    out_csv = f"{output_dir}/eigenspectra.csv"
    rows = [model.grid.wavelengths] + [
        est.state.basis[:, j] for j in range(4)
    ]
    write_vectors_csv(out_csv, rows)
    print(f"final eigenspectra written to {out_csv} "
          f"(rows: wavelength, e1..e4)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
