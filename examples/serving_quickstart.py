#!/usr/bin/env python
"""Streaming-PCA-as-a-service in one file: boot the serving layer,
ingest two tenants' spectra concurrently, and query the published
eigenbasis over HTTP while a WebSocket watches snapshot events.

The serving layer (``repro.serving``) separates the three concerns the
multi-tenant story needs:

* **ingestion** — clients POST row blocks to ``/v1/<tenant>/ingest``;
  admission control (a per-tenant token-bucket valve) answers 429 with
  ``Retry-After`` under overload instead of silently dropping rows;
* **compute** — a shared pool of engine lanes drains every tenant's
  queue and folds rows into that tenant's robust streaming PCA model;
* **query** — reads (``transform``, ``reconstruction_error``,
  ``outlier_score``, ``eigenspectra``) are answered from immutable
  copy-on-publish snapshots, so a query never waits on model updates.

Run:  python examples/serving_quickstart.py
"""

import numpy as np

from repro.serving import (
    PCAService,
    ServingClient,
    ServingConfig,
    ServingServer,
    TenantSpec,
    WebSocketClient,
)


def make_spectra(n: int, dim: int = 24, seed: int = 0) -> np.ndarray:
    """Galaxy-spectra-like rows: a planted 3-d subspace plus noise."""
    plant = np.random.default_rng(42).normal(size=(3, dim))
    rng = np.random.default_rng(seed)
    coeff = rng.normal(size=(n, 3)) * np.array([6.0, 4.0, 2.0])
    return coeff @ plant + 0.1 * rng.normal(size=(n, dim))


def main() -> None:
    service = PCAService(ServingConfig(n_lanes=2, elastic=False))
    # Two tenants sharing the engine pool: "survey" unthrottled,
    # "guest" rate-limited so a bursty client is shed, not crashed.
    service.add_tenant(TenantSpec("survey", n_components=4, init_size=20))
    service.add_tenant(TenantSpec(
        "guest", n_components=2, init_size=20, max_rate_hz=500.0,
    ))
    server = ServingServer(service, port=0)
    server.start()
    print(f"serving two tenants on {server.url}")

    try:
        with ServingClient(server.host, server.port) as client:
            # Watch the survey tenant's push channel while we work.
            with WebSocketClient(
                server.host, server.port, "survey"
            ) as ws:
                assert ws.recv_event()["event"] == "subscribed"

                # -- ingestion ---------------------------------------
                for i in range(6):
                    reply = client.ingest(
                        "survey", make_spectra(64, seed=i)
                    )
                    assert reply.code == 202, reply.body
                guest_codes = []
                for i in range(12):
                    reply = client.ingest(
                        "guest", make_spectra(64, seed=100 + i)
                    )
                    guest_codes.append(reply.code)
                print(
                    "survey: 6 blocks admitted; guest admission codes:",
                    guest_codes,
                )
                assert 429 in guest_codes, "guest valve never shed?"

                # Wait for the first published snapshot event.
                while True:
                    event = ws.recv_event()
                    if event and event["event"] == "snapshot_published":
                        print(
                            "snapshot v%d published for %s" % (
                                event["version"], event["tenant"],
                            )
                        )
                        break

            # -- queries (served from the snapshot, lock-free) -------
            probe = make_spectra(5, seed=999)
            reply = client.transform("survey", probe)
            assert reply.code == 200
            print(
                "transform: %d rows -> %d coefficients each "
                "(snapshot v%d, age %.3fs)" % (
                    len(reply.body["coefficients"]),
                    len(reply.body["coefficients"][0]),
                    reply.body["snapshot_version"],
                    reply.body["snapshot_age_s"],
                )
            )

            outlier = probe.copy()
            outlier[0] += 30.0  # blast one row off the subspace
            reply = client.outlier_score("survey", outlier)
            flags = reply.body["is_outlier"]
            print("outlier flags (first row corrupted):", flags)
            assert flags[0] and not any(flags[1:])

            reply = client.eigenspectra("survey", top_k=3)
            eigs = reply.body["spectra"]["eigenvalues"]
            print("top-3 eigenvalues:", [round(e, 2) for e in eigs])

            reply = client.ready()
            print("readiness:", reply.code, reply.body["health_status"])
    finally:
        server.stop()
    print("serving quickstart done")


if __name__ == "__main__":
    main()
