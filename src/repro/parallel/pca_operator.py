"""The stateful streaming-PCA operator (the paper's custom C++ operator).

Section III-A.2: "the stateful Streaming PCA operator stores the
eigenvalues and eigenvectors (the eigensystem) as well as other state
variables as class members.  Upon receiving a new input tuple, its
internal states are continuously updated by computationally inexpensive
algebraic operations."

Port layout (mirroring Fig. 2):

* input 0 — data tuples (field ``x``): observations to learn from.
* input 1 — control tuples from the sync controller (not required for
  punctuation, so a silent controller never stalls shutdown).
* output 0 — control channel to the sync controller (``ready`` /
  ``state`` / ``final`` messages).
* output 1 — per-observation diagnostics (``seq``, ``weight``,
  ``is_outlier``, ``r2``) plus periodic ``snapshot`` tuples carrying the
  eigensystem for checkpoint sinks.

The control protocol is deliberately tiny:

* the operator announces ``ready`` when its data-driven gate opens
  (> 1.5·N observations since the last sync, Section II-C);
* the controller answers ``share``; the operator replies with ``state``
  (a *copy* of its truncated eigensystem);
* the controller routes that state to target engines as ``merge``;
  receivers combine it with their local state via
  :func:`repro.core.merge.merge_eigensystems` and reset their gate.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.merge import merge_eigensystems
from ..core.robust import RobustIncrementalPCA
from ..streams.operators import Operator
from ..streams.tuples import StreamTuple, inherit_event_time

__all__ = ["StreamingPCAOperator"]


class StreamingPCAOperator(Operator):
    """Wrap a :class:`RobustIncrementalPCA` as a graph operator.

    Parameters
    ----------
    engine_id:
        Stable integer identity used in the sync protocol.
    estimator:
        The streaming estimator this operator drives.
    sync_gate_factor:
        Multiplier on the effective window for the data-driven sync gate
        (the paper uses 1.5).
    snapshot_every:
        Emit a ``snapshot`` diagnostics tuple with the current state every
        this many observations (0 disables).
    emit_diagnostics:
        Emit the per-observation diagnostics tuples (disable for pure
        throughput runs).
    heartbeat_every:
        Send a lightweight ``heartbeat`` control message to the sync
        controller every this many data tuples (0 disables).  Heartbeats
        give the controller's membership tracking a liveness signal even
        while the sync gate is closed, so a silent-but-healthy engine is
        never mistaken for a dead one.
    """

    def __init__(
        self,
        name: str,
        engine_id: int,
        estimator: RobustIncrementalPCA,
        *,
        sync_gate_factor: float = 1.5,
        snapshot_every: int = 0,
        emit_diagnostics: bool = True,
        heartbeat_every: int = 0,
    ) -> None:
        super().__init__(
            name, n_inputs=2, n_outputs=2, punctuation_ports={0}
        )
        if sync_gate_factor <= 0:
            raise ValueError(
                f"sync_gate_factor must be positive, got {sync_gate_factor}"
            )
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if heartbeat_every < 0:
            raise ValueError("heartbeat_every must be >= 0")
        self.engine_id = int(engine_id)
        self.estimator = estimator
        self.sync_gate_factor = float(sync_gate_factor)
        self.snapshot_every = int(snapshot_every)
        self.emit_diagnostics = bool(emit_diagnostics)
        self.heartbeat_every = int(heartbeat_every)
        self.n_syncs_received = 0
        self.n_states_shared = 0
        self.n_data_tuples = 0
        #: Rows consumed, counting every row of a block tuple (equals
        #: ``n_data_tuples`` on an unbatched stream).
        self.n_data_rows = 0
        self.n_heartbeats_sent = 0
        self.n_reseeds = 0
        self._ready_announced = False
        #: Optional :class:`~repro.streams.health.HealthMonitor`; installed
        #: via :meth:`attach_health_monitor` (None = zero overhead).
        self._health_monitor = None
        #: Guards every estimator state mutation.  The estimator's block
        #: update mutates the eigensystem *in place*, so a reader on
        #: another thread (a serving snapshot publisher, an operator
        #: dashboard) copying ``public_state()`` mid-update would see a
        #: torn basis.  Within the engine the operator is single-threaded
        #: and the lock is uncontended; cross-thread readers must go
        #: through :meth:`published_state`.
        self._state_lock = threading.RLock()
        self._snapshot_listeners: list[
            Callable[[int, Eigensystem], None]
        ] = []

    # -- pickling (ProcessEngine ships operators to workers) -------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Locks don't pickle; snapshot listeners are process-local
        # closures (a worker cannot call back into the parent anyway).
        state["_state_lock"] = None
        state["_snapshot_listeners"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._state_lock = threading.RLock()

    def _lock(self) -> threading.RLock:
        # ProcessEngine's sanitizer nulls the lock before shipping the
        # operator to a fork-context worker (no pickle round-trip means
        # __setstate__ never runs there); recreate on first use.
        lock = self._state_lock
        if lock is None:
            lock = self._state_lock = threading.RLock()
        return lock

    # -- model-health monitoring ----------------------------------------

    def attach_health_monitor(self, monitor) -> None:
        """Attach a model-health monitor (see ``repro.streams.health``)."""
        self._health_monitor = monitor

    def add_snapshot_listener(
        self, fn: Callable[[int, Eigensystem], None]
    ) -> None:
        """Call ``fn(engine_id, state_copy)`` at every snapshot emission.

        The serving layer's snapshot publisher hangs off this hook: the
        state handed to listeners is a private copy taken under the
        state lock (copy-on-publish), safe to read from any thread.
        """
        if self._snapshot_listeners is None:
            self._snapshot_listeners = []
        self._snapshot_listeners.append(fn)

    def published_state(self) -> Eigensystem | None:
        """A torn-free copy of the current state, from any thread.

        ``None`` during warm-up.  This is the only supported way to read
        the model concurrently with ``update``/``update_block`` — the
        raw ``estimator.state`` is mutated in place and may be torn.
        """
        with self._lock():
            if not self.estimator.is_initialized:
                return None
            return self.estimator.public_state()

    def bind_telemetry(self, telemetry) -> None:
        """Telemetry hook (called by ``Telemetry.attach_graph``)."""
        if self._health_monitor is not None:
            self._health_monitor.bind_telemetry(telemetry)

    # ------------------------------------------------------------------

    def process(self, tup: StreamTuple, port: int) -> None:
        if port == 0:
            self._process_data(tup)
        else:
            self._process_control(tup)

    def _process_data(self, tup: StreamTuple) -> None:
        self.n_data_tuples += 1
        if "xs" in tup.payload:
            self._process_block(tup)
            return
        self.n_data_rows += 1
        with self._lock():
            result = self.estimator.update(tup["x"])
        if result is not None and self.emit_diagnostics:
            self.submit(
                inherit_event_time(
                    StreamTuple.data(
                        seq=int(tup.get("seq", -1)),
                        weight=float(result.weight),
                        r2=float(result.residual_norm2),
                        is_outlier=bool(result.is_outlier),
                        engine=self.engine_id,
                    ),
                    tup,
                ),
                port=1,
            )
        monitor = self._health_monitor
        if monitor is not None:
            x = np.asarray(tup["x"])
            if result is not None:
                monitor.note_rows(
                    1,
                    n_gap_rows=int(bool(np.isnan(x).any())),
                    n_outliers=int(result.is_outlier),
                    weight_sum=float(result.weight),
                    r2_sum=float(result.residual_norm2),
                )
            else:
                monitor.note_rows(1, n_gap_rows=int(bool(np.isnan(x).any())))
            monitor.maybe_check(self.estimator)
        self._maybe_snapshot(before=self.estimator.n_seen - 1)
        self._maybe_heartbeat()
        self._maybe_announce_ready()

    def _process_block(self, tup: StreamTuple) -> None:
        """Consume one ``(k, d)`` block tuple from an upstream Batcher.

        The whole block goes through the estimator's vectorized
        :meth:`update_block`; per-row diagnostics (when enabled) are
        re-expanded afterwards using the result's row-index map, so the
        diagnostics stream is identical to the unbatched one.
        """
        xs = np.asarray(tup["xs"], dtype=np.float64)
        n_before = self.estimator.n_seen
        with self._lock():
            result = self.estimator.update_block(xs)
        self.n_data_rows += xs.shape[0]
        if self.emit_diagnostics and result.n_processed:
            seqs = tup.get("seqs")
            indices = result.indices
            for j in range(result.n_processed):
                if seqs is not None and indices is not None:
                    seq = int(seqs[int(indices[j])])
                else:
                    seq = -1
                self.submit(
                    inherit_event_time(
                        StreamTuple.data(
                            seq=seq,
                            weight=float(result.weights[j]),
                            r2=float(result.residual_norm2[j]),
                            is_outlier=bool(result.is_outlier[j]),
                            engine=self.engine_id,
                        ),
                        tup,
                    ),
                    port=1,
                )
        monitor = self._health_monitor
        if monitor is not None:
            n_gaps = int(np.isnan(xs).any(axis=1).sum())
            if result.n_processed:
                monitor.note_rows(
                    xs.shape[0],
                    n_gap_rows=n_gaps,
                    n_outliers=int(np.count_nonzero(result.is_outlier)),
                    weight_sum=float(np.sum(result.weights)),
                    r2_sum=float(np.sum(result.residual_norm2)),
                )
            else:
                monitor.note_rows(xs.shape[0], n_gap_rows=n_gaps)
            monitor.maybe_check(self.estimator)
        self._maybe_snapshot(before=n_before)
        self._maybe_heartbeat()
        self._maybe_announce_ready()

    def _maybe_heartbeat(self) -> None:
        if (
            self.heartbeat_every
            and self.n_data_tuples % self.heartbeat_every == 0
        ):
            self.n_heartbeats_sent += 1
            self.submit(
                StreamTuple.control(
                    type="heartbeat", engine=self.engine_id
                ),
                port=0,
            )

    def _maybe_snapshot(self, *, before: int) -> None:
        """Emit a snapshot when a block crossed a snapshot boundary.

        The sequential path emitted at every exact multiple of
        ``snapshot_every``; a block can jump past several multiples at
        once, so the check is "did ``n_seen // snapshot_every``
        advance" — one snapshot per crossing, never zero.
        """
        if not (self.snapshot_every and self.estimator.is_initialized):
            return
        after = self.estimator.n_seen
        if after // self.snapshot_every > max(before, 0) // self.snapshot_every:
            with self._lock():
                state = self.estimator.public_state()
            self.submit(
                StreamTuple.data(
                    state=state,
                    engine=self.engine_id,
                    kind="snapshot",
                ),
                port=1,
            )
            for fn in self._snapshot_listeners or ():
                try:
                    fn(self.engine_id, state)
                except Exception:
                    pass  # a broken listener must not stall the stream

    def _maybe_announce_ready(self) -> None:
        if (
            not self._ready_announced
            and self.estimator.ready_to_sync(self.sync_gate_factor)
        ):
            self._ready_announced = True
            self.submit(
                StreamTuple.control(type="ready", engine=self.engine_id),
                port=0,
            )

    def _process_control(self, tup: StreamTuple) -> None:
        msg_type = tup.get("type")
        if msg_type == "share":
            self._share_state()
        elif msg_type == "merge":
            self._merge_state(
                tup["state"], reseed=bool(tup.get("reseed", False))
            )
        elif msg_type == "request_state":
            self._share_state()
        else:
            raise ValueError(
                f"{self.name}: unknown control message type {msg_type!r}"
            )

    def _share_state(self) -> None:
        if not self.estimator.is_initialized:
            return
        self.n_states_shared += 1
        with self._lock():
            state = self.estimator.public_state()
        self.submit(
            StreamTuple.control(
                type="state",
                engine=self.engine_id,
                state=state,
            ),
            port=0,
        )

    def _merge_state(
        self, incoming: Eigensystem, *, reseed: bool = False
    ) -> None:
        if not self.estimator.is_initialized:
            # Nothing local yet.  An ordinary merge is dropped (the
            # warm-up buffer machinery expects to initialize itself and
            # the next sync round will cover us), but a controller
            # *re-seed* — sent to a restarted engine — is adopted
            # outright so the rejoined peer starts from the ensemble's
            # pooled view instead of a cold warm-up.
            if reseed:
                adopt = getattr(self.estimator, "adopt_state", None)
                if adopt is not None:
                    with self._lock():
                        adopt(incoming)
                    self.n_reseeds += 1
                    self._ready_announced = False
                    if self._health_monitor is not None:
                        self._health_monitor.on_merge(
                            self.estimator, reseed=True
                        )
            return
        with self._lock():
            local = self.estimator.state
            k = local.n_components
            merged = merge_eigensystems([local, incoming], max(k, 1))
            self.estimator.replace_state(merged)
        self.n_syncs_received += 1
        if reseed:
            self.n_reseeds += 1
        self._ready_announced = False
        if self._health_monitor is not None:
            self._health_monitor.on_merge(self.estimator, reseed=reseed)

    # -- checkpoint/restart protocol (repro.streams.supervision) ---------

    def snapshot_state(self) -> Eigensystem | None:
        """An independent copy of the recoverable state (``None`` during
        warm-up, before the estimator initializes)."""
        with self._lock():
            if not self.estimator.is_initialized:
                return None
            return self.estimator.public_state()

    def restore_state(self, state: Eigensystem) -> None:
        """Roll the estimator back to a snapshot taken by
        :meth:`snapshot_state`; re-arms the sync gate so the recovered
        engine can resynchronize promptly."""
        if state is None:
            return
        with self._lock():
            if not self.estimator.is_initialized:
                # A respawned worker process holds a fresh estimator:
                # adopt the checkpoint outright (estimators without
                # adopt_state keep the old semantics — restart from a
                # clean warm-up).
                adopt = getattr(self.estimator, "adopt_state", None)
                if adopt is not None:
                    adopt(state)
                    self._ready_announced = False
                return
            self.estimator.replace_state(state)
        self._ready_announced = False

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Ship the final state to the controller for global merging."""
        if self.estimator.is_initialized:
            with self._lock():
                state = self.estimator.public_state()
            self.submit(
                StreamTuple.control(
                    type="final",
                    engine=self.engine_id,
                    state=state,
                ),
                port=0,
            )

    # convenience ---------------------------------------------------------

    def diagnostics(self) -> dict[str, Any]:
        """Operator-level counters for run reports."""
        return {
            "engine": self.engine_id,
            # Tuples this operator itself consumed.
            "n_local": self.n_data_tuples,
            # Rows consumed (each block tuple counts all its rows).
            "n_local_rows": self.n_data_rows,
            # Pooled count of the current state: merges add the remote
            # engines' counts (the paper: synchronization "significantly
            # increases its weight"), so this exceeds n_local after syncs.
            "n_seen": self.estimator.n_seen,
            "n_outliers": getattr(self.estimator, "n_outliers", 0),
            "n_syncs_received": self.n_syncs_received,
            "n_states_shared": self.n_states_shared,
            "n_heartbeats_sent": self.n_heartbeats_sent,
            "n_reseeds": self.n_reseeds,
        }
