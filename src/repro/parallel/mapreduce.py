"""Offline partition-and-merge PCA — the batch dataflow baseline.

The paper's introduction motivates streaming against the established
offline route: "batch parallel processing frameworks such as MapReduce,
DryadLINQ and Spark have been successfully used for these algorithms
given their heavy use of partial sums".  This module implements that
baseline so the experiments can compare against it:

* **map**: fit an independent (robust) batch PCA on each partition;
* **reduce**: merge the per-partition eigensystems with the same
  law-of-total-covariance combination the streaming sync uses (eq. 15).

With ``n_workers > 1`` the map phase genuinely runs in parallel worker
*processes* (the per-partition SVDs release no GIL through Python-level
loops, so threads would not help).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np

from ..core.batch import BatchPCA, BatchRobustPCA
from ..core.eigensystem import Eigensystem
from ..core.merge import merge_eigensystems
from .partition import partition_round_robin

__all__ = ["MapReducePCAResult", "mapreduce_pca"]


@dataclass(frozen=True)
class MapReducePCAResult:
    """Outcome of the partition-and-merge computation.

    Attributes
    ----------
    state:
        The merged global eigensystem.
    partition_states:
        The per-partition map outputs, in partition order.
    """

    state: Eigensystem
    partition_states: tuple[Eigensystem, ...]

    @property
    def eigenvalues(self) -> np.ndarray:
        """Merged eigenvalues (descending)."""
        return self.state.eigenvalues

    @property
    def components(self) -> np.ndarray:
        """Merged eigenvectors as rows ``(p, d)``."""
        return self.state.basis.T


def _fit_partition(
    args: tuple[np.ndarray, int, int, bool, float]
) -> dict:
    x, n_components, extra, robust, delta = args
    p = n_components + extra
    if robust:
        fit = BatchRobustPCA(p, delta=delta).fit(x)
        # weights_ live on the W scale (max ρ'(0)); divide it out so the
        # merge weights read as *effective observation counts* — a
        # partition whose rows were largely rejected counts for less.
        weight_sum = float(
            np.sum(fit.weights_) / fit.rho_.weight_at_zero()
        )
    else:
        fit = BatchPCA(p).fit(x)
        weight_sum = float(x.shape[0])
    state = fit.to_eigensystem()
    state.sum_count = float(x.shape[0])
    state.sum_weight = weight_sum
    state.n_seen = x.shape[0]
    return state.to_dict()


def mapreduce_pca(
    x: np.ndarray,
    n_components: int,
    *,
    n_partitions: int = 4,
    n_workers: int = 1,
    robust: bool = True,
    delta: float = 0.5,
    extra_components: int = 2,
) -> MapReducePCAResult:
    """Partition ``x``, fit each part independently, merge the results.

    Parameters
    ----------
    x:
        Complete data matrix ``(n, d)`` (patch gaps first; see
        :mod:`repro.core.gaps`).
    n_components:
        Eigenpairs in the merged answer.
    n_partitions:
        Map-side parallelism (round-robin row assignment, so partitions
        are statistically exchangeable).
    n_workers:
        Worker processes for the map phase; 1 = run inline (deterministic
        and cheap for small data).
    robust / delta:
        Use the robust per-partition fit (resists in-partition outliers).
    extra_components:
        Extra eigenpairs carried per partition so the merge loses less
        tail variance (truncation error decreases with this).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    parts = [
        p for p in partition_round_robin(x, n_partitions) if p.shape[0] > 1
    ]
    if not parts:
        raise ValueError("not enough rows to form any partition")

    jobs = [
        (p, n_components, extra_components, robust, delta) for p in parts
    ]
    if n_workers == 1 or len(jobs) == 1:
        payloads = [_fit_partition(job) for job in jobs]
    else:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(n_workers, len(jobs))) as pool:
            payloads = pool.map(_fit_partition, jobs)

    states = tuple(Eigensystem.from_dict(p) for p in payloads)
    merged = merge_eigensystems(list(states), n_components)
    return MapReducePCAResult(state=merged, partition_states=states)
