"""Process-parallel streaming PCA — a minimal, graph-free runner.

.. note::
   The full operator graph now runs across processes natively via
   :class:`~repro.streams.procengine.ProcessEngine`
   (``ParallelStreamingPCA(runtime="process")``), which adds
   shared-memory block transport, supervision with worker restart, and
   telemetry.  This module remains as the *minimal* process-parallel
   baseline: no operator graph, no batching — just queues and
   estimators.  Prefer the graph runtime for applications; use this for
   apples-to-apples protocol experiments.

This runner executes the same application semantics — random split,
independent robust engines, the 1.5·N data-driven gate, ring state
exchange, final merge — with each PCA engine in its own **worker
process**, communicating over bounded ``multiprocessing`` queues exactly
like the paper's engines communicate over network connectors:

* main process = source + load balancer + sync controller;
* worker ``i`` = one :class:`~repro.core.robust.RobustIncrementalPCA`;
* eigensystems cross process boundaries serialized via
  :meth:`~repro.core.eigensystem.Eigensystem.to_dict` (the "tuple over
  the network connector" of Section III-A).

Protocol messages to workers: ``("data", x)``, ``("merge", state_dict)``,
``("share",)``, ``("stop",)``.  Messages from workers:
``("ready", id)``, ``("state", id, state_dict)``,
``("final", id, state_dict, report)``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.merge import merge_eigensystems
from ..core.robust import RobustIncrementalPCA
from ..data.streams import VectorStream
from ..streams.shm import safe_mp_context
from .sync import SyncStrategy, make_strategy

__all__ = ["ProcessRunResult", "ProcessParallelStreamingPCA"]


def _worker(
    engine_id: int,
    inbox: "mp.Queue",
    outbox: "mp.Queue",
    n_components: int,
    estimator_kwargs: dict[str, Any],
    sync_gate_factor: float,
) -> None:
    """Engine-process main loop (top-level so it forks/spawns cleanly)."""
    est = RobustIncrementalPCA(n_components, **estimator_kwargs)
    announced = False
    n_local = 0
    while True:
        msg = inbox.get()
        kind = msg[0]
        if kind == "data":
            n_local += 1
            est.update(msg[1])
            if not announced and est.ready_to_sync(sync_gate_factor):
                announced = True
                outbox.put(("ready", engine_id))
        elif kind == "share":
            if est.is_initialized:
                outbox.put(
                    ("state", engine_id, est.public_state().to_dict())
                )
        elif kind == "merge":
            if est.is_initialized:
                incoming = Eigensystem.from_dict(msg[1])
                merged = merge_eigensystems(
                    [est.state, incoming], est.state.n_components
                )
                est.replace_state(merged)
                announced = False
        elif kind == "stop":
            report = {
                "engine": engine_id,
                "n_local": n_local,
                "n_outliers": est.n_outliers,
            }
            state_dict = (
                est.public_state().to_dict() if est.is_initialized else None
            )
            outbox.put(("final", engine_id, state_dict, report))
            return
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unknown worker message {kind!r}")


@dataclass
class ProcessRunResult:
    """Outcome of a process-parallel run."""

    global_state: Eigensystem
    engine_states: dict[int, Eigensystem]
    engine_reports: list[dict[str, Any]] = field(default_factory=list)
    n_merge_commands: int = 0
    n_states_routed: int = 0

    @property
    def eigenvalues(self) -> np.ndarray:
        """Merged global eigenvalues."""
        return self.global_state.eigenvalues


class ProcessParallelStreamingPCA:
    """Run the parallel application across worker processes.

    Parameters mirror :class:`~repro.parallel.runner.ParallelStreamingPCA`
    where they apply; the runtime is always real OS processes.

    Notes
    -----
    The controller polls its feedback queue between data sends, so sync
    round-trips interleave with the stream just as in the graph runtimes;
    exact interleaving depends on OS scheduling, hence results are
    reproducible only statistically (like the paper's real deployment).

    Every queue is bounded: worker inboxes at ``queue_size`` and the
    shared feedback queue at ``4 * queue_size`` (workers block instead
    of growing an unbounded pickle backlog).  The main process keeps
    draining feedback *while* blocked on a full inbox, so the cycle
    "main blocked on inbox put ⇄ worker blocked on feedback put" cannot
    deadlock.  ``mp_context=None`` picks a spawn-safe start method via
    :func:`~repro.streams.shm.safe_mp_context` — never ``fork`` while
    other threads (e.g. a live ThreadedEngine) are running.
    """

    def __init__(
        self,
        n_components: int,
        n_engines: int = 4,
        *,
        alpha: float = 0.999,
        delta: float = 0.5,
        estimator_kwargs: dict[str, Any] | None = None,
        strategy: SyncStrategy | str = "ring",
        sync_gate_factor: float = 1.5,
        split_seed: int = 0,
        queue_size: int = 256,
        mp_context: str | None = None,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if n_engines < 1:
            raise ValueError(f"n_engines must be >= 1, got {n_engines}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.n_components = n_components
        self.n_engines = n_engines
        self.estimator_kwargs = {
            "alpha": alpha,
            "delta": delta,
            **(estimator_kwargs or {}),
        }
        self.strategy = (
            strategy
            if isinstance(strategy, SyncStrategy)
            else make_strategy(strategy)
        )
        self.sync_gate_factor = float(sync_gate_factor)
        self.split_seed = int(split_seed)
        self.queue_size = int(queue_size)
        self.mp_context = mp_context

    def run(self, stream: VectorStream) -> ProcessRunResult:
        """Stream every observation through the worker fleet and merge."""
        ctx = safe_mp_context(self.mp_context)
        inboxes = [
            ctx.Queue(maxsize=self.queue_size) for _ in range(self.n_engines)
        ]
        feedback: "mp.Queue" = ctx.Queue(maxsize=4 * self.queue_size)
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    i,
                    inboxes[i],
                    feedback,
                    self.n_components,
                    self.estimator_kwargs,
                    self.sync_gate_factor,
                ),
                daemon=True,
            )
            for i in range(self.n_engines)
        ]
        for w in workers:
            w.start()

        rng = np.random.default_rng(self.split_seed)
        n_merges = 0
        n_routed = 0
        _finals: list[tuple] = []
        pending: deque = deque()

        def pump() -> None:
            """Move every available feedback message into ``pending``."""
            while True:
                try:
                    pending.append(feedback.get_nowait())
                except queue.Empty:
                    return

        def put_cmd(target: int, msg: tuple) -> None:
            """Blocking inbox put that keeps the feedback queue flowing.

            With both directions bounded, "main blocked on a full inbox
            while that worker is blocked on a full feedback queue" is a
            deadlock; pumping feedback while waiting breaks the cycle.
            """
            while True:
                try:
                    inboxes[target].put(msg, timeout=0.05)
                    return
                except queue.Full:
                    pump()

        def drain_feedback() -> None:
            """Handle all pending controller traffic."""
            nonlocal n_merges, n_routed
            pump()
            while pending:
                msg = pending.popleft()
                if msg[0] == "ready":
                    put_cmd(msg[1], ("share",))
                elif msg[0] == "state":
                    n_routed += 1
                    for target in self.strategy.targets(
                        msg[1], self.n_engines
                    ):
                        n_merges += 1
                        put_cmd(target, ("merge", msg[2]))
                elif msg[0] == "final":
                    # Shouldn't occur mid-stream; stash for completeness.
                    _finals.append(msg)

        try:
            for x in stream:
                target = int(rng.integers(self.n_engines))
                put_cmd(target, ("data", np.asarray(x, dtype=np.float64)))
                drain_feedback()

            for i in range(self.n_engines):
                put_cmd(i, ("stop",))

            states: dict[int, Eigensystem] = {}
            reports: list[dict[str, Any]] = []
            pump()
            _finals.extend(m for m in pending if m[0] == "final")
            pending.clear()
            remaining = self.n_engines - len(_finals)
            for msg in _finals:
                if msg[2] is not None:
                    states[msg[1]] = Eigensystem.from_dict(msg[2])
                reports.append(msg[3])
            while remaining > 0:
                msg = feedback.get(timeout=60.0)
                if msg[0] == "final":
                    remaining -= 1
                    if msg[2] is not None:
                        states[msg[1]] = Eigensystem.from_dict(msg[2])
                    reports.append(msg[3])
                elif msg[0] == "ready":
                    pass  # too late to grant
                elif msg[0] == "state":
                    pass  # drop: targets are shutting down
        finally:
            for w in workers:
                w.join(timeout=10.0)
                if w.is_alive():  # pragma: no cover - defensive
                    w.terminate()

        if not states:
            raise RuntimeError(
                "no engine produced a final state (stream too short "
                "for any warm-up to complete?)"
            )
        ordered = [states[k] for k in sorted(states)]
        return ProcessRunResult(
            global_state=merge_eigensystems(ordered, self.n_components),
            engine_states=states,
            engine_reports=sorted(reports, key=lambda r: r["engine"]),
            n_merge_commands=n_merges,
            n_states_routed=n_routed,
        )
