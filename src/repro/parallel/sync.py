"""Synchronization controller and topologies (Sections II-C, III-B).

"The transfer of eigensystems from separate PCA instances is coordinated
by the synchronisation controller to follow different synchronization
strategies, e.g., peer-to-peer or broadcast."  The controller is itself a
graph operator: engines report ``ready`` (their 1.5·N data-driven gate
opened) and ship ``state`` messages through it; the controller routes each
state to target engines per the configured topology:

* :class:`RingStrategy` — the paper's basic circular pattern (Fig. 3):
  engine ``i``'s state goes to engine ``(i+1) mod n``, "achieving
  reasonable global solutions while minimizing the network traffic".
* :class:`BroadcastStrategy` — everyone receives everyone's state:
  fastest consistency, ``n-1``× the traffic.
* :class:`GroupStrategy` — ring within fixed-size groups (the
  "group-based" scheme).
* :class:`PeerToPeerStrategy` — each state goes to one uniformly random
  other engine.

The controller also enforces a *logical throttle* (the SPL ``Throttle``
of Section III-B): a minimum number of routed messages between granted
syncs per engine, and it tracks the final states engines emit at close so
the application can produce a single global answer.

Fault tolerance (graceful degradation of the merge path)
--------------------------------------------------------
Distributed-PCA deployments treat partial contributions as the normal
case, so the controller additionally keeps **peer membership**: every
message from an engine refreshes its liveness, and a peer that stays
silent for ``stale_after`` controller messages while its siblings keep
talking is **evicted** — merge commands are rerouted around it instead of
being dropped into a dead queue, and the final :meth:`global_state` merge
proceeds with ``quorum``-many live contributions instead of waiting for
everyone.  When an evicted engine speaks again (a restarted worker, a
thread back from a blackout) it **rejoins** and is re-seeded with the
controller's current global basis estimate so it does not drag the
ensemble backwards while it re-warms.  Every eviction, rejoin, and
re-seed is visible as a ``membership`` telemetry event.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.merge import eigensystems_consistent, merge_eigensystems
from ..streams.operators import Operator
from ..streams.tuples import StreamTuple

__all__ = [
    "SyncStrategy",
    "RingStrategy",
    "BroadcastStrategy",
    "GroupStrategy",
    "PeerToPeerStrategy",
    "PeerStatus",
    "QuorumError",
    "SyncController",
    "SyncStats",
    "make_strategy",
]


class QuorumError(RuntimeError):
    """The global merge has fewer live contributions than the quorum."""


class SyncStrategy(abc.ABC):
    """Chooses the receivers of a shared eigensystem."""

    @abc.abstractmethod
    def targets(self, sender: int, n_engines: int) -> list[int]:
        """Engines that must merge ``sender``'s state (never ``sender``)."""


class RingStrategy(SyncStrategy):
    """Circular pattern: ``receiver = (sender + 1) mod n`` (Fig. 3)."""

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        return [(sender + 1) % n_engines]


class BroadcastStrategy(SyncStrategy):
    """Send the state to every other engine."""

    def targets(self, sender: int, n_engines: int) -> list[int]:
        return [i for i in range(n_engines) if i != sender]


class GroupStrategy(SyncStrategy):
    """Ring within contiguous groups of ``group_size`` engines."""

    def __init__(self, group_size: int) -> None:
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        group = sender // self.group_size
        lo = group * self.group_size
        hi = min(lo + self.group_size, n_engines)
        size = hi - lo
        if size < 2:
            return [(sender + 1) % n_engines]  # tail group of 1: fall back
        return [lo + ((sender - lo) + 1) % size]


class PeerToPeerStrategy(SyncStrategy):
    """One uniformly random other engine per share."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        other = int(self._rng.integers(n_engines - 1))
        return [other if other < sender else other + 1]


_STRATEGY_NAMES = ("ring", "broadcast", "group", "p2p")


def make_strategy(name: str, **kwargs) -> SyncStrategy:
    """Build a strategy by name (``ring``/``broadcast``/``group``/``p2p``)."""
    if name == "ring":
        return RingStrategy()
    if name == "broadcast":
        return BroadcastStrategy()
    if name == "group":
        return GroupStrategy(kwargs.get("group_size", 2))
    if name == "p2p":
        return PeerToPeerStrategy(kwargs.get("seed", 0))
    raise ValueError(
        f"unknown sync strategy {name!r}; choose from {_STRATEGY_NAMES}"
    )


@dataclass
class SyncStats:
    """Counters the controller accumulates over a run."""

    n_ready: int = 0
    n_states_routed: int = 0
    n_merge_commands: int = 0
    n_throttled: int = 0
    per_engine_syncs: dict[int, int] = field(default_factory=dict)
    n_heartbeats: int = 0
    n_evictions: int = 0
    n_rejoins: int = 0
    n_reseeds: int = 0
    n_rerouted: int = 0


@dataclass
class PeerStatus:
    """Membership record for one engine under coordination.

    A peer becomes *tracked* at its first message (engines are legitimately
    silent during warm-up, before their sync gate first opens); from then
    on, silence while siblings keep talking counts against it.
    """

    engine: int
    alive: bool = True
    last_seen_msg: int = 0     # controller message count at last contact
    last_seen_ts: float = 0.0  # wall clock at last contact
    n_messages: int = 0
    n_evictions: int = 0
    n_rejoins: int = 0


class SyncController(Operator):
    """The synchronization manager component (Fig. 2, right).

    Ports: input ``i`` receives control messages from engine ``i``;
    output ``i`` sends control commands to engine ``i``.

    Parameters
    ----------
    n_engines:
        Number of PCA engines under coordination.
    strategy:
        A :class:`SyncStrategy` or a name for :func:`make_strategy`.
    min_interval:
        Logical throttle: after granting engine ``i`` a share, ignore its
        next ``ready`` messages until the controller has seen this many
        further messages overall.  0 disables throttling.
    stale_after:
        Membership staleness window, in controller messages: a tracked
        peer that stays silent while this many messages arrive from its
        siblings is evicted (merge traffic reroutes around it; its next
        message triggers a rejoin + re-seed).  ``None`` (default)
        disables membership tracking entirely — seed behaviour.
    quorum:
        Minimum number of contributions :meth:`global_state` requires
        before merging (``None`` keeps the seed "at least one" rule).
    """

    def __init__(
        self,
        name: str,
        n_engines: int,
        *,
        strategy: SyncStrategy | str = "ring",
        min_interval: int = 0,
        stale_after: int | None = None,
        quorum: int | None = None,
    ) -> None:
        if n_engines < 1:
            raise ValueError(f"n_engines must be >= 1, got {n_engines}")
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        if stale_after is not None and stale_after < 1:
            raise ValueError(f"stale_after must be >= 1, got {stale_after}")
        if quorum is not None and not (1 <= quorum <= n_engines):
            raise ValueError(
                f"quorum must be in [1, {n_engines}], got {quorum}"
            )
        super().__init__(name, n_inputs=n_engines, n_outputs=n_engines)
        self.n_engines = n_engines
        self.strategy = (
            strategy if isinstance(strategy, SyncStrategy)
            else make_strategy(strategy)
        )
        self.min_interval = int(min_interval)
        self.stale_after = stale_after
        self.quorum = quorum
        self.stats = SyncStats()
        self._telemetry = None
        self.final_states: dict[int, Eigensystem] = {}
        #: Most recent state seen from each engine (share or final).
        self.last_states: dict[int, Eigensystem] = {}
        #: Membership records, keyed by engine id (tracked peers only).
        self.peers: dict[int, PeerStatus] = {}
        self._messages_seen = 0
        self._last_grant_at: dict[int, int] = {}

    # ------------------------------------------------------------------

    def process(self, tup: StreamTuple, port: int) -> None:
        if not tup.is_control:
            raise ValueError(
                f"{self.name}: unexpected non-control tuple on port {port}"
            )
        self._messages_seen += 1
        msg_type = tup.get("type")
        sender = int(tup.get("engine", port))
        self._note_alive(sender)
        self._sweep_stale(exempt=sender)
        if msg_type == "ready":
            self._handle_ready(sender)
        elif msg_type == "state":
            self.last_states[sender] = tup["state"]
            self._handle_state(sender, tup["state"])
        elif msg_type == "final":
            self.final_states[sender] = tup["state"]
            self.last_states[sender] = tup["state"]
        elif msg_type == "heartbeat":
            self.stats.n_heartbeats += 1  # liveness noted above
        else:
            raise ValueError(
                f"{self.name}: unknown control message type {msg_type!r}"
            )

    # -- membership ------------------------------------------------------

    def _emit_membership(self, event: str, engine: int, **extra) -> None:
        tel = self._telemetry
        if tel is None:
            return
        tel.events.append({
            "ts": tel.now(), "kind": "membership", "op": self.name,
            "event": event, "engine": engine, **extra,
        })
        tel.metrics.counter(
            f"repro_peer_{event}_total", operator=self.name
        ).inc()

    def _note_alive(self, sender: int) -> None:
        peer = self.peers.get(sender)
        if peer is None:
            peer = self.peers[sender] = PeerStatus(engine=sender)
        rejoining = not peer.alive
        peer.alive = True
        peer.n_messages += 1
        peer.last_seen_msg = self._messages_seen
        peer.last_seen_ts = time.monotonic()
        if rejoining:
            peer.n_rejoins += 1
            self.stats.n_rejoins += 1
            self._emit_membership(
                "rejoins", sender, n_rejoins=peer.n_rejoins
            )
            self._reseed(sender)

    def _sweep_stale(self, *, exempt: int) -> None:
        if self.stale_after is None:
            return
        for peer in self.peers.values():
            if not peer.alive or peer.engine == exempt:
                continue
            if peer.engine in self.final_states:
                # A finished engine is quiet, not dead: its final state
                # is already banked, so eviction would only produce a
                # spurious shutdown-time membership event.
                continue
            silent_for = self._messages_seen - peer.last_seen_msg
            if silent_for > self.stale_after:
                peer.alive = False
                peer.n_evictions += 1
                self.stats.n_evictions += 1
                self._emit_membership(
                    "evictions", peer.engine, silent_for=silent_for
                )

    def _reseed(self, sender: int) -> None:
        """Ship the current global basis estimate to a rejoined engine.

        A restarted worker re-enters with whatever its checkpoint held
        (possibly nothing); merging the ensemble's pooled view in stops
        it from dragging the global basis backwards while it re-warms.
        The ``reseed`` flag lets a fresh estimator adopt the state
        outright instead of merging.
        """
        states = [
            s for e, s in self.last_states.items()
            if e != sender or len(self.last_states) == 1
        ]
        if not states:
            return
        k = max(s.n_components for s in states)
        seed_state = (
            states[0] if len(states) == 1
            else merge_eigensystems(states, k)
        )
        self.stats.n_reseeds += 1
        self.submit(
            StreamTuple.control(
                type="merge", state=seed_state, sender=-1, reseed=True
            ),
            port=sender,
        )
        tel = self._telemetry
        if tel is not None:
            tel.events.append({
                "ts": tel.now(), "kind": "membership", "op": self.name,
                "event": "reseeds", "engine": sender,
                "bytes": self._state_nbytes(seed_state),
            })
            tel.metrics.counter(
                "repro_peer_reseeds_total", operator=self.name
            ).inc()

    def live_peers(self) -> list[int]:
        """Tracked engines currently considered alive (sorted)."""
        return sorted(p.engine for p in self.peers.values() if p.alive)

    def membership(self) -> dict[int, dict]:
        """Snapshot of the membership table for run reports."""
        return {
            e: {
                "alive": p.alive,
                "n_messages": p.n_messages,
                "n_evictions": p.n_evictions,
                "n_rejoins": p.n_rejoins,
            }
            for e, p in sorted(self.peers.items())
        }

    def _route_targets(self, sender: int) -> list[int]:
        """Strategy targets with evicted peers routed around.

        A merge command aimed at a dead engine would sit in a queue
        nobody drains (or vanish with the worker); instead the ring
        "heals" — the state goes to the next live engine in index order,
        mirroring how the paper's ring would be re-wired on node loss.
        Without membership tracking this is exactly the raw strategy.
        """
        raw = self.strategy.targets(sender, self.n_engines)
        if self.stale_after is None:
            return raw
        dead = {p.engine for p in self.peers.values() if not p.alive}
        if not dead:
            return raw
        out: list[int] = []
        for target in raw:
            if target not in dead:
                if target not in out:
                    out.append(target)
                continue
            # Walk the ring to the next live engine, skipping the sender.
            for step in range(1, self.n_engines):
                cand = (target + step) % self.n_engines
                if cand == sender or cand in dead:
                    continue
                if cand not in out:
                    out.append(cand)
                    self.stats.n_rerouted += 1
                break
        return out

    def _handle_ready(self, sender: int) -> None:
        self.stats.n_ready += 1
        last = self._last_grant_at.get(sender)
        if (
            self.min_interval
            and last is not None
            and self._messages_seen - last < self.min_interval
        ):
            self.stats.n_throttled += 1
            return
        self._last_grant_at[sender] = self._messages_seen
        self.submit(StreamTuple.control(type="share"), port=sender)

    def bind_telemetry(self, telemetry) -> None:
        """Emit merge events (with bytes-moved estimates) to telemetry.

        Called by :meth:`Telemetry.attach_graph
        <repro.streams.telemetry.Telemetry.attach_graph>`; each routed
        state produces one ``sync`` event plus ``repro_sync_*`` counters,
        the controller-side view of the paper's "data channels traffic".
        """
        self._telemetry = telemetry

    @staticmethod
    def _state_nbytes(state: Eigensystem) -> int:
        """Wire-size estimate of one shipped eigensystem (see §III-A.2)."""
        total = 128  # header / scalars
        for attr in ("mean", "basis", "eigenvalues"):
            arr = getattr(state, attr, None)
            if isinstance(arr, np.ndarray):
                total += arr.nbytes
        return total

    def _handle_state(self, sender: int, state: Eigensystem) -> None:
        self.stats.n_states_routed += 1
        tel = self._telemetry
        nbytes = self._state_nbytes(state) if tel is not None else 0
        for target in self._route_targets(sender):
            self.stats.n_merge_commands += 1
            self.stats.per_engine_syncs[target] = (
                self.stats.per_engine_syncs.get(target, 0) + 1
            )
            if tel is not None:
                t0 = tel.now()
                self.submit(
                    StreamTuple.control(
                        type="merge", state=state, sender=sender
                    ),
                    port=target,
                )
                tel.events.append({
                    "ts": t0, "kind": "sync", "op": self.name,
                    "sender": f"engine-{sender}",
                    "target": f"engine-{target}",
                    "bytes": nbytes, "duration_s": tel.now() - t0,
                })
                tel.metrics.counter(
                    "repro_sync_merges_total", operator=self.name
                ).inc()
                tel.metrics.counter(
                    "repro_sync_bytes_total", operator=self.name
                ).inc(nbytes)
            else:
                self.submit(
                    StreamTuple.control(
                        type="merge", state=state, sender=sender
                    ),
                    port=target,
                )

    # ------------------------------------------------------------------

    def check_consistency(
        self, *, angle_tol: float = 0.5, scale_rtol: float = 1.0
    ) -> bool:
        """Whether the engines' latest known states agree (§III-B).

        The paper's motivation for synchronization: "some instances can
        have the eigensystem values different to the rest of the
        instances ... caused by improper application initialization ...
        an outlier ... some unusual pattern of incoming data".  This is
        the controller-side detector for that condition, over the most
        recent state each engine has shared.  Vacuously True until at
        least two engines have reported.
        """
        if len(self.last_states) < 2:
            return True
        return eigensystems_consistent(
            list(self.last_states.values()),
            angle_tol=angle_tol,
            scale_rtol=scale_rtol,
        )

    def global_state(
        self,
        n_components: int,
        *,
        quorum: int | None = None,
        include_stale: bool = True,
    ) -> Eigensystem:
        """Merge the engines' contributions into the single global answer.

        Available after the run completes (engines ship ``final`` states
        as they close).  An engine that died mid-run never ships a
        ``final``; with ``include_stale`` (default) its most recent
        *shared* state still contributes — its pre-death observations are
        not thrown away — and the merge proceeds as long as at least
        ``quorum`` engines contributed (constructor default, else "at
        least one").  Raises :class:`QuorumError` when fewer
        contributions than the quorum are available.
        """
        contributions = dict(self.final_states)
        if include_stale:
            for engine, state in self.last_states.items():
                contributions.setdefault(engine, state)
        if not contributions:
            raise RuntimeError(
                "no final states collected; did the run complete?"
            )
        need = quorum if quorum is not None else self.quorum
        if need is not None and len(contributions) < need:
            raise QuorumError(
                f"{self.name}: only {len(contributions)} of "
                f"{self.n_engines} engines contributed a state; "
                f"quorum is {need}"
            )
        ordered = [contributions[k] for k in sorted(contributions)]
        return merge_eigensystems(ordered, n_components)
