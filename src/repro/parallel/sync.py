"""Synchronization controller and topologies (Sections II-C, III-B).

"The transfer of eigensystems from separate PCA instances is coordinated
by the synchronisation controller to follow different synchronization
strategies, e.g., peer-to-peer or broadcast."  The controller is itself a
graph operator: engines report ``ready`` (their 1.5·N data-driven gate
opened) and ship ``state`` messages through it; the controller routes each
state to target engines per the configured topology:

* :class:`RingStrategy` — the paper's basic circular pattern (Fig. 3):
  engine ``i``'s state goes to engine ``(i+1) mod n``, "achieving
  reasonable global solutions while minimizing the network traffic".
* :class:`BroadcastStrategy` — everyone receives everyone's state:
  fastest consistency, ``n-1``× the traffic.
* :class:`GroupStrategy` — ring within fixed-size groups (the
  "group-based" scheme).
* :class:`PeerToPeerStrategy` — each state goes to one uniformly random
  other engine.

The controller also enforces a *logical throttle* (the SPL ``Throttle``
of Section III-B): a minimum number of routed messages between granted
syncs per engine, and it tracks the final states engines emit at close so
the application can produce a single global answer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.merge import eigensystems_consistent, merge_eigensystems
from ..streams.operators import Operator
from ..streams.tuples import StreamTuple

__all__ = [
    "SyncStrategy",
    "RingStrategy",
    "BroadcastStrategy",
    "GroupStrategy",
    "PeerToPeerStrategy",
    "SyncController",
    "SyncStats",
    "make_strategy",
]


class SyncStrategy(abc.ABC):
    """Chooses the receivers of a shared eigensystem."""

    @abc.abstractmethod
    def targets(self, sender: int, n_engines: int) -> list[int]:
        """Engines that must merge ``sender``'s state (never ``sender``)."""


class RingStrategy(SyncStrategy):
    """Circular pattern: ``receiver = (sender + 1) mod n`` (Fig. 3)."""

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        return [(sender + 1) % n_engines]


class BroadcastStrategy(SyncStrategy):
    """Send the state to every other engine."""

    def targets(self, sender: int, n_engines: int) -> list[int]:
        return [i for i in range(n_engines) if i != sender]


class GroupStrategy(SyncStrategy):
    """Ring within contiguous groups of ``group_size`` engines."""

    def __init__(self, group_size: int) -> None:
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        group = sender // self.group_size
        lo = group * self.group_size
        hi = min(lo + self.group_size, n_engines)
        size = hi - lo
        if size < 2:
            return [(sender + 1) % n_engines]  # tail group of 1: fall back
        return [lo + ((sender - lo) + 1) % size]


class PeerToPeerStrategy(SyncStrategy):
    """One uniformly random other engine per share."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def targets(self, sender: int, n_engines: int) -> list[int]:
        if n_engines < 2:
            return []
        other = int(self._rng.integers(n_engines - 1))
        return [other if other < sender else other + 1]


_STRATEGY_NAMES = ("ring", "broadcast", "group", "p2p")


def make_strategy(name: str, **kwargs) -> SyncStrategy:
    """Build a strategy by name (``ring``/``broadcast``/``group``/``p2p``)."""
    if name == "ring":
        return RingStrategy()
    if name == "broadcast":
        return BroadcastStrategy()
    if name == "group":
        return GroupStrategy(kwargs.get("group_size", 2))
    if name == "p2p":
        return PeerToPeerStrategy(kwargs.get("seed", 0))
    raise ValueError(
        f"unknown sync strategy {name!r}; choose from {_STRATEGY_NAMES}"
    )


@dataclass
class SyncStats:
    """Counters the controller accumulates over a run."""

    n_ready: int = 0
    n_states_routed: int = 0
    n_merge_commands: int = 0
    n_throttled: int = 0
    per_engine_syncs: dict[int, int] = field(default_factory=dict)


class SyncController(Operator):
    """The synchronization manager component (Fig. 2, right).

    Ports: input ``i`` receives control messages from engine ``i``;
    output ``i`` sends control commands to engine ``i``.

    Parameters
    ----------
    n_engines:
        Number of PCA engines under coordination.
    strategy:
        A :class:`SyncStrategy` or a name for :func:`make_strategy`.
    min_interval:
        Logical throttle: after granting engine ``i`` a share, ignore its
        next ``ready`` messages until the controller has seen this many
        further messages overall.  0 disables throttling.
    """

    def __init__(
        self,
        name: str,
        n_engines: int,
        *,
        strategy: SyncStrategy | str = "ring",
        min_interval: int = 0,
    ) -> None:
        if n_engines < 1:
            raise ValueError(f"n_engines must be >= 1, got {n_engines}")
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        super().__init__(name, n_inputs=n_engines, n_outputs=n_engines)
        self.n_engines = n_engines
        self.strategy = (
            strategy if isinstance(strategy, SyncStrategy)
            else make_strategy(strategy)
        )
        self.min_interval = int(min_interval)
        self.stats = SyncStats()
        self._telemetry = None
        self.final_states: dict[int, Eigensystem] = {}
        #: Most recent state seen from each engine (share or final).
        self.last_states: dict[int, Eigensystem] = {}
        self._messages_seen = 0
        self._last_grant_at: dict[int, int] = {}

    # ------------------------------------------------------------------

    def process(self, tup: StreamTuple, port: int) -> None:
        if not tup.is_control:
            raise ValueError(
                f"{self.name}: unexpected non-control tuple on port {port}"
            )
        self._messages_seen += 1
        msg_type = tup.get("type")
        sender = int(tup.get("engine", port))
        if msg_type == "ready":
            self._handle_ready(sender)
        elif msg_type == "state":
            self.last_states[sender] = tup["state"]
            self._handle_state(sender, tup["state"])
        elif msg_type == "final":
            self.final_states[sender] = tup["state"]
            self.last_states[sender] = tup["state"]
        else:
            raise ValueError(
                f"{self.name}: unknown control message type {msg_type!r}"
            )

    def _handle_ready(self, sender: int) -> None:
        self.stats.n_ready += 1
        last = self._last_grant_at.get(sender)
        if (
            self.min_interval
            and last is not None
            and self._messages_seen - last < self.min_interval
        ):
            self.stats.n_throttled += 1
            return
        self._last_grant_at[sender] = self._messages_seen
        self.submit(StreamTuple.control(type="share"), port=sender)

    def bind_telemetry(self, telemetry) -> None:
        """Emit merge events (with bytes-moved estimates) to telemetry.

        Called by :meth:`Telemetry.attach_graph
        <repro.streams.telemetry.Telemetry.attach_graph>`; each routed
        state produces one ``sync`` event plus ``repro_sync_*`` counters,
        the controller-side view of the paper's "data channels traffic".
        """
        self._telemetry = telemetry

    @staticmethod
    def _state_nbytes(state: Eigensystem) -> int:
        """Wire-size estimate of one shipped eigensystem (see §III-A.2)."""
        total = 128  # header / scalars
        for attr in ("mean", "basis", "eigenvalues"):
            arr = getattr(state, attr, None)
            if isinstance(arr, np.ndarray):
                total += arr.nbytes
        return total

    def _handle_state(self, sender: int, state: Eigensystem) -> None:
        self.stats.n_states_routed += 1
        tel = self._telemetry
        nbytes = self._state_nbytes(state) if tel is not None else 0
        for target in self.strategy.targets(sender, self.n_engines):
            self.stats.n_merge_commands += 1
            self.stats.per_engine_syncs[target] = (
                self.stats.per_engine_syncs.get(target, 0) + 1
            )
            if tel is not None:
                t0 = tel.now()
                self.submit(
                    StreamTuple.control(
                        type="merge", state=state, sender=sender
                    ),
                    port=target,
                )
                tel.events.append({
                    "ts": t0, "kind": "sync", "op": self.name,
                    "sender": f"engine-{sender}",
                    "target": f"engine-{target}",
                    "bytes": nbytes, "duration_s": tel.now() - t0,
                })
                tel.metrics.counter(
                    "repro_sync_merges_total", operator=self.name
                ).inc()
                tel.metrics.counter(
                    "repro_sync_bytes_total", operator=self.name
                ).inc(nbytes)
            else:
                self.submit(
                    StreamTuple.control(
                        type="merge", state=state, sender=sender
                    ),
                    port=target,
                )

    # ------------------------------------------------------------------

    def check_consistency(
        self, *, angle_tol: float = 0.5, scale_rtol: float = 1.0
    ) -> bool:
        """Whether the engines' latest known states agree (§III-B).

        The paper's motivation for synchronization: "some instances can
        have the eigensystem values different to the rest of the
        instances ... caused by improper application initialization ...
        an outlier ... some unusual pattern of incoming data".  This is
        the controller-side detector for that condition, over the most
        recent state each engine has shared.  Vacuously True until at
        least two engines have reported.
        """
        if len(self.last_states) < 2:
            return True
        return eigensystems_consistent(
            list(self.last_states.values()),
            angle_tol=angle_tol,
            scale_rtol=scale_rtol,
        )

    def global_state(self, n_components: int) -> Eigensystem:
        """Merge all final states into the single global answer.

        Available after the run completes (engines ship ``final`` states
        as they close).
        """
        if not self.final_states:
            raise RuntimeError(
                "no final states collected; did the run complete?"
            )
        ordered = [self.final_states[k] for k in sorted(self.final_states)]
        return merge_eigensystems(ordered, n_components)
