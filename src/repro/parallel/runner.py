"""High-level façade: run the whole parallel streaming-PCA application.

One call builds the Fig. 2 graph, executes it on either runtime, merges
the engines' final eigensystems into the global solution, and returns a
structured result with all the telemetry the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.robust import RobustIncrementalPCA
from ..data.streams import VectorStream
from ..streams.clusterengine import ClusterEngine
from ..streams.engine import RunStats, SynchronousEngine, ThreadedEngine
from ..streams.fusion import FusionPlan
from ..streams.procengine import ProcessEngine
from ..streams.supervision import Supervisor
from .app import ParallelPCAApp, build_parallel_pca_graph
from .sync import SyncStats, SyncStrategy

__all__ = ["ParallelRunResult", "ParallelStreamingPCA"]


@dataclass
class ParallelRunResult:
    """Everything a parallel run produced.

    Attributes
    ----------
    global_state:
        Merge of all engines' final eigensystems — "the resulting
        eigensystem can be obtained from any node", and this is the
        any-node answer made explicit.
    engine_states:
        Each engine's own final eigensystem (pre-merge), by engine id.
    run_stats:
        Engine-level tuple counters and wall time.
    sync_stats:
        Controller counters (grants, routed states, merges, throttles).
    diagnostics:
        Per-observation diagnostic payloads (empty when disabled).
    engine_reports:
        Per-engine counter dicts from the operators.
    """

    global_state: Eigensystem
    engine_states: dict[int, Eigensystem]
    run_stats: RunStats
    sync_stats: SyncStats
    diagnostics: list[dict[str, Any]] = field(default_factory=list)
    engine_reports: list[dict[str, Any]] = field(default_factory=list)

    @property
    def eigenvalues(self) -> np.ndarray:
        """Global eigenvalues (descending)."""
        return self.global_state.eigenvalues

    @property
    def components(self) -> np.ndarray:
        """Global eigenvectors as rows ``(p, d)``."""
        return self.global_state.basis.T

    @property
    def mean(self) -> np.ndarray:
        """Global location estimate."""
        return self.global_state.mean

    def outlier_seqs(self) -> np.ndarray:
        """Stream sequence numbers flagged as outliers (sorted)."""
        seqs = [
            d["seq"] for d in self.diagnostics if d.get("is_outlier")
        ]
        return np.asarray(sorted(seqs), dtype=np.int64)


class ParallelStreamingPCA:
    """Run robust streaming PCA over a partitioned stream with sync.

    Parameters
    ----------
    n_components:
        Eigenpairs to estimate.
    n_engines:
        Parallel PCA engines (the paper's "threads").
    alpha / delta / estimator_kwargs:
        Forwarded to each engine's :class:`RobustIncrementalPCA`.
    strategy:
        Sync topology: ``"ring"`` (default), ``"broadcast"``, ``"group"``,
        ``"p2p"`` or a :class:`SyncStrategy`.
    runtime:
        ``"synchronous"`` (deterministic), ``"threaded"`` (one thread
        per PE, shared GIL), ``"process"`` (each PCA engine in its own
        worker process with shared-memory block transport; see
        :class:`~repro.streams.procengine.ProcessEngine`), or
        ``"cluster"`` (each PCA engine on its own host process reached
        over real TCP sockets — the paper's multi-node scale-out; see
        :class:`~repro.streams.clusterengine.ClusterEngine`).
    fusion:
        For the threaded runtime: ``"per-operator"`` (default, every
        operator its own thread — the distributed analog) or ``"fused"``
        (all PCA work on one thread — the single-node analog).
    sync_gate_factor / min_sync_interval / split_strategy / split_seed /
    collect_diagnostics / snapshot_every / batch_size / batch_timeout_s:
        See :func:`repro.parallel.app.build_parallel_pca_graph`;
        ``batch_size > 1`` switches the engines to the vectorized
        micro-batch hot path.
    quarantine / shed_max_rate_hz / stale_after / quorum /
    heartbeat_every:
        Robustness hooks (poison-tuple quarantine, load shedding,
        controller peer membership); see
        :func:`repro.parallel.app.build_parallel_pca_graph` and
        ``docs/robustness.md``.
    supervisor:
        Optional :class:`~repro.streams.supervision.Supervisor` applying
        per-operator failure policies (see
        :func:`repro.parallel.app.engine_restart_supervisor` for the
        common engines-restart-from-checkpoint configuration); without
        one, execution is fail-fast.
    stall_timeout_s:
        Threaded/process runtimes: arm the deadlock/stall watchdog (see
        :class:`~repro.streams.engine.ThreadedEngine` and
        :class:`~repro.streams.procengine.ProcessEngine`; on the process
        runtime a wedged restartable worker is terminated and respawned
        from its checkpoint).
    mp_context:
        Process/cluster runtimes: multiprocessing start method
        (``"fork"``, ``"forkserver"``, ``"spawn"``) or ``None`` for
        :func:`~repro.streams.shm.safe_mp_context`.
    ring_slots:
        Process runtime only: shared-memory ring slots per transport
        edge (the per-edge backpressure window; slot rows follow
        ``batch_size``).
    n_hosts / host_runtime / tolerate_host_loss / flap_hosts:
        Cluster runtime only: engine-host process count (default
        ``n_engines``), the runtime each host runs its local graph
        under, whether a host death degrades the run instead of failing
        it, and the chaos flap hook — see
        :class:`~repro.streams.clusterengine.ClusterEngine`.

    Example
    -------
    ::

        runner = ParallelStreamingPCA(n_components=5, n_engines=4,
                                      alpha=0.999)
        result = runner.run(VectorStream.from_array(X))
        result.eigenvalues, result.components
    """

    def __init__(
        self,
        n_components: int,
        n_engines: int = 4,
        *,
        alpha: float = 0.999,
        delta: float = 0.5,
        estimator_kwargs: dict[str, Any] | None = None,
        strategy: SyncStrategy | str = "ring",
        runtime: str = "synchronous",
        fusion: str = "per-operator",
        sync_gate_factor: float = 1.5,
        min_sync_interval: int = 0,
        split_strategy: str = "random",
        split_seed: int = 0,
        collect_diagnostics: bool = True,
        snapshot_every: int = 0,
        batch_size: int = 0,
        batch_timeout_s: float | None = None,
        quarantine: bool = False,
        shed_max_rate_hz: float | None = None,
        stale_after: int | None = None,
        quorum: int | None = None,
        heartbeat_every: int = 0,
        timeout_s: float = 300.0,
        supervisor: Supervisor | None = None,
        stall_timeout_s: float | None = None,
        mp_context: str | None = None,
        ring_slots: int = 8,
        n_hosts: int | None = None,
        host_runtime: str = "synchronous",
        tolerate_host_loss: bool = False,
        flap_hosts: dict[int, int] | None = None,
    ) -> None:
        if runtime not in ("synchronous", "threaded", "process", "cluster"):
            raise ValueError(
                f"runtime must be 'synchronous', 'threaded', 'process' or "
                f"'cluster', got {runtime!r}"
            )
        if fusion not in ("per-operator", "fused", "chains"):
            raise ValueError(
                f"fusion must be 'per-operator', 'fused' or 'chains', "
                f"got {fusion!r}"
            )
        self.n_components = n_components
        self.n_engines = n_engines
        self.alpha = alpha
        self.delta = delta
        self.estimator_kwargs = dict(estimator_kwargs or {})
        self.strategy = strategy
        self.runtime = runtime
        self.fusion = fusion
        self.sync_gate_factor = sync_gate_factor
        self.min_sync_interval = min_sync_interval
        self.split_strategy = split_strategy
        self.split_seed = split_seed
        self.collect_diagnostics = collect_diagnostics
        self.snapshot_every = snapshot_every
        self.batch_size = batch_size
        self.batch_timeout_s = batch_timeout_s
        self.quarantine = quarantine
        self.shed_max_rate_hz = shed_max_rate_hz
        self.stale_after = stale_after
        self.quorum = quorum
        self.heartbeat_every = heartbeat_every
        self.timeout_s = timeout_s
        self.supervisor = supervisor
        self.stall_timeout_s = stall_timeout_s
        self.mp_context = mp_context
        self.ring_slots = ring_slots
        self.n_hosts = n_hosts
        self.host_runtime = host_runtime
        self.tolerate_host_loss = tolerate_host_loss
        self.flap_hosts = dict(flap_hosts or {})

    def _make_estimator(self, engine_id: int) -> RobustIncrementalPCA:
        return RobustIncrementalPCA(
            self.n_components,
            alpha=self.alpha,
            delta=self.delta,
            **self.estimator_kwargs,
        )

    def build(self, stream: VectorStream) -> ParallelPCAApp:
        """Assemble (but do not run) the application graph."""
        return build_parallel_pca_graph(
            stream,
            self.n_engines,
            self._make_estimator,
            strategy=self.strategy,
            split_strategy=self.split_strategy,
            split_seed=self.split_seed,
            sync_gate_factor=self.sync_gate_factor,
            min_sync_interval=self.min_sync_interval,
            collect_diagnostics=self.collect_diagnostics,
            snapshot_every=self.snapshot_every,
            batch_size=self.batch_size,
            batch_timeout_s=self.batch_timeout_s,
            quarantine=self.quarantine,
            shed_max_rate_hz=self.shed_max_rate_hz,
            stale_after=self.stale_after,
            quorum=self.quorum,
            heartbeat_every=self.heartbeat_every,
        )

    def run(self, stream: VectorStream) -> ParallelRunResult:
        """Build and execute the application; return the merged result."""
        app = self.build(stream)
        if self.runtime == "synchronous":
            stats = SynchronousEngine(
                app.graph, supervisor=self.supervisor
            ).run()
        elif self.runtime == "process":
            # Pin the coordination plane (split, batcher, controller) to
            # the main process; each PCA engine becomes its own worker.
            # Source (with any ingress guards riding it) and the
            # diagnostics sink are pinned automatically.
            main_ops = {app.split.name, app.controller.name}
            if app.batcher is not None:
                main_ops.add(app.batcher.name)
            stats = ProcessEngine(
                app.graph,
                main_ops=main_ops,
                mp_context=self.mp_context,
                ring_slots=self.ring_slots,
                ring_slot_rows=max(self.batch_size, 64),
                supervisor=self.supervisor,
                stall_timeout_s=self.stall_timeout_s,
            ).run(timeout_s=self.timeout_s)
        elif self.runtime == "cluster":
            # Same placement cut as the process runtime, but the PCA
            # engines land on TCP-connected host processes.
            main_ops = {app.split.name, app.controller.name}
            if app.batcher is not None:
                main_ops.add(app.batcher.name)
            self.cluster_engine = ClusterEngine(
                app.graph,
                main_ops=main_ops,
                n_hosts=self.n_hosts or self.n_engines,
                host_runtime=self.host_runtime,
                tolerate_host_loss=self.tolerate_host_loss,
                flap_hosts=self.flap_hosts,
                mp_context=self.mp_context,
                supervisor=self.supervisor,
            )
            stats = self.cluster_engine.run(timeout_s=self.timeout_s)
        else:
            if self.fusion == "fused":
                plan = FusionPlan.fused(app.graph)
            elif self.fusion == "chains":
                plan = FusionPlan.fuse_chains(app.graph)
            else:
                plan = FusionPlan.per_operator(app.graph)
            stats = ThreadedEngine(
                app.graph,
                fusion=plan,
                supervisor=self.supervisor,
                stall_timeout_s=self.stall_timeout_s,
            ).run(timeout_s=self.timeout_s)

        controller = app.controller
        global_state = controller.global_state(self.n_components)
        diagnostics = []
        if app.diag_sink is not None:
            diagnostics = [
                dict(t.payload)
                for t in app.diag_sink.tuples
                if "weight" in t.payload
            ]
        return ParallelRunResult(
            global_state=global_state,
            engine_states=dict(controller.final_states),
            run_stats=stats,
            sync_stats=controller.stats,
            diagnostics=diagnostics,
            engine_reports=[op.diagnostics() for op in app.engines],
        )
