"""The parallel streaming-PCA application (paper Sections II-C, III)."""

from .app import (
    ParallelPCAApp,
    build_parallel_pca_graph,
    engine_restart_supervisor,
)
from .mapreduce import MapReducePCAResult, mapreduce_pca
from .partition import (
    partition_contiguous,
    partition_random,
    partition_round_robin,
)
from .pca_operator import StreamingPCAOperator
from .process_runner import ProcessParallelStreamingPCA, ProcessRunResult
from .runner import ParallelRunResult, ParallelStreamingPCA
from .sync import (
    BroadcastStrategy,
    GroupStrategy,
    PeerStatus,
    PeerToPeerStrategy,
    QuorumError,
    RingStrategy,
    SyncController,
    SyncStats,
    SyncStrategy,
    make_strategy,
)

__all__ = [
    "BroadcastStrategy",
    "GroupStrategy",
    "MapReducePCAResult",
    "ParallelPCAApp",
    "ParallelRunResult",
    "ParallelStreamingPCA",
    "PeerStatus",
    "PeerToPeerStrategy",
    "ProcessParallelStreamingPCA",
    "ProcessRunResult",
    "QuorumError",
    "RingStrategy",
    "StreamingPCAOperator",
    "SyncController",
    "SyncStats",
    "SyncStrategy",
    "build_parallel_pca_graph",
    "engine_restart_supervisor",
    "make_strategy",
    "mapreduce_pca",
    "partition_contiguous",
    "partition_random",
    "partition_round_robin",
]
