"""Assembling the full parallel streaming-PCA application graph (Fig. 2).

The topology::

                     ┌──────────────┐  data   ┌───────────────┐
    VectorSource ──► │ Split (rand) │ ──────► │ StreamingPCA 0│ ─┐ diag
                     └──────────────┘   ...   │ StreamingPCA 1│ ─┼────► sink
                            ▲  control  ...   │      ...      │ ─┘
                            │  (none)         └──────┬────────┘
                                                     │ ctl (ready/state)
                                              ┌──────▼────────┐
                                              │ SyncController │  (ring /
                                              └──────┬────────┘  broadcast /
                                                     │ ctl (share/merge)
                                              back to every engine
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from ..core.robust import RobustIncrementalPCA
from ..data.streams import VectorStream
from ..io.checkpoint import CheckpointStore
from ..streams.batcher import Batcher
from ..streams.graph import Graph
from ..streams.health import HealthMonitor, HealthRuleEngine, default_rules
from ..streams.resilience import DeadLetterQueue
from ..streams.sinks import CollectingSink
from ..streams.sources import GuardedVectorSource, VectorSource
from ..streams.split import Split
from ..streams.supervision import RestartFromCheckpoint, Supervisor
from .pca_operator import StreamingPCAOperator
from .sync import SyncController, SyncStrategy

__all__ = [
    "ParallelPCAApp",
    "build_parallel_pca_graph",
    "engine_restart_supervisor",
]


@dataclass
class ParallelPCAApp:
    """Handles to the assembled application graph.

    Attributes
    ----------
    graph:
        The wired dataflow graph, ready for an engine.
    source, split, controller:
        The singleton operators.
    engines:
        The ``n`` streaming-PCA operators, index-aligned with the
        controller's ports.
    diag_sink:
        Collects per-observation diagnostics tuples (``None`` when
        diagnostics are disabled).
    health_monitors:
        Per-engine model-health monitors (empty unless built with
        ``health=True``), index-aligned with ``engines``.
    """

    graph: Graph
    source: VectorSource
    split: Split
    controller: SyncController
    engines: list[StreamingPCAOperator] = field(default_factory=list)
    diag_sink: CollectingSink | None = None
    batcher: Batcher | None = None
    health_monitors: list[HealthMonitor] = field(default_factory=list)

    def health_rule_engine(
        self, telemetry=None, *, rules=None
    ) -> HealthRuleEngine:
        """A rule engine wired to this app's monitors and controller.

        ``rules`` defaults to :func:`~repro.streams.health.default_rules`;
        pass ``telemetry`` so watermark-lag rules and the
        ``repro_health_status`` gauge work.
        """
        return HealthRuleEngine(
            telemetry,
            monitors=self.health_monitors,
            controller=self.controller,
            rules=rules if rules is not None else default_rules(),
        )

    def attach_snapshot_cache(
        self, cache, tenant: str = "parallel", *, outlier_t: float = 9.0
    ) -> None:
        """Publish every engine's snapshot into a serving eigenbasis cache.

        Wires a snapshot listener onto each
        :class:`~repro.parallel.pca_operator.StreamingPCAOperator`
        (requires ``snapshot_every > 0`` at build time): the per-engine
        states land in ``cache`` under ``"<tenant>/e<engine_id>"``, so a
        serving deployment can answer reads for an in-flight parallel
        run from versioned copy-on-publish snapshots instead of touching
        live operator state.
        """
        def _make_listener(op):
            def _on_snapshot(engine_id: int, state) -> None:
                cache.publish(
                    f"{tenant}/e{engine_id}",
                    state,
                    rows_applied=op.n_data_rows,
                    blocks_applied=op.n_data_tuples,
                    outlier_t=outlier_t,
                )
            return _on_snapshot

        for op in self.engines:
            op.add_snapshot_listener(_make_listener(op))

    @property
    def dlq(self) -> DeadLetterQueue | None:
        """The dead-letter queue (``None`` without a quarantine guard)."""
        return getattr(self.source, "dlq", None)

    @property
    def n_shed(self) -> int:
        """Data tuples shed by the load valve (0 when it is not armed)."""
        return getattr(self.source, "n_shed", 0)


def build_parallel_pca_graph(
    stream: VectorStream,
    n_engines: int,
    estimator_factory,
    *,
    strategy: SyncStrategy | str = "ring",
    split_strategy: str = "random",
    split_seed: int = 0,
    sync_gate_factor: float = 1.5,
    min_sync_interval: int = 0,
    collect_diagnostics: bool = True,
    snapshot_every: int = 0,
    batch_size: int = 0,
    batch_timeout_s: float | None = None,
    quarantine: bool = False,
    dlq: DeadLetterQueue | None = None,
    dead_letter_capacity: int = 1024,
    shed_max_rate_hz: float | None = None,
    shed_open_for_s: float = 0.5,
    stale_after: int | None = None,
    quorum: int | None = None,
    heartbeat_every: int = 0,
    health: bool = False,
    health_check_every: int = 256,
) -> ParallelPCAApp:
    """Build the Fig. 2 graph.

    Parameters
    ----------
    stream:
        The input observation stream.
    n_engines:
        Number of parallel PCA engines.
    estimator_factory:
        ``(engine_id) -> RobustIncrementalPCA`` (or API-compatible
        estimator); one instance per engine.
    strategy:
        Sync topology (name or :class:`SyncStrategy`).
    split_strategy / split_seed:
        Load-balancer behaviour (``random`` is the paper's default).
    sync_gate_factor:
        The 1.5·N data-driven gate multiplier.
    min_sync_interval:
        Logical throttle at the controller (see
        :class:`~repro.parallel.sync.SyncController`).
    collect_diagnostics:
        Attach a sink collecting per-observation diagnostics.
    snapshot_every:
        Periodic eigensystem snapshots on the diagnostics stream.
    batch_size:
        When > 1, insert a :class:`~repro.streams.batcher.Batcher`
        between the source and the split so the engines consume
        ``(k, d)`` blocks through the vectorized block kernel.  The
        block becomes the routing unit of the load balancer — each
        block lands on one engine (see docs/performance.md for the
        trade-off).  0 or 1 keeps the seed per-tuple path.
    batch_timeout_s:
        Optional timeout flush for the batcher (lazily checked; see
        :class:`~repro.streams.batcher.Batcher`).
    quarantine / dlq / dead_letter_capacity:
        ``quarantine=True`` arms poison-tuple validation in the source
        (:class:`~repro.streams.sources.GuardedVectorSource`): poison
        tuples (wrong dimensionality, non-numeric, all-NaN) are
        captured into the dead-letter queue (``dlq`` or a fresh one of
        ``dead_letter_capacity``) instead of crashing an engine.
        Validation runs *before* batching so a poison row can never
        contaminate a block.
    shed_max_rate_hz / shed_open_for_s:
        When set, arms the source's load-shedding valve
        (:class:`~repro.streams.resilience.LoadShedValve` semantics, as
        in :class:`~repro.streams.resilience.CircuitBreaker`):
        sustained input above the rate is shed instead of growing
        queues without bound.
    stale_after / quorum:
        Controller membership: evict peers silent for ``stale_after``
        controller messages and let :meth:`SyncController.global_state`
        proceed with ``quorum`` live contributions (see
        :class:`~repro.parallel.sync.SyncController`).
    heartbeat_every:
        Engines send a liveness heartbeat to the controller every this
        many data tuples (feeds the membership tracking above).
    health / health_check_every:
        ``health=True`` attaches a per-engine
        :class:`~repro.streams.health.HealthMonitor` (subspace-affinity,
        eigenspectrum-drift, and reconstruction-error tracking; checks
        every ``health_check_every`` rows).  Build a rule engine over
        them with :meth:`ParallelPCAApp.health_rule_engine` and serve it
        via :class:`~repro.streams.obs_server.ObservabilityServer`.
    """
    if n_engines < 1:
        raise ValueError(f"n_engines must be >= 1, got {n_engines}")

    graph = Graph("parallel-streaming-pca")
    # Ingress guards ride the source's emit loop (GuardedVectorSource)
    # rather than being separate graph stages: a dedicated stage costs a
    # dispatch hop per tuple — a PE thread plus a queue transfer on the
    # threaded runtime — while the guard work itself is sub-microsecond
    # per row (see benchmarks/bench_chaos_overhead.py).
    if quarantine or dlq is not None or shed_max_rate_hz is not None:
        source = graph.add(
            GuardedVectorSource(
                "source",
                stream,
                quarantine=quarantine or dlq is not None,
                dlq=dlq
                if dlq is not None
                else (
                    DeadLetterQueue(capacity=dead_letter_capacity)
                    if quarantine else None
                ),
                expected_dim=getattr(stream, "dim", None),
                max_rate_hz=shed_max_rate_hz,
                open_for_s=shed_open_for_s,
            )
        )
    else:
        source = graph.add(VectorSource("source", stream))
    split = graph.add(
        Split("split", n_engines, strategy=split_strategy, seed=split_seed)
    )
    controller = graph.add(
        SyncController(
            "sync-controller",
            n_engines,
            strategy=strategy,
            min_interval=min_sync_interval,
            stale_after=stale_after,
            quorum=quorum,
        )
    )
    head = source
    batcher: Batcher | None = None
    if batch_size and batch_size > 1:
        batcher = graph.add(
            Batcher(
                "batcher",
                batch_size=batch_size,
                timeout_s=batch_timeout_s,
            )
        )
        graph.connect(head, batcher)
        graph.connect(batcher, split)
    else:
        graph.connect(head, split)

    engines: list[StreamingPCAOperator] = []
    health_monitors: list[HealthMonitor] = []
    diag_sink = (
        CollectingSink("diagnostics", n_inputs=n_engines)
        if collect_diagnostics
        else None
    )
    if diag_sink is not None:
        graph.add(diag_sink)

    for i in range(n_engines):
        estimator = estimator_factory(i)
        if not isinstance(estimator, RobustIncrementalPCA):
            # Duck-typed estimators are allowed; they must expose the
            # RobustIncrementalPCA surface used by the operator.
            required = (
                "update", "public_state", "replace_state",
                "ready_to_sync", "is_initialized", "state", "n_seen",
            )
            if batcher is not None:
                required = required + ("update_block",)
            missing = [a for a in required if not hasattr(estimator, a)]
            if missing:
                raise TypeError(
                    f"estimator_factory({i}) returned an object missing "
                    f"the estimator API: {missing}"
                )
        op = StreamingPCAOperator(
            f"pca-{i}",
            engine_id=i,
            estimator=estimator,
            sync_gate_factor=sync_gate_factor,
            snapshot_every=snapshot_every,
            emit_diagnostics=collect_diagnostics,
            heartbeat_every=heartbeat_every,
        )
        graph.add(op)
        engines.append(op)
        if health:
            monitor = HealthMonitor(i, check_every=health_check_every)
            op.attach_health_monitor(monitor)
            health_monitors.append(monitor)
        graph.connect(split, op, out_port=i, in_port=0)       # data
        graph.connect(op, controller, out_port=0, in_port=i)  # ctl up
        graph.connect(controller, op, out_port=i, in_port=1)  # ctl down
        if diag_sink is not None:
            graph.connect(op, diag_sink, out_port=1, in_port=i)

    return ParallelPCAApp(
        graph=graph,
        source=source,
        split=split,
        controller=controller,
        engines=engines,
        diag_sink=diag_sink,
        batcher=batcher,
        health_monitors=health_monitors,
    )


def engine_restart_supervisor(
    app: ParallelPCAApp,
    *,
    directory: str | pathlib.Path | None = None,
    checkpoint_every: int = 200,
    resume: str = "retry",
    max_restarts: int | None = None,
) -> Supervisor:
    """A :class:`Supervisor` giving every PCA engine restart-from-checkpoint.

    Each engine gets its own :class:`RestartFromCheckpoint` policy; when
    ``directory`` is given, each engine also persists its snapshots to a
    per-engine :class:`~repro.io.checkpoint.CheckpointStore` subdirectory
    (``<directory>/pca-<i>``), enabling resume across processes.  All
    other operators (split, controller, sinks) stay fail-fast: losing the
    coordinator is not survivable, losing one engine's recent updates is.
    """
    policies = {}
    for op in app.engines:
        store = None
        if directory is not None:
            store = CheckpointStore(
                pathlib.Path(directory) / op.name, every=checkpoint_every
            )
        policies[op.name] = RestartFromCheckpoint(
            checkpoint_every=checkpoint_every,
            store=store,
            resume=resume,
            max_restarts=max_restarts,
        )
    return Supervisor(policies=policies)
