"""Stream partitioning helpers used outside the engine.

For offline analyses (and for tests of the merge algebra) it is handy to
partition a dataset exactly the way the split operator would, without
running a graph.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_random", "partition_round_robin", "partition_contiguous"]


def _check(x: np.ndarray, k: int) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return x


def partition_random(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Assign each row to one of ``k`` partitions uniformly at random —
    the paper's load-balancer semantics."""
    x = _check(x, k)
    assign = rng.integers(k, size=x.shape[0])
    return [x[assign == i] for i in range(k)]


def partition_round_robin(x: np.ndarray, k: int) -> list[np.ndarray]:
    """Deterministic interleaving: row ``i`` goes to partition ``i % k``."""
    x = _check(x, k)
    return [x[i::k] for i in range(k)]


def partition_contiguous(x: np.ndarray, k: int) -> list[np.ndarray]:
    """Contiguous blocks — the *systematically ordered* split the paper
    warns against (§II-B); kept for ablations that demonstrate why."""
    x = _check(x, k)
    bounds = np.linspace(0, x.shape[0], k + 1).astype(int)
    return [x[bounds[i] : bounds[i + 1]] for i in range(k)]
