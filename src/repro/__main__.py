"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper-reproduction experiments or ablations and prints
its data table — the scriptable face of the benchmark harness.

``python -m repro telemetry <events.jsonl>`` instead renders the run
report for a telemetry event log written by
:meth:`repro.streams.telemetry.Telemetry.write_jsonl` (top operators by
exclusive time, hottest queues, trace waterfalls for the slowest
sampled tuples).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

EXPERIMENTS = {
    "fig1": "classic vs robust streaming PCA under contamination",
    "fig45": "eigenspectra convergence on galaxy spectra",
    "fig6": "throughput vs parallel threads (simulated testbed)",
    "fig7": "tuples/s/thread vs dimensionality (simulated testbed)",
    "lat": "per-tuple latency vs placement (fusion effect)",
    "conv": "in-flight convergence before stream end",
    "abl-alpha": "forgetting factor on a drifting stream",
    "abl-gaps": "gap residual-estimation modes",
    "abl-order": "random vs systematic stream order",
    "abl-topo": "sync topology trade-offs",
    "abl-gate": "data-driven sync gate factor",
    "all": "run every experiment above",
}


def _run_one(name: str, sink=None) -> None:
    from repro import experiments as exp

    start = time.perf_counter()
    if name == "fig1":
        result = exp.run_fig1()
    elif name == "fig45":
        result = exp.run_fig45()
    elif name == "fig6":
        result = exp.run_fig6()
    elif name == "fig7":
        result = exp.run_fig7()
    elif name == "lat":
        result = exp.run_latency()
    elif name == "conv":
        result = exp.run_convergence()
    elif name == "abl-alpha":
        result = exp.run_alpha_ablation()
    elif name == "abl-gaps":
        result = exp.run_gap_ablation()
    elif name == "abl-order":
        result = exp.run_order_ablation()
    elif name == "abl-topo":
        result = exp.run_sync_strategies()
    elif name == "abl-gate":
        result = exp.run_gate_ablation()
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)
    text = result.table().render()
    print(text)
    print(f"[{name}: {time.perf_counter() - start:.1f}s]\n")
    if sink is not None:
        sink.write(f"## {name}\n\n```\n{text}\n```\n\n")


def telemetry_main(argv: list[str]) -> int:
    """``python -m repro telemetry <events.jsonl>`` — render a run report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description=(
            "Render a human-readable run report from a telemetry JSONL "
            "event log (Telemetry.write_jsonl)."
        ),
    )
    parser.add_argument("log", help="path to the JSONL event log")
    parser.add_argument(
        "--top", type=int, default=10,
        help="row limit of the per-operator tables (default 10)",
    )
    parser.add_argument(
        "--traces", type=int, default=3,
        help="number of slowest traces to render as waterfalls (default 3)",
    )
    args = parser.parse_args(argv)

    from repro.streams.telemetry import load_events
    from repro.streams.telemetry_report import render_report

    try:
        events = load_events(args.log)
    except OSError as exc:
        parser.error(f"cannot read {args.log}: {exc}")
    print(render_report(events, top=args.top, n_traces=args.traces))
    return 0


def health_main(argv: list[str]) -> int:
    """``python -m repro health <events.jsonl>`` — model-health report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro health",
        description=(
            "Render the model-health section of a telemetry JSONL event "
            "log: per-engine subspace affinity, eigenspectrum drift, the "
            "reconstruction-error control chart, merge/re-seed activity, "
            "and the OK/DEGRADED/CRITICAL verdict timeline."
        ),
    )
    parser.add_argument("log", help="path to the JSONL event log")
    args = parser.parse_args(argv)

    from repro.streams.telemetry import load_events
    from repro.streams.telemetry_report import _health, _warnings

    try:
        events = load_events(args.log)
    except OSError as exc:
        parser.error(f"cannot read {args.log}: {exc}")
    header = "model health report"
    lines = [header, "=" * len(header)]
    lines += _warnings(events)
    section = _health(events)
    if not section:
        lines.append(
            "no health events in this log (run with health monitors "
            "attached: build_parallel_pca_graph(..., health=True))"
        )
    lines += section
    print("\n".join(lines))
    # Exit non-zero on a CRITICAL final verdict so scripts can gate on it.
    verdicts = [e for e in events if e.get("kind") == "health_verdict"]
    if verdicts and verdicts[-1].get("status") == "CRITICAL":
        return 1
    return 0


def chaos_main(argv: list[str]) -> int:
    """``python -m repro chaos`` — run the seeded chaos smoke suite."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run the scenario-driven chaos suite (kill-one-engine, "
            "poison tuples, slow operator, queue stall) against a "
            "runtime and report recovery/loss/affinity per scenario."
        ),
    )
    parser.add_argument(
        "--runtime",
        choices=("synchronous", "threaded", "process"),
        default="threaded",
        help="runtime to torture (default threaded)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scenario seed (default 0)"
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="append the reports to FILE as JSONL (the CI artifact)",
    )
    parser.add_argument(
        "--flap", action="store_true",
        help="also run the TCP network-flap scenario",
    )
    args = parser.parse_args(argv)

    from repro.streams.chaos import (
        network_flap_scenario,
        run_suite,
        smoke_suite,
        write_chaos_reports,
    )

    reports = run_suite(
        smoke_suite(args.runtime, seed=args.seed),
        out=args.out,
        log=print,
    )
    if args.flap:
        flap = network_flap_scenario(seed=args.seed)
        status = "ok" if flap.ok else f"FAIL ({flap.error})"
        print(
            f"{flap.scenario} [{flap.runtime}] {status}: "
            f"lost={flap.n_lost} dup={flap.n_duplicated} "
            f"reconnects={flap.n_reconnects}"
        )
        reports.append(flap)
        if args.out:
            write_chaos_reports([flap], args.out)
    return 0 if all(r.ok for r in reports) else 1


def cluster_main(argv: list[str]) -> int:
    """``python -m repro cluster`` — multi-node TCP runtime smoke run.

    Spawns one coordinator plus N engine-host processes connected over
    real TCP sockets (the ClusterEngine runtime), streams a planted
    subspace through the parallel PCA graph, and gates on the subspace
    affinity of the merged global basis against a fault-free synchronous
    reference.  ``--kill-host`` / ``--flap`` run the cluster chaos
    scenarios instead of the clean baseline — the CI ``cluster-smoke``
    job runs the kill variant with ``--affinity-min 0.98``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description=(
            "Run parallel streaming PCA on the multi-node TCP cluster "
            "runtime (1 coordinator + N engine-host processes on "
            "localhost) and gate on subspace affinity against the "
            "fault-free synchronous reference."
        ),
    )
    parser.add_argument(
        "--engines", type=int, default=3,
        help="engine count = engine-host process count (default 3)",
    )
    parser.add_argument(
        "--rows", type=int, default=2400,
        help="input observations to stream (default 2400)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="data/split seed (default 0)"
    )
    parser.add_argument(
        "--kill-host", action="store_true",
        help="SIGKILL 1 engine host mid-run (eviction + quorum must "
        "carry the run)",
    )
    parser.add_argument(
        "--flap", action="store_true",
        help="sever one host's TCP channel mid-run (it must redial)",
    )
    parser.add_argument(
        "--affinity-min", type=float, default=0.98,
        help="fail if the merged basis' affinity to the reference falls "
        "below this (default 0.98)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write the run's telemetry event log to FILE as JSONL "
        "(the CI artifact; renderable with `python -m repro telemetry`)",
    )
    args = parser.parse_args(argv)

    from repro.streams.chaos import (
        ChaosScenario,
        cluster_flap_scenario,
        cluster_kill_host_scenario,
        run_scenario,
    )
    from repro.streams.telemetry import Telemetry, TelemetryConfig

    if args.kill_host:
        scenario = cluster_kill_host_scenario(
            seed=args.seed, n_engines=args.engines
        )
    elif args.flap:
        scenario = cluster_flap_scenario(
            seed=args.seed, n_engines=args.engines
        )
    else:
        scenario = ChaosScenario(
            name="cluster-baseline",
            faults=(),
            runtime="cluster",
            n_engines=args.engines,
            supervise=False,
            seed=args.seed,
        )
    scenario.n_samples = args.rows
    tel = Telemetry(TelemetryConfig(metrics=True, tracing=False))
    report = run_scenario(scenario, telemetry=tel)

    status = "ok" if report.ok else f"FAIL ({report.error})"
    print(
        f"{scenario.name} [cluster x{args.engines}] {status}: "
        f"affinity={report.affinity} lost={report.n_lost} "
        f"reconnects={report.n_reconnects} "
        f"evictions={report.n_evictions} "
        f"wall={report.wall_time_s:.1f}s"
    )
    if args.out:
        n = tel.write_jsonl(args.out)
        print(f"[telemetry: {n} events -> {args.out}]")
    if not report.ok:
        return 1
    if report.affinity is None or report.affinity < args.affinity_min:
        print(
            f"affinity gate FAILED: {report.affinity} < "
            f"{args.affinity_min}"
        )
        return 1
    return 0


def serve_main(argv: list[str]) -> int:
    """``python -m repro serve`` — multi-tenant streaming-PCA service.

    Default mode boots the asyncio HTTP/WebSocket front end and blocks
    until interrupted; ``--smoke`` instead runs the seeded concurrent
    smoke workload (the CI ``serving-smoke`` job) and exits non-zero on
    any contract violation (5xx, tuple loss, missing shed).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve streaming PCA over HTTP/WebSocket: per-tenant "
            "ingest lanes with admission control, a shared engine "
            "pool, and snapshot-cached query endpoints (transform, "
            "reconstruction_error, outlier_score, eigenspectra)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8780,
        help="bind port (default 8780; 0 = ephemeral)",
    )
    parser.add_argument(
        "--lanes", type=int, default=2,
        help="engine-lane count of the shared pool (default 2)",
    )
    parser.add_argument(
        "--tenant", action="append", default=[], metavar="NAME[:P]",
        help="pre-create a tenant (optionally NAME:n_components); "
        "repeatable",
    )
    parser.add_argument(
        "--auto-tenants", action="store_true",
        help="auto-create unknown tenants on first ingest",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the concurrent smoke workload instead of serving",
    )
    parser.add_argument(
        "--clients", type=int, default=20,
        help="[--smoke] concurrent client threads (default 20)",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="[--smoke] seconds to drive load (default 30)",
    )
    parser.add_argument(
        "--seed", type=int, default=20120513,
        help="[--smoke] workload seed",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="[--smoke] write the telemetry event log to FILE as JSONL",
    )
    parser.add_argument(
        "--data-dir", metavar="DIR",
        help="durability root (WAL + checkpoints); restarting with the "
        "same DIR recovers all tenant state",
    )
    parser.add_argument(
        "--durability", choices=("none", "async", "fsync"),
        default="async",
        help="[--data-dir] WAL ack mode: none (buffered), async "
        "(survives process death; default), fsync (survives power loss)",
    )
    parser.add_argument(
        "--port-file", metavar="FILE",
        help="write the bound port to FILE once listening (lets a "
        "driver use --port 0 and still find the server)",
    )
    parser.add_argument(
        "--crash-smoke", action="store_true",
        help="run the SIGKILL/restart durability chaos scenario "
        "instead of serving (requires --data-dir semantics; a scratch "
        "dir is used unless --data-dir is given)",
    )
    parser.add_argument(
        "--crash-out", metavar="DIR",
        help="[--crash-smoke] write crash_report.json and the driver "
        "event log under DIR",
    )
    args = parser.parse_args(argv)

    from repro.serving import (
        PCAService,
        ServingConfig,
        ServingServer,
        TenantSpec,
        run_smoke,
    )

    if args.crash_smoke:
        from repro.serving.crashtest import run_crash_restart

        try:
            report = run_crash_restart(
                data_dir=args.data_dir,
                durability=args.durability,
                seed=args.seed,
                out_dir=args.crash_out,
                verbose=True,
            )
        except AssertionError as exc:
            print(f"CRASH-RESTART CONTRACT VIOLATION: {exc}")
            return 1
        print(
            "crash-restart smoke OK: "
            f"acked_rows={report['total_acked_rows']} "
            f"recovered_rows={report['total_recovered_rows']} "
            f"min_affinity={report['min_affinity']:.4f}"
        )
        return 0

    if args.smoke:
        try:
            run_smoke(
                n_clients=args.clients,
                duration_s=args.duration,
                seed=args.seed,
                n_lanes=args.lanes,
                telemetry_out=args.out,
                data_dir=args.data_dir,
                durability=args.durability,
            )
        except AssertionError as exc:
            print(exc)
            return 1
        return 0

    config = ServingConfig(
        n_lanes=args.lanes,
        data_dir=args.data_dir,
        durability=args.durability,
    )
    if args.auto_tenants or not args.tenant:
        config.auto_tenant_template = TenantSpec("template")
    service = PCAService(config)
    for entry in args.tenant:
        name, _, p = entry.partition(":")
        service.add_tenant(
            TenantSpec(name, n_components=int(p) if p else 4)
        )
    server = ServingServer(service, host=args.host, port=args.port)
    server.start()
    if args.port_file:
        tmp = args.port_file + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(str(server.port))
        os.replace(tmp, args.port_file)
    print(
        f"serving on {server.url} (lanes={args.lanes}"
        + (
            f", durability={args.durability} at {args.data_dir}"
            if args.data_dir else ""
        )
        + "); Ctrl-C to stop"
    )
    from repro.serving.http import serve_forever

    serve_forever(server)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment(s)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "telemetry":
        return telemetry_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "cluster":
        return cluster_main(argv[1:])
    if argv and argv[0] == "health":
        return health_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction experiments for 'Incremental and Parallel "
            "Analytics on Astrophysical Data Streams' (SC 2012)."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="experiments:\n"
        + "\n".join(f"  {k:<10} {v}" for k, v in EXPERIMENTS.items())
        + "\n\nother commands:\n"
        "  telemetry  render a run report from a telemetry JSONL log\n"
        "             (python -m repro telemetry <events.jsonl>)\n"
        "  chaos      run the fault-injection smoke suite\n"
        "             (python -m repro chaos --runtime threaded)\n"
        "  cluster    run PCA on the multi-node TCP runtime and gate on\n"
        "             affinity (python -m repro cluster --kill-host)\n"
        "  health     render the model-health report from a JSONL log\n"
        "             (python -m repro health <events.jsonl>)\n"
        "  serve      serve streaming PCA over HTTP/WebSocket\n"
        "             (python -m repro serve --port 8780)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which experiment to run",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="also write the result tables to FILE as markdown",
    )
    args = parser.parse_args(argv)

    names = (
        [k for k in EXPERIMENTS if k != "all"]
        if args.experiment == "all"
        else [args.experiment]
    )
    sink = open(args.output, "w") if args.output else None
    try:
        for name in names:
            _run_one(name, sink)
    finally:
        if sink is not None:
            sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
