"""The durability chaos scenario: SIGKILL the serving process, restart,
prove no acked row was lost.

This is the serving-layer counterpart of :mod:`repro.streams.chaos` —
but where chaos kills *engines inside* a process, this driver kills the
**whole process** with ``SIGKILL`` mid-ingest and restarts it from the
same ``--data-dir``.  The contract it proves (the acceptance criteria
of the durability plane, run by the CI ``serving-durability`` job):

1. **Zero acked-row loss** — after restart, every tenant reports
   ``rows_applied >=`` the rows the driver had received 202 acks for
   under ``--durability fsync`` (over-replay of *unacked* rows is
   permitted; at-least-once, never at-most-once).
2. **Monotone snapshot versions** — the first post-restart snapshot
   version is >= the highest version observed before the kill.
3. **Correct answers** — the recovered basis agrees with a local
   reference model fed exactly the acked rows (principal-angle
   affinity >= ``min_affinity``), so recovery replayed real data, not
   garbage.

The server runs as a real subprocess (``python -m repro serve
--port 0 --port-file ... --data-dir ...``) so the SIGKILL is a true
process death: no atexit, no flush, no destructor runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any

import numpy as np

from ..core.robust import RobustIncrementalPCA
from ..streams.chaos import _affinity
from .client import ServingClient

__all__ = ["run_crash_restart"]


def _spawn_server(
    data_dir: pathlib.Path,
    durability: str,
    tenants: tuple[str, ...],
    n_components: int,
    log_path: pathlib.Path,
) -> tuple[subprocess.Popen, int]:
    """Boot ``python -m repro serve`` on an ephemeral port; returns
    ``(process, port)`` once the port file appears."""
    port_file = data_dir / "port"
    try:
        port_file.unlink()
    except OSError:
        pass
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--port-file", str(port_file),
        "--data-dir", str(data_dir),
        "--durability", durability,
        "--lanes", "2",
    ]
    for t in tenants:
        cmd += ["--tenant", f"{t}:{n_components}"]
    # The server subprocess must import this very repro tree no matter
    # what cwd it gets: prepend the absolute source root.
    env = dict(os.environ)
    src_root = str(pathlib.Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(log_path, "ab")
    proc = subprocess.Popen(
        cmd, stdout=log, stderr=subprocess.STDOUT, cwd=str(data_dir),
        env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died during startup (rc={proc.returncode}); "
                f"see {log_path}"
            )
        try:
            return proc, int(port_file.read_text())
        except (OSError, ValueError):
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never wrote its port file")


def _await_ready(
    client: ServingClient,
    events: list[dict[str, Any]],
    timeout_s: float = 60.0,
) -> list[dict[str, Any]]:
    """Poll /ready until 200; returns the 503 recovery-progress bodies
    observed on the way up (the recovery trace)."""
    recovery_bodies: list[dict[str, Any]] = []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            reply = client.ready()
        except OSError:
            time.sleep(0.05)
            continue
        if reply.code == 200:
            return recovery_bodies
        if isinstance(reply.body, dict) and reply.body.get("recovering"):
            recovery_bodies.append(reply.body)
            events.append({
                "event": "ready_503_recovering",
                "recovery": reply.body.get("recovery"),
            })
        time.sleep(0.05)
    raise AssertionError(f"/ready never reached 200 within {timeout_s}s")


def run_crash_restart(
    *,
    data_dir: str | None = None,
    durability: str = "fsync",
    seed: int = 20120513,
    tenants: tuple[str, ...] = ("t0", "t1"),
    n_components: int = 4,
    dim: int = 12,
    block_rows: int = 24,
    pre_kill_blocks: int = 60,
    post_kill_blocks: int = 12,
    min_affinity: float = 0.98,
    out_dir: str | None = None,
    verbose: bool = False,
) -> dict[str, Any]:
    """Run the SIGKILL/restart scenario; returns the report (raises
    :class:`AssertionError` on any contract violation)."""
    root = pathlib.Path(data_dir or tempfile.mkdtemp(prefix="repro-crash-"))
    root.mkdir(parents=True, exist_ok=True)
    out = pathlib.Path(out_dir) if out_dir else root
    out.mkdir(parents=True, exist_ok=True)
    events: list[dict[str, Any]] = []

    def log(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    rng = np.random.default_rng(seed)
    # Per-tenant anisotropic generators with geometric eigenvalue decay:
    # large eigengaps keep the leading subspace well-determined, so the
    # affinity check measures recovery fidelity, not eigengap noise.
    scales = {
        t: 3.0 * (0.65 ** np.arange(dim)) * (1.0 + 0.3 * i)
        for i, t in enumerate(tenants)
    }
    acked: dict[str, list[np.ndarray]] = {t: [] for t in tenants}
    acked_rows = {t: 0 for t in tenants}
    last_version = {t: 0 for t in tenants}

    # ---- phase 1: ingest, then pull the plug -----------------------------
    proc, port = _spawn_server(
        root, durability, tenants, n_components, out / "server-run1.log"
    )
    client = ServingClient("127.0.0.1", port, timeout_s=10.0)
    _await_ready(client, events)
    log(f"phase 1 up on :{port} ({durability})")
    sent_blocks = 0
    while sent_blocks < pre_kill_blocks:
        t = tenants[sent_blocks % len(tenants)]
        block = rng.normal(size=(block_rows, dim)) * scales[t]
        try:
            reply = client.ingest(t, block)
        except OSError as exc:
            raise AssertionError(
                f"ingest died before the planned kill: {exc}"
            ) from exc
        if reply.code == 202:
            acked[t].append(block)
            acked_rows[t] += block_rows
            last_version[t] = max(
                last_version[t], int(reply.body["snapshot_version"])
            )
        sent_blocks += 1
    # SIGKILL with the queues still warm: rows are acked (fsync-durable)
    # but not all applied, checkpoints lag publishes — the WAL tail is
    # doing real work in phase 2.
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10.0)
    client.close()
    events.append({
        "event": "sigkill",
        "acked_rows": dict(acked_rows),
        "last_version": dict(last_version),
    })
    log(f"SIGKILLed pid {proc.pid} after {sent_blocks} blocks: "
        f"acked={acked_rows}")

    # ---- phase 2: restart from the same data dir -------------------------
    proc2, port2 = _spawn_server(
        root, durability, tenants, n_components, out / "server-run2.log"
    )
    try:
        client2 = ServingClient("127.0.0.1", port2, timeout_s=10.0)
        recovery_trace = _await_ready(client2, events)
        log(f"phase 2 up on :{port2}; "
            f"{len(recovery_trace)} recovery probes observed")

        report: dict[str, Any] = {
            "durability": durability,
            "seed": seed,
            "pre_kill_blocks": sent_blocks,
            "recovery_probes_503": len(recovery_trace),
            "tenants": {},
        }
        failures: list[str] = []
        min_aff = 1.0
        for t in tenants:
            snap = client2.snapshot(t)
            if snap.code != 200:
                failures.append(
                    f"{t}: no snapshot after recovery ({snap.code})"
                )
                continue
            model_rows = int(snap.body["model_rows"])
            version = int(snap.body["snapshot_version"])
            # Contract 1: zero acked-row loss (>=: over-replay of
            # unacked-but-durable rows is at-least-once, allowed).
            if model_rows < acked_rows[t]:
                failures.append(
                    f"{t}: LOST ACKED ROWS — rows_applied={model_rows} "
                    f"< acked={acked_rows[t]}"
                )
            # Contract 2: monotone snapshot versions across the restart.
            if version < last_version[t]:
                failures.append(
                    f"{t}: version went backwards — {version} < "
                    f"pre-kill {last_version[t]}"
                )
            # Contract 3: the recovered basis answers like a reference
            # model fed exactly the acked rows.
            ref = RobustIncrementalPCA(n_components)
            ref.update_block(np.vstack(acked[t]))
            spectra = client2.eigenspectra(t, include_basis=True)
            basis = np.array(spectra.body["spectra"]["basis"]).T
            aff = _affinity(ref.public_state().basis, basis)
            min_aff = min(min_aff, aff)
            if aff < min_affinity:
                failures.append(
                    f"{t}: recovered basis affinity {aff:.4f} < "
                    f"{min_affinity}"
                )
            report["tenants"][t] = {
                "acked_rows": acked_rows[t],
                "recovered_rows": model_rows,
                "pre_kill_version": last_version[t],
                "recovered_version": version,
                "affinity": aff,
            }
            log(f"  {t}: acked={acked_rows[t]} recovered={model_rows} "
                f"version {last_version[t]}->{version} affinity={aff:.4f}")

        # The restarted service must also *work*: ingest more and watch
        # versions keep climbing.
        for i in range(post_kill_blocks):
            t = tenants[i % len(tenants)]
            block = rng.normal(size=(block_rows, dim)) * scales[t]
            reply = client2.ingest(t, block)
            if reply.code != 202:
                failures.append(
                    f"post-restart ingest to {t} failed: {reply.code} "
                    f"{reply.body}"
                )
                break
        time.sleep(1.0)
        for t in tenants:
            snap = client2.snapshot(t)
            if snap.code == 200:
                v = int(snap.body["snapshot_version"])
                report["tenants"][t]["post_ingest_version"] = v
                if v < report["tenants"][t]["recovered_version"]:
                    failures.append(f"{t}: version regressed post-restart")

        status = client2.status()
        report["total_acked_rows"] = sum(acked_rows.values())
        report["total_recovered_rows"] = sum(
            v["recovered_rows"] for v in report["tenants"].values()
        )
        report["min_affinity"] = min_aff
        report["failures"] = failures
        report["ok"] = not failures
        events.append({"event": "report", "report": report})

        (out / "crash_report.json").write_text(
            json.dumps(report, indent=1, sort_keys=True)
        )
        with open(out / "crash-events.jsonl", "w") as fh:
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
        if status.code == 200:
            (out / "recovered-status.json").write_text(
                json.dumps(status.body, indent=1, sort_keys=True)
            )
        client2.close()
    finally:
        proc2.terminate()
        try:
            proc2.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc2.kill()

    if failures:
        raise AssertionError(
            "crash-restart contract violated:\n  " + "\n  ".join(failures)
        )
    return report
