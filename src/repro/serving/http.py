"""Asyncio HTTP/1.1 + WebSocket front end over :class:`PCAService`.

Stdlib only: one background thread runs an asyncio event loop; each
connection is a coroutine doing keep-alive HTTP/1.1 request parsing
(``readuntil`` for headers, ``readexactly`` for the body, a per-read
idle timeout so slow/hung clients cannot pin a connection forever).
The routes are a thin JSON codec over the transport-independent
service core — all policy (admission, snapshot reads, readiness)
lives in :mod:`repro.serving.service`.

Routes::

    GET  /live                             liveness
    GET  /ready                            readiness (503 when degraded)
    GET  /metrics                          Prometheus text exposition
    GET  /status                           full serving status JSON
    POST /v1/<tenant>/ingest               {"rows": [[...], ...]} -> 202/429
    POST /v1/<tenant>/transform            {"rows": ...} -> coefficients
    POST /v1/<tenant>/reconstruction_error {"rows": ...} -> r^2 per row
    POST /v1/<tenant>/outlier_score        {"rows": ...} -> scores + flags
    GET  /v1/<tenant>/eigenspectra[?top_k=&include_basis=]
    GET  /v1/<tenant>/snapshot             snapshot metadata only
    GET  /v1/<tenant>/events               WebSocket push (drift/health/
                                           snapshot/lane events)

Every 429 carries a ``Retry-After`` header (seconds, from the tenant
valve).  WebSocket is the minimal RFC 6455 server subset: text frames
out, close/ping handled in, client masking required.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import socket
import struct
import threading
import time
import urllib.parse
from typing import Any

from .service import PCAService

__all__ = ["ServingServer"]

_WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_HTTP_CODES = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    426: "Upgrade Required", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _BadRequest(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class ServingServer:
    """The network face of one :class:`PCAService` deployment."""

    def __init__(
        self,
        service: PCAService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        conn_timeout_s: float = 30.0,
        max_body_bytes: int = 16 * 1024 * 1024,
        ws_ping_interval_s: float = 15.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)  # 0 = ephemeral; real port set at start()
        self.conn_timeout_s = float(conn_timeout_s)
        self.max_body_bytes = int(max_body_bytes)
        self.ws_ping_interval_s = float(ws_ping_interval_s)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self.n_requests = 0
        self.n_ws_connections = 0

    # -- lifecycle --------------------------------------------------------

    def start(self, timeout_s: float = 10.0) -> "ServingServer":
        """Boot the service and the listener; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.service.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="serving-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("serving loop failed to start in time")
        if self._start_error is not None:
            raise RuntimeError(
                f"serving listener failed: {self._start_error!r}"
            )
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_conn, self.host, self.port,
                    family=socket.AF_INET,
                )
            )
            self._server = server
            self.port = server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            try:
                loop.run_until_complete(server.wait_closed())
                # Give in-flight connection handlers one pass to unwind,
                # then cancel stragglers so loop.close() is quiet.
                pending = [
                    t for t in asyncio.all_tasks(loop) if not t.done()
                ]
                for t in pending:
                    t.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:
                pass
            loop.close()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.conn_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection: just drop it
                except (
                    asyncio.IncompleteReadError, ConnectionError
                ):
                    break
                except asyncio.LimitOverrunError:
                    await self._send_json(
                        writer, 413, {"error": "headers too large"},
                        close=True,
                    )
                    break
                except _BadRequest as exc:
                    await self._send_json(
                        writer, exc.code, {"error": exc.message},
                        close=True,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                if self._is_ws_upgrade(headers):
                    await self._handle_websocket(
                        reader, writer, path, headers
                    )
                    return
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                t0 = time.perf_counter()
                code, payload, extra = self._route(method, path, body)
                self.service.observe_latency(
                    self._route_label(path), time.perf_counter() - t0
                )
                self.n_requests += 1
                if isinstance(payload, (bytes, str)):
                    await self._send_raw(
                        writer, code, payload, extra,
                        close=not keep_alive,
                    )
                else:
                    await self._send_json(
                        writer, code, payload, extra_headers=extra,
                        close=not keep_alive,
                    )
                if not keep_alive:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _BadRequest(400, f"malformed request line: {lines[0]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _BadRequest(400, f"bad content-length: {length!r}")
            if n > self.max_body_bytes:
                raise _BadRequest(
                    413, f"body of {n} bytes exceeds "
                         f"{self.max_body_bytes}"
                )
            if n:
                body = await reader.readexactly(n)
        elif headers.get("transfer-encoding", "").lower() == "chunked":
            raise _BadRequest(400, "chunked bodies not supported")
        return method.upper(), target, headers, body

    # -- routing ----------------------------------------------------------

    @staticmethod
    def _route_label(path: str) -> str:
        """Collapse tenant-specific paths to one histogram label."""
        parts = path.split("?", 1)[0].strip("/").split("/")
        if len(parts) == 3 and parts[0] == "v1":
            return parts[2]
        return "/" + "/".join(parts)

    def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, Any, dict[str, str]]:
        parsed = urllib.parse.urlsplit(target)
        path = parsed.path
        query = urllib.parse.parse_qs(parsed.query)
        svc = self.service
        try:
            if path in ("/live", "/healthz"):
                code, payload = svc.live()
                return code, payload, {}
            if path == "/ready":
                code, payload = svc.ready()
                extra = {}
                if code == 503 and "retry_after_s" in payload:
                    retry = payload["retry_after_s"]
                    extra["Retry-After"] = f"{max(retry, 0.001):.3f}"
                return code, payload, extra
            if path == "/metrics":
                return 200, svc.telemetry.metrics.to_prometheus(), {
                    "Content-Type": "text/plain; version=0.0.4",
                }
            if path == "/status":
                code, payload = svc.status()
                return code, payload, {}
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "v1":
                return self._route_tenant(
                    method, parts[1], parts[2], body, query
                )
            return 404, {
                "error": "unknown path", "path": path,
                "hint": "see docs/serving.md for the API surface",
            }, {}
        except _BadRequest as exc:
            return exc.code, {"error": exc.message}, {}
        except Exception as exc:  # pragma: no cover - last-resort guard
            return 500, {"error": f"internal error: {exc!r}"}, {}

    def _route_tenant(
        self, method: str, tenant: str, op: str, body: bytes,
        query: dict[str, list[str]],
    ) -> tuple[int, Any, dict[str, str]]:
        svc = self.service
        post_ops = {
            "ingest", "transform", "reconstruction_error", "outlier_score",
        }
        if op in post_ops:
            if method != "POST":
                return 405, {"error": f"{op} requires POST"}, {
                    "Allow": "POST",
                }
            rows = self._parse_rows(body)
            if op == "ingest":
                code, payload = svc.ingest(tenant, rows)
            elif op == "transform":
                code, payload = svc.transform(tenant, rows)
            elif op == "reconstruction_error":
                code, payload = svc.reconstruction_error(tenant, rows)
            else:
                code, payload = svc.outlier_score(tenant, rows)
            extra = {}
            if code in (429, 503) and "retry_after_s" in payload:
                retry = payload.get("retry_after_s", 0.05)
                extra["Retry-After"] = f"{max(retry, 0.001):.3f}"
            return code, payload, extra
        if op == "eigenspectra":
            if method not in ("GET", "POST"):
                return 405, {"error": "eigenspectra requires GET"}, {
                    "Allow": "GET, POST",
                }
            top_k = None
            if "top_k" in query:
                try:
                    top_k = int(query["top_k"][0])
                except ValueError:
                    raise _BadRequest(400, "top_k must be an integer")
            include_basis = (
                query.get("include_basis", ["0"])[0].lower()
                in ("1", "true", "yes")
            )
            code, payload = svc.eigenspectra(
                tenant, top_k, include_basis=include_basis
            )
            return code, payload, {}
        if op == "snapshot":
            snap, err = svc._snapshot_or_error(tenant)
            if err is not None:
                return err[0], err[1], {}
            return 200, snap.meta(), {}
        if op == "events":
            return 426, {
                "error": "events is a WebSocket endpoint",
                "hint": "connect with an Upgrade: websocket handshake",
            }, {}
        return 404, {
            "error": "unknown operation", "tenant": tenant, "op": op,
        }, {}

    @staticmethod
    def _parse_rows(body: bytes):
        if not body:
            raise _BadRequest(400, "empty body; expected JSON")
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(400, f"bad JSON: {exc}")
        if isinstance(doc, dict):
            if "rows" not in doc:
                raise _BadRequest(422, 'missing "rows" field')
            return doc["rows"]
        if isinstance(doc, list):
            return doc
        raise _BadRequest(422, "expected {'rows': [[...]]} or a list")

    # -- responses --------------------------------------------------------

    async def _send_json(
        self, writer: asyncio.StreamWriter, code: int, payload: Any,
        extra_headers: dict[str, str] | None = None, *, close: bool = False,
    ) -> None:
        data = json.dumps(payload, separators=(",", ":")).encode()
        await self._send_bytes(
            writer, code, data, "application/json",
            extra_headers or {}, close,
        )

    async def _send_raw(
        self, writer: asyncio.StreamWriter, code: int, payload,
        extra_headers: dict[str, str], *, close: bool = False,
    ) -> None:
        data = payload.encode() if isinstance(payload, str) else payload
        ctype = extra_headers.pop("Content-Type", "text/plain")
        await self._send_bytes(
            writer, code, data, ctype, extra_headers, close
        )

    async def _send_bytes(
        self, writer, code, data: bytes, ctype: str,
        extra_headers: dict[str, str], close: bool,
    ) -> None:
        reason = _HTTP_CODES.get(code, "Unknown")
        head = [
            f"HTTP/1.1 {code} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(data)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for k, v in extra_headers.items():
            head.append(f"{k}: {v}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode() + data
        )
        await writer.drain()

    # -- WebSocket push ----------------------------------------------------

    @staticmethod
    def _is_ws_upgrade(headers: dict[str, str]) -> bool:
        return (
            "websocket" in headers.get("upgrade", "").lower()
            and "upgrade" in headers.get("connection", "").lower()
        )

    async def _handle_websocket(
        self, reader, writer, path: str, headers: dict[str, str]
    ) -> None:
        parts = path.split("?", 1)[0].strip("/").split("/")
        if len(parts) != 3 or parts[0] != "v1" or parts[2] != "events":
            await self._send_json(
                writer, 404,
                {"error": "unknown websocket path", "path": path},
                close=True,
            )
            return
        tenant = parts[1]
        key = headers.get("sec-websocket-key")
        if not key:
            await self._send_json(
                writer, 400, {"error": "missing Sec-WebSocket-Key"},
                close=True,
            )
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_MAGIC).encode()).digest()
        ).decode()
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        self.n_ws_connections += 1
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        sid = self.service.bus.subscribe(
            waker=lambda: loop.call_soon_threadsafe(wake.set)
        )
        reader_task = asyncio.ensure_future(self._ws_read_frame(reader))
        try:
            await self._ws_send_text(writer, json.dumps({
                "event": "subscribed", "tenant": tenant,
                "snapshot_version": self.service.cache.version(tenant),
            }))
            while True:
                wake_task = asyncio.ensure_future(wake.wait())
                done, _pending = await asyncio.wait(
                    {reader_task, wake_task},
                    timeout=self.ws_ping_interval_s,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:  # idle: keep the connection warm
                    wake_task.cancel()
                    await self._ws_send_frame(writer, 0x9, b"ping")
                    continue
                if reader_task in done:
                    wake_task.cancel()
                    opcode, payload = reader_task.result()
                    if opcode is None or opcode == 0x8:  # EOF / close
                        break
                    if opcode == 0x9:  # ping -> pong
                        await self._ws_send_frame(writer, 0xA, payload)
                    reader_task = asyncio.ensure_future(
                        self._ws_read_frame(reader)
                    )
                if wake_task in done or wake.is_set():
                    wake.clear()
                    for event in self.service.bus.drain(sid):
                        ev_tenant = event.get("tenant")
                        if ev_tenant is not None and ev_tenant != tenant:
                            continue
                        await self._ws_send_text(
                            writer, json.dumps(event)
                        )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.service.bus.unsubscribe(sid)
            reader_task.cancel()
            try:
                await self._ws_send_frame(writer, 0x8, b"")
            except Exception:
                pass

    @staticmethod
    async def _ws_read_frame(reader):
        """One frame -> (opcode, payload); (None, b'') on EOF."""
        try:
            head = await reader.readexactly(2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None, b""
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if length == 126:
            length = struct.unpack(
                ">H", await reader.readexactly(2)
            )[0]
        elif length == 127:
            length = struct.unpack(
                ">Q", await reader.readexactly(8)
            )[0]
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
        if masked and payload:
            payload = bytes(
                b ^ mask[i % 4] for i, b in enumerate(payload)
            )
        return opcode, payload

    @staticmethod
    async def _ws_send_frame(writer, opcode: int, payload: bytes) -> None:
        head = bytes([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head += bytes([n])
        elif n < 1 << 16:
            head += bytes([126]) + struct.pack(">H", n)
        else:
            head += bytes([127]) + struct.pack(">Q", n)
        writer.write(head + payload)
        await writer.drain()

    async def _ws_send_text(self, writer, text: str) -> None:
        await self._ws_send_frame(writer, 0x1, text.encode())


def serve_forever(server: ServingServer) -> None:
    """Block until interrupted (the ``python -m repro serve`` loop)."""
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
