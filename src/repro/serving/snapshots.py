"""Versioned eigenbasis snapshots: the read path of the serving layer.

The serving contract (docs/serving.md) separates the *hot* model — a
streaming estimator continuously updated by ingest traffic, guarded by a
per-tenant lock — from the *cold* read path: every query is answered
from an immutable :class:`BasisSnapshot` that the compute side publishes
every ``publish_every_blocks`` blocks.  Publishing copies the truncated
eigensystem once (copy-on-publish); after that the snapshot is never
mutated, so readers need no lock at all — ``transform``,
``reconstruction_error``, ``outlier_score`` and ``eigenspectra`` are
pure functions of the snapshot and the query rows.

Staleness is explicit, not hidden: every query response carries the
snapshot ``version``, its ``age_s``, and the number of rows the model
had consumed when it was taken, so a client can decide whether the
answer is fresh enough (the Budavári et al. eigenspectra-service model:
reliable cached spectra, refreshed as the stream moves).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.eigensystem import Eigensystem

__all__ = ["BasisSnapshot", "EigenbasisCache"]

#: Default scaled-residual cutoff for :meth:`BasisSnapshot.outlier_score`
#: when the publishing model carries no calibrated rho rejection point
#: (e.g. the parallel chunk mode): ``r²/σ² >= 9`` is the classical
#: 3-sigma rule on the residual norm.
DEFAULT_OUTLIER_T = 9.0


@dataclass(frozen=True)
class BasisSnapshot:
    """One immutable, versioned view of a tenant's eigenbasis.

    ``state`` is a private deep copy made at publish time; nothing else
    holds a reference, so the snapshot is safe to read from any number
    of threads without synchronization.
    """

    tenant: str
    version: int
    state: Eigensystem
    rows_applied: int
    blocks_applied: int
    outlier_t: float = DEFAULT_OUTLIER_T
    #: Highest write-ahead-log sequence folded into ``state`` when the
    #: snapshot was taken (-1 when the tenant has no durability plane).
    #: A checkpoint of this snapshot covers every WAL record <= wal_seq.
    wal_seq: int = -1
    published_at: float = field(default_factory=time.monotonic)
    published_unix: float = field(default_factory=time.time)

    # -- metadata ---------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.state.dim

    @property
    def n_components(self) -> int:
        return self.state.n_components

    def age_s(self, now: float | None = None) -> float:
        """Seconds since this snapshot was published (monotonic clock)."""
        return max(0.0, (now if now is not None else time.monotonic())
                   - self.published_at)

    def meta(self) -> dict[str, Any]:
        """The staleness-contract fields attached to every query reply."""
        return {
            "tenant": self.tenant,
            "snapshot_version": self.version,
            "snapshot_age_s": self.age_s(),
            "model_rows": self.rows_applied,
            "model_blocks": self.blocks_applied,
            "n_components": self.n_components,
            "dim": self.dim,
        }

    # -- queries (pure functions of snapshot + rows) ----------------------

    def _rows(self, rows) -> np.ndarray:
        x = np.asarray(rows, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(
                f"expected rows of dim {self.dim}, got shape {x.shape}"
            )
        return x

    def transform(self, rows) -> np.ndarray:
        """Expansion coefficients ``(k, p)`` on the published basis."""
        x = self._rows(rows)
        return (x - self.state.mean) @ self.state.basis

    def inverse_transform(self, coeffs) -> np.ndarray:
        z = np.asarray(coeffs, dtype=np.float64)
        if z.ndim == 1:
            z = z[None, :]
        return z @ self.state.basis.T + self.state.mean

    def reconstruction_error(self, rows) -> np.ndarray:
        """Squared residual norm ``r²`` of each row off the basis."""
        x = self._rows(rows)
        y = x - self.state.mean
        proj = y @ self.state.basis
        return np.sum((y - proj @ self.state.basis.T) ** 2, axis=1)

    def outlier_score(self, rows) -> tuple[np.ndarray, np.ndarray]:
        """``(scores, flags)``: scaled residuals ``t = r²/σ²`` and the
        ``t >= outlier_t`` outlier flags (the estimator's rejection
        rule applied to the published state)."""
        r2 = self.reconstruction_error(rows)
        scale = self.state.scale if self.state.scale > 0 else 1.0
        t = r2 / scale
        return t, t >= self.outlier_t

    def eigenspectra(
        self, top_k: int | None = None, *, include_basis: bool = False
    ) -> dict[str, Any]:
        """Eigenvalues (and optionally eigenvectors) for the spectra API."""
        eigs = self.state.eigenvalues
        k = eigs.shape[0] if top_k is None else min(int(top_k), eigs.shape[0])
        total = float(np.sum(eigs)) if eigs.size else 0.0
        out: dict[str, Any] = {
            "eigenvalues": eigs[:k].tolist(),
            "explained_fraction": (
                [float(v) / total for v in eigs[:k]] if total > 0 else
                [0.0] * k
            ),
            "mean": self.state.mean.tolist(),
            "scale": float(self.state.scale),
        }
        if include_basis:
            out["basis"] = self.state.basis[:, :k].T.tolist()
        return out


class EigenbasisCache:
    """Copy-on-publish snapshot store, one current snapshot per tenant.

    Writers (the engine lanes) call :meth:`publish` — a short lock
    protects the version counter and the dict write.  Readers call
    :meth:`get`, which is a single dict lookup of an immutable object:
    no lock, no contention with the compute path, ever.  Old snapshots
    are simply dropped (clients that captured one keep a valid,
    consistent view — that is the point of immutability).
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, BasisSnapshot] = {}
        self._lock = threading.Lock()
        self._listeners: list[Callable[[BasisSnapshot], None]] = []
        self.n_published = 0
        self.n_hits = 0
        self.n_misses = 0

    def add_listener(self, fn: Callable[[BasisSnapshot], None]) -> None:
        """Call ``fn(snapshot)`` after every publish (WS push, tests)."""
        self._listeners.append(fn)

    # -- write side -------------------------------------------------------

    def publish(
        self,
        tenant: str,
        state: Eigensystem,
        *,
        rows_applied: int,
        blocks_applied: int,
        outlier_t: float = DEFAULT_OUTLIER_T,
        wal_seq: int = -1,
        version: int | None = None,
    ) -> BasisSnapshot:
        """Install a new immutable snapshot for ``tenant``.

        ``state`` is deep-copied here so the caller may keep mutating its
        own working state after publishing (copy-on-publish).

        ``version`` is normally assigned here (previous + 1); recovery
        passes the pre-crash version explicitly so the version stream a
        client observes stays monotone across a restart.  An explicit
        version below the current one is clamped up — versions never
        move backwards.
        """
        with self._lock:
            prev = self._snapshots.get(tenant)
            next_version = (prev.version + 1) if prev is not None else 1
            if version is not None:
                next_version = max(int(version), next_version)
            snap = BasisSnapshot(
                tenant=tenant,
                version=next_version,
                state=state.copy(),
                rows_applied=int(rows_applied),
                blocks_applied=int(blocks_applied),
                outlier_t=float(outlier_t),
                wal_seq=int(wal_seq),
            )
            self._snapshots[tenant] = snap
            self.n_published += 1
        for fn in list(self._listeners):
            try:
                fn(snap)
            except Exception:  # a broken listener must not block publish
                pass
        return snap

    def drop(self, tenant: str) -> None:
        with self._lock:
            self._snapshots.pop(tenant, None)

    # -- read side (lock-free) --------------------------------------------

    def get(self, tenant: str) -> BasisSnapshot | None:
        """The tenant's current snapshot, or ``None`` before first publish."""
        snap = self._snapshots.get(tenant)
        if snap is None:
            self.n_misses += 1
        else:
            self.n_hits += 1
        return snap

    def peek(self, tenant: str) -> BasisSnapshot | None:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self._snapshots.get(tenant)

    def version(self, tenant: str) -> int:
        snap = self._snapshots.get(tenant)
        return snap.version if snap is not None else 0

    def tenants(self) -> list[str]:
        return sorted(self._snapshots)

    def stats(self) -> dict[str, Any]:
        reads = self.n_hits + self.n_misses
        return {
            "n_published": self.n_published,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "hit_ratio": (self.n_hits / reads) if reads else None,
            "tenants": len(self._snapshots),
        }
