"""Multi-tenant streaming-PCA-as-a-service.

The serving layer separates the three planes the ROADMAP's
"millions of users" direction calls for:

* **ingestion** — clients POST row blocks into per-tenant bounded
  queues behind a per-tenant :class:`~repro.streams.resilience.\
LoadShedValve` (429 + ``Retry-After`` on shed, never silent drop);
* **compute** — a shared :class:`~repro.serving.pool.EnginePool` of
  lanes drains the queues into per-tenant streaming-PCA models
  (direct recursion, or parallel chunk mode over
  :class:`~repro.parallel.ParallelStreamingPCA` on any runtime) and
  publishes versioned eigenbasis snapshots every ``k`` blocks;
* **query** — transform / reconstruction-error / outlier-score /
  eigenspectra answered *only* from the immutable copy-on-publish
  :class:`~repro.serving.snapshots.EigenbasisCache`, so read traffic
  never contends with the model lock, plus a WebSocket push channel
  for snapshot/drift/health events.

Boot one with ``python -m repro serve`` or::

    from repro.serving import PCAService, ServingConfig, ServingServer
    from repro.serving import TenantSpec

    service = PCAService(ServingConfig(n_lanes=2))
    service.add_tenant(TenantSpec("sdss", n_components=5))
    server = ServingServer(service, port=8780).start()
"""

from .client import Reply, ServingClient, WebSocketClient
from .durability import (
    DurabilityPlane,
    RecoveryManager,
    TenantCheckpointer,
    TenantCheckpointStore,
    WalError,
    WriteAheadLog,
)
from .http import ServingServer
from .pool import ElasticController, EngineLane, EnginePool
from .service import EventBus, PCAService, ServingConfig
from .smoke import run_smoke
from .snapshots import BasisSnapshot, EigenbasisCache
from .tenancy import (
    IngestQueue,
    QueueFull,
    TenantModel,
    TenantRouter,
    TenantSpec,
    TenantState,
)

__all__ = [
    "BasisSnapshot",
    "DurabilityPlane",
    "EigenbasisCache",
    "ElasticController",
    "EngineLane",
    "EnginePool",
    "EventBus",
    "IngestQueue",
    "PCAService",
    "QueueFull",
    "RecoveryManager",
    "Reply",
    "run_smoke",
    "ServingClient",
    "ServingConfig",
    "ServingServer",
    "TenantCheckpointer",
    "TenantCheckpointStore",
    "TenantModel",
    "TenantRouter",
    "TenantSpec",
    "TenantState",
    "WalError",
    "WriteAheadLog",
]
