"""Blocking clients for the serving API (tests, smoke runs, benchmarks).

:class:`ServingClient` wraps one keep-alive ``http.client`` connection —
use one instance per thread.  Requests retry under a bounded
exponential-backoff budget (the
:class:`~repro.streams.network_sources._RetryBudget` discipline):
connection resets are retried only for idempotent requests (GETs and
the read-only query POSTs — an ingest that died mid-exchange may have
been applied, so it is never silently re-sent), and 429 shed replies
are retried honoring the server's ``Retry-After`` when ``retry_429``
is enabled.  :class:`WebSocketClient` is the matching minimal RFC 6455
client for the ``/v1/<tenant>/events`` push channel.
"""

from __future__ import annotations

import base64
import hashlib
import http.client
import json
import os
import socket
import struct
import time
from dataclasses import dataclass
from typing import Any

from ..streams.network_sources import _RetryBudget

__all__ = ["Reply", "ServingClient", "WebSocketClient"]

_WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class _ClientRetryBudget(_RetryBudget):
    """The network-source retry budget, plus a per-wait delay floor so a
    429's ``Retry-After`` can stretch (never shrink) the backoff."""

    def wait(self, floor_s: float = 0.0) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        delay = self._delay * (1.0 + self._jitter * self._rng.random())
        time.sleep(max(delay, float(floor_s)))
        self._delay = min(self._delay * 2.0, self._cap)
        return True


@dataclass(frozen=True)
class Reply:
    """One HTTP exchange: status code, parsed JSON body, raw headers."""

    code: int
    body: Any
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.code < 300

    @property
    def retry_after_s(self) -> float | None:
        v = self.headers.get("retry-after")
        return float(v) if v is not None else None


class ServingClient:
    """One keep-alive connection to a :class:`ServingServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        jitter: float = 0.25,
        retry_429: bool = False,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.jitter = float(jitter)
        #: Opt-in: transparently wait out 429 sheds (honoring the
        #: server's ``Retry-After``) instead of returning them.  Off by
        #: default — load generators and admission tests must *see*
        #: their 429s.
        self.retry_429 = bool(retry_429)
        self.seed = int(seed)
        self.telemetry = telemetry
        self.n_retries = 0
        self._conn: http.client.HTTPConnection | None = None

    def _budget(self) -> _ClientRetryBudget:
        return _ClientRetryBudget(
            self.max_retries,
            base_s=self.backoff_base_s,
            cap_s=self.backoff_cap_s,
            jitter=self.jitter,
            seed=self.seed,
        )

    def _note_retry(self, kind: str) -> None:
        self.n_retries += 1
        if self.telemetry is not None:
            try:
                self.telemetry.metrics.counter(
                    "repro_client_retries_total", kind=kind
                ).inc()
            except Exception:
                pass

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        idempotent: bool | None = None,
    ) -> Reply:
        """One exchange, with bounded retries.

        ``idempotent`` defaults to ``method == "GET"``.  A failure while
        *sending* is always safe to retry (the server never saw the
        request); a failure while *receiving* the response is retried
        only for idempotent requests — the server may have applied a
        non-idempotent one (e.g. an ingest) before the socket died, and
        re-sending would double-count its rows.
        """
        if idempotent is None:
            idempotent = method.upper() == "GET"
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        budget = self._budget()
        while True:
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=body, headers=headers)
                sent = True
                resp = conn.getresponse()
                raw = resp.read()
            except (
                http.client.HTTPException, ConnectionError, OSError
            ):
                self.close()
                if sent and not idempotent:
                    raise
                if not budget.wait():
                    raise
                self._note_retry("reconnect")
                continue
            reply = self._decode(resp, raw)
            if reply.code == 429 and self.retry_429:
                floor = reply.retry_after_s
                if floor is None and isinstance(reply.body, dict):
                    floor = reply.body.get("retry_after_s")
                if budget.wait(float(floor or 0.0)):
                    self._note_retry("shed")
                    continue
            return reply

    @staticmethod
    def _decode(resp, raw: bytes) -> Reply:
        hdrs = {k.lower(): v for k, v in resp.getheaders()}
        try:
            doc = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            doc = raw.decode(errors="replace")
        return Reply(code=resp.status, body=doc, headers=hdrs)

    # -- the API surface ---------------------------------------------------

    def ingest(self, tenant: str, rows) -> Reply:
        rows = rows.tolist() if hasattr(rows, "tolist") else rows
        return self.request(
            "POST", f"/v1/{tenant}/ingest", {"rows": rows},
            idempotent=False,
        )

    def transform(self, tenant: str, rows) -> Reply:
        rows = rows.tolist() if hasattr(rows, "tolist") else rows
        return self.request(
            "POST", f"/v1/{tenant}/transform", {"rows": rows},
            idempotent=True,
        )

    def reconstruction_error(self, tenant: str, rows) -> Reply:
        rows = rows.tolist() if hasattr(rows, "tolist") else rows
        return self.request(
            "POST", f"/v1/{tenant}/reconstruction_error", {"rows": rows},
            idempotent=True,
        )

    def outlier_score(self, tenant: str, rows) -> Reply:
        rows = rows.tolist() if hasattr(rows, "tolist") else rows
        return self.request(
            "POST", f"/v1/{tenant}/outlier_score", {"rows": rows},
            idempotent=True,
        )

    def eigenspectra(
        self, tenant: str, top_k: int | None = None,
        include_basis: bool = False,
    ) -> Reply:
        path = f"/v1/{tenant}/eigenspectra"
        params = []
        if top_k is not None:
            params.append(f"top_k={top_k}")
        if include_basis:
            params.append("include_basis=1")
        if params:
            path += "?" + "&".join(params)
        return self.request("GET", path)

    def snapshot(self, tenant: str) -> Reply:
        return self.request("GET", f"/v1/{tenant}/snapshot")

    def ready(self) -> Reply:
        return self.request("GET", "/ready")

    def live(self) -> Reply:
        return self.request("GET", "/live")

    def status(self) -> Reply:
        return self.request("GET", "/status")

    def metrics_text(self) -> str:
        reply = self.request("GET", "/metrics")
        return reply.body if isinstance(reply.body, str) else ""


class WebSocketClient:
    """Minimal RFC 6455 client for the events push channel."""

    def __init__(
        self, host: str, port: int, tenant: str, *,
        timeout_s: float = 10.0,
    ) -> None:
        self.tenant = tenant
        self._sock = socket.create_connection(
            (host, port), timeout=timeout_s
        )
        key = base64.b64encode(os.urandom(16)).decode()
        self._sock.sendall(
            (
                f"GET /v1/{tenant}/events HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        head = self._read_until(b"\r\n\r\n").decode("latin-1")
        if "101" not in head.split("\r\n")[0]:
            raise ConnectionError(f"handshake refused: {head.splitlines()[0]}")
        want = base64.b64encode(
            hashlib.sha1((key + _WS_MAGIC).encode()).digest()
        ).decode()
        if want not in head:
            raise ConnectionError("bad Sec-WebSocket-Accept")
        # NOTE: _read_until already parked any bytes that arrived after
        # the 101 header in self._buf — the first event frame often
        # rides the same TCP segment as the handshake reply.

    def _read_until(self, marker: bytes) -> bytes:
        data = b""
        while marker not in data:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("closed during handshake")
            data += chunk
        head, _, rest = data.partition(marker)
        self._buf = rest
        return head + marker

    def _read_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("connection closed")
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def recv_event(self) -> dict[str, Any] | None:
        """Next JSON event; None when the server closes. Answers pings."""
        while True:
            head = self._read_exact(2)
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            if length == 126:
                length = struct.unpack(">H", self._read_exact(2))[0]
            elif length == 127:
                length = struct.unpack(">Q", self._read_exact(8))[0]
            payload = self._read_exact(length) if length else b""
            if opcode == 0x8:
                return None
            if opcode == 0x9:
                self._send_frame(0xA, payload)
                continue
            if opcode == 0xA:
                continue
            if opcode == 0x1:
                return json.loads(payload.decode())

    def _send_frame(self, opcode: int, payload: bytes) -> None:
        mask = os.urandom(4)
        head = bytes([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head += bytes([0x80 | n])
        elif n < 1 << 16:
            head += bytes([0x80 | 126]) + struct.pack(">H", n)
        else:
            head += bytes([0x80 | 127]) + struct.pack(">Q", n)
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        self._sock.sendall(head + mask + masked)

    def close(self) -> None:
        try:
            self._send_frame(0x8, b"")
        except Exception:
            pass
        self._sock.close()

    def __enter__(self) -> "WebSocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
