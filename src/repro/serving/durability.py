"""The durability plane: WAL, crash-consistent checkpoints, recovery.

The serving layer's zero-loss accounting contract (``rows_accepted ==
rows_applied + queued + pending``) held only while the process lived:
every tenant model was pure memory, so one ``kill -9`` discarded months
of accumulated eigenbasis.  This module makes an *acknowledged* ingest
durable:

* :class:`WriteAheadLog` — a per-tenant segmented append-only log of
  admitted blocks.  Records reuse the wireproto framing discipline
  (magic, length prefix, CRC32, raw float64 payload — no pickle) so a
  torn tail or a flipped bit is detected and truncated, never replayed
  into a model.  Three durability modes trade latency for the ack
  guarantee: ``none`` (buffered, lost on crash), ``async`` (written to
  the OS before ack — survives process death, not power loss),
  ``fsync`` (fsynced before ack — survives power loss).
* :class:`TenantCheckpointStore` / :class:`TenantCheckpointer` — ride
  the :class:`~.snapshots.EigenbasisCache` publish listeners and
  persist eigenbasis + accounting (``rows_applied``,
  ``snapshot_version``, last applied WAL ``seq``) through the extended
  :mod:`repro.io.checkpoint` writer (atomic replace + dir fsync +
  ``keep_last`` GC).  A checkpoint *covers* every WAL record up to its
  ``wal_seq``, so covered segments are truncated.
* :class:`RecoveryManager` — on startup, loads the latest readable
  checkpoint per tenant, replays the WAL tail through the tenant
  model, truncates at the first torn/bad-CRC record instead of
  crashing, and republishes the recovered snapshot at its pre-crash
  version so snapshot versions stay monotone across the restart.
  ``/ready`` returns 503 with per-tenant replay progress until
  recovery completes.

:class:`DurabilityPlane` is the facade :class:`~.service.PCAService`
holds: one WAL + checkpoint store per tenant under ``data_dir``::

    data_dir/
      tenants/<name>/spec.json          # TenantSpec, for re-creation
      tenants/<name>/wal/seg-<seq>.wal  # segmented write-ahead log
      tenants/<name>/ckpt/ckpt-<version>.npz
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from ..io.checkpoint import (
    fsync_directory,
    load_eigensystem_extras,
    save_eigensystem,
)

__all__ = [
    "DurabilityPlane",
    "RecoveryManager",
    "TenantCheckpointStore",
    "TenantCheckpointer",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "DURABILITY_MODES",
]

#: First bytes of every WAL record; a segment position that does not
#: start with this is a torn tail (or corruption) and ends replay.
WAL_MAGIC = b"RWL1"

#: ``magic | seq:u64 | body_len:u32 | crc32:u32`` — the fixed prefix of
#: every record, in wireproto's length-prefix discipline.
_REC_HEAD = struct.Struct("!8sQII")
# 8s: 4 magic bytes + 4 reserved (keeps the header 8-aligned and gives
# future record kinds a place to live without a format break).

#: Upper bound on one record body; a length prefix read from disk must
#: never size an allocation unchecked (same rule as wireproto frames).
MAX_RECORD_BYTES = 1 << 28  # 256 MiB

DURABILITY_MODES = ("none", "async", "fsync")

_SEG_RE = re.compile(r"^seg-(\d{12})\.wal$")
_CKPT_RE = re.compile(r"^ckpt-(\d{12})\.npz$")


class WalError(ValueError):
    """A WAL record violates the on-disk protocol."""


@dataclass(frozen=True)
class WalRecord:
    """One replayed record: the admitted block and its sequence number."""

    seq: int
    block: np.ndarray
    ts: float = 0.0


def _encode_record(seq: int, block: np.ndarray, ts: float) -> bytes:
    """Frame one admitted block as a self-checking WAL record."""
    arr = np.ascontiguousarray(block, dtype=np.float64)
    if arr.ndim != 2:
        raise WalError(f"WAL blocks must be 2-D, got shape {arr.shape}")
    header = json.dumps(
        {"rows": int(arr.shape[0]), "dim": int(arr.shape[1]), "ts": ts},
        separators=(",", ":"),
    ).encode()
    body = struct.pack("!I", len(header)) + header + arr.tobytes()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return _REC_HEAD.pack(WAL_MAGIC + b"\x00" * 4, seq, len(body), crc) + body


def _decode_body(body: bytes) -> tuple[np.ndarray, float]:
    """Body bytes -> (block, ts); raises :class:`WalError` on malformed."""
    try:
        (header_len,) = struct.unpack_from("!I", body, 0)
        if header_len > len(body) - 4:
            raise WalError("header length exceeds body")
        header = json.loads(body[4 : 4 + header_len].decode())
        rows, dim = int(header["rows"]), int(header["dim"])
        ts = float(header.get("ts", 0.0))
        payload = body[4 + header_len :]
        if rows < 0 or dim <= 0 or len(payload) != rows * dim * 8:
            raise WalError(
                f"payload of {len(payload)} bytes does not match "
                f"({rows}, {dim}) float64"
            )
        block = (
            np.frombuffer(payload, dtype=np.float64)
            .reshape(rows, dim)
            .copy()
        )
        return block, ts
    except WalError:
        raise
    except (struct.error, ValueError, KeyError, TypeError,
            UnicodeDecodeError) as exc:
        raise WalError(f"malformed WAL body: {exc!r}") from exc


class WriteAheadLog:
    """One tenant's segmented append-only log of admitted blocks.

    Single writer (the ingest path, serialized by the caller), replayed
    only at recovery.  Appends go to the *active* segment; rotation
    starts a new segment once the active one exceeds
    ``segment_max_bytes``, and :meth:`truncate_upto` deletes segments a
    checkpoint fully covers.

    The ack contract per durability mode — what an ``append`` return
    means the record survives:

    ========  =====================================================
    ``none``  nothing (buffered in-process; lost on any crash)
    ``async`` process death (written to the OS page cache)
    ``fsync`` power loss (fsynced to stable storage before return)
    ========  =====================================================
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        durability: str = "async",
        segment_max_bytes: int = 4 << 20,
        on_metric: Callable[[str, int], None] | None = None,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        if segment_max_bytes < 1024:
            raise ValueError("segment_max_bytes must be >= 1024")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.segment_max_bytes = int(segment_max_bytes)
        self._on_metric = on_metric
        self._lock = threading.Lock()
        self._fh: Any = None
        self._active: pathlib.Path | None = None
        self._active_bytes = 0
        self.n_appends = 0
        self.n_bytes = 0
        self.n_fsyncs = 0
        self.n_rotations = 0
        self.n_truncated_segments = 0
        self.n_torn_records = 0
        # Resume: the next seq continues after the last *valid* record
        # on disk, and a torn tail left by a crash is cut off now so
        # the first append after restart lands on a clean boundary.
        self.next_seq = self._recover_tail()

    # -- metrics ----------------------------------------------------------

    def _metric(self, name: str, n: int = 1) -> None:
        if self._on_metric is not None:
            try:
                self._on_metric(name, n)
            except Exception:
                pass

    # -- segment bookkeeping ----------------------------------------------

    def segments(self) -> list[tuple[int, pathlib.Path]]:
        """All segments as ``(first_seq, path)``, ascending."""
        out = []
        for path in self.directory.iterdir():
            m = _SEG_RE.match(path.name)
            if m:
                out.append((int(m.group(1)), path))
        return sorted(out)

    def _seg_path(self, first_seq: int) -> pathlib.Path:
        return self.directory / f"seg-{first_seq:012d}.wal"

    def size_bytes(self) -> int:
        total = 0
        for _seq, path in self.segments():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _recover_tail(self) -> int:
        """Scan the newest segment; truncate torn bytes; return next seq."""
        segs = self.segments()
        if not segs:
            return 0
        first_seq, path = segs[-1]
        last_seq = first_seq - 1
        good_end = 0
        for rec, end in self._scan_segment(path, first_seq):
            last_seq = rec.seq
            good_end = end
        try:
            actual = path.stat().st_size
        except OSError:
            actual = good_end
        if actual > good_end:
            self.n_torn_records += 1
            self._metric("torn_records")
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
        return last_seq + 1

    # -- append path -------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._fh is not None:
            return
        segs = self.segments()
        if segs and segs[-1][1].stat().st_size < self.segment_max_bytes:
            self._active = segs[-1][1]
        else:
            self._active = self._seg_path(self.next_seq)
        self._fh = open(self._active, "ab")
        self._active_bytes = self._active.stat().st_size

    def append(self, block: np.ndarray, *, ts: float | None = None) -> int:
        """Persist one admitted block; returns its sequence number.

        The returned seq is only *acked* per the durability-mode table
        above — callers must not acknowledge the client before this
        returns.
        """
        record_ts = time.time() if ts is None else float(ts)
        with self._lock:
            seq = self.next_seq
            data = _encode_record(seq, block, record_ts)
            self._ensure_open()
            self._fh.write(data)
            if self.durability == "async":
                self._fh.flush()
            elif self.durability == "fsync":
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self.n_fsyncs += 1
                self._metric("fsyncs")
            self.next_seq = seq + 1
            self.n_appends += 1
            self.n_bytes += len(data)
            self._active_bytes += len(data)
            self._metric("appends")
            self._metric("bytes", len(data))
            if self._active_bytes >= self.segment_max_bytes:
                self._rotate_locked()
            return seq

    def _rotate_locked(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.flush()
            if self.durability == "fsync":
                os.fsync(fh.fileno())
            fh.close()
        if self.durability == "fsync":
            # The new segment's directory entry must be durable before
            # anything is acked out of it.
            fsync_directory(self.directory)
        self._active = None
        self._active_bytes = 0
        self.n_rotations += 1
        self._metric("rotations")

    def sync(self) -> None:
        """Force everything buffered so far to stable storage."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self.n_fsyncs += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    # -- replay path -------------------------------------------------------

    def _scan_segment(
        self, path: pathlib.Path, first_seq: int | None = None
    ) -> Iterator[tuple[WalRecord, int]]:
        """Yield ``(record, end_offset)`` until EOF or the first bad
        record — a torn tail or a flipped bit ends the segment's usable
        prefix; nothing after it is trusted.

        ``first_seq`` (from the segment's file name) pins the expected
        sequence of every record: the CRC only covers the *body*, so a
        flipped bit in the header's seq field would otherwise replay a
        valid block under the wrong sequence number.
        """
        try:
            data = path.read_bytes()
        except OSError:
            return
        if first_seq is None:
            m = _SEG_RE.match(path.name)
            first_seq = int(m.group(1)) if m else None
        expect_seq = first_seq
        pos = 0
        while pos + _REC_HEAD.size <= len(data):
            magic8, seq, body_len, crc = _REC_HEAD.unpack_from(data, pos)
            if magic8[:4] != WAL_MAGIC or body_len > MAX_RECORD_BYTES:
                return
            if expect_seq is not None and seq != expect_seq:
                return
            body_start = pos + _REC_HEAD.size
            body_end = body_start + body_len
            if body_end > len(data):
                return  # torn tail
            body = data[body_start:body_end]
            if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
                return
            try:
                block, ts = _decode_body(body)
            except WalError:
                return
            yield WalRecord(seq=seq, block=block, ts=ts), body_end
            pos = body_end
            if expect_seq is not None:
                expect_seq += 1

    def replay(self, after_seq: int = -1) -> Iterator[WalRecord]:
        """Every valid record with ``seq > after_seq``, in order.

        Replay is prefix-faithful: within a segment it stops at the
        first record that fails the magic/CRC/shape checks, and a
        later segment is only entered if the previous one ended
        cleanly (its seqs must chain), so corruption can never cause
        records to be skipped *over* and replayed out of order.
        """
        expect = None
        for first_seq, path in self.segments():
            if expect is not None and first_seq != expect:
                # A gap means the segment before this one lost records
                # (truncated tail): everything after is untrusted.
                return
            end_seq = first_seq - 1
            for rec, _end in self._scan_segment(path, first_seq):
                end_seq = rec.seq
                if rec.seq > after_seq:
                    yield rec
            # The next segment must start where this one ended; if this
            # one ended early (torn tail), the gap check above stops the
            # replay there.
            expect = end_seq + 1

    def records_on_disk(self, after_seq: int = -1) -> int:
        """Count of valid records past ``after_seq`` (recovery sizing)."""
        return sum(1 for _ in self.replay(after_seq))

    def truncate_upto(self, seq: int) -> int:
        """Delete segments fully covered by a checkpoint at ``seq``.

        A segment is deletable when every record in it has
        ``seq <= covered`` — i.e. the *next* segment starts at or below
        ``seq + 1``.  The active segment is never deleted.  Returns the
        number of segments removed.
        """
        removed = 0
        with self._lock:
            segs = self.segments()
            for i, (first_seq, path) in enumerate(segs):
                next_first = (
                    segs[i + 1][0] if i + 1 < len(segs) else self.next_seq
                )
                if next_first > seq + 1:
                    break
                if path == self._active:
                    break
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    break
            if removed:
                self.n_truncated_segments += removed
                self._metric("truncated_segments", removed)
                if self.durability == "fsync":
                    fsync_directory(self.directory)
        return removed

    def stats(self) -> dict[str, Any]:
        return {
            "durability": self.durability,
            "next_seq": self.next_seq,
            "n_appends": self.n_appends,
            "n_bytes": self.n_bytes,
            "n_fsyncs": self.n_fsyncs,
            "n_rotations": self.n_rotations,
            "n_truncated_segments": self.n_truncated_segments,
            "n_torn_records": self.n_torn_records,
            "n_segments": len(self.segments()),
            "size_bytes": self.size_bytes(),
        }


class TenantCheckpointStore:
    """Crash-consistent per-tenant checkpoints, keyed by snapshot version.

    Each checkpoint is one ``.npz`` written through the extended
    :func:`repro.io.checkpoint.save_eigensystem` (atomic replace +
    file/dir fsync) carrying the eigenbasis plus the accounting extras
    a restart needs: ``rows_applied``, ``blocks_applied``,
    ``snapshot_version``, ``wal_seq``, ``outlier_t``.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        keep_last: int = 3,
        fsync: bool = True,
    ) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = int(keep_last)
        self.fsync = bool(fsync)
        self.n_saved = 0
        self.last_saved_unix: float | None = self._seed_last_saved()

    def _seed_last_saved(self) -> float | None:
        ckpts = self.list()
        if not ckpts:
            return None
        try:
            return ckpts[-1][1].stat().st_mtime
        except OSError:
            return None

    def list(self) -> list[tuple[int, pathlib.Path]]:
        """All checkpoints as ``(snapshot_version, path)``, ascending."""
        out = []
        for path in self.directory.iterdir():
            m = _CKPT_RE.match(path.name)
            if m:
                out.append((int(m.group(1)), path))
        return sorted(out)

    def save(self, state, extras: dict[str, Any]) -> pathlib.Path:
        version = int(extras["snapshot_version"])
        path = self.directory / f"ckpt-{version:012d}.npz"
        save_eigensystem(path, state, extras=extras, fsync=self.fsync)
        self.n_saved += 1
        self.last_saved_unix = time.time()
        self._gc()
        return path

    def _gc(self) -> None:
        ckpts = self.list()
        for _v, path in ckpts[: max(len(ckpts) - self.keep_last, 0)]:
            try:
                path.unlink()
            except OSError:
                pass

    def load_latest(self) -> tuple[Any, dict[str, Any]] | None:
        """Newest *readable* checkpoint as ``(state, extras)``.

        A checkpoint that fails to parse (torn by an older writer, bad
        disk) falls back to the next-newest instead of failing the
        restart — the WAL tail will cover the difference.
        """
        for _version, path in reversed(self.list()):
            try:
                return load_eigensystem_extras(path)
            except (OSError, EOFError, ValueError, KeyError):
                continue
        return None

    def age_s(self, now: float | None = None) -> float | None:
        if self.last_saved_unix is None:
            return None
        return max(0.0, (now or time.time()) - self.last_saved_unix)


class TenantCheckpointer(threading.Thread):
    """Background persister riding the cache's publish listeners.

    The cache listener only records "tenant X has a newer snapshot" —
    publishing stays cheap and lane threads never block on disk.  This
    thread then checkpoints each dirty tenant when its snapshot has
    advanced ``every_publishes`` versions past the last checkpoint (or
    immediately on :meth:`flush`), and truncates the tenant's WAL up to
    the checkpointed ``wal_seq``.
    """

    def __init__(
        self,
        plane: "DurabilityPlane",
        *,
        every_publishes: int = 8,
        interval_s: float = 0.5,
    ) -> None:
        if every_publishes < 1:
            raise ValueError("every_publishes must be >= 1")
        super().__init__(name="serving-checkpointer", daemon=True)
        self.plane = plane
        self.every_publishes = int(every_publishes)
        self.interval_s = float(interval_s)
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._latest: dict[str, Any] = {}  # tenant -> newest BasisSnapshot
        self._saved_version: dict[str, int] = {}
        self.n_checkpoints = 0
        self.n_errors = 0

    # The cache listener (called on every publish, any lane thread).
    def on_publish(self, snap) -> None:
        with self._lock:
            self._latest[snap.tenant] = snap

    def note_saved(self, tenant: str, version: int) -> None:
        """Record an externally written checkpoint (recovery republish)."""
        with self._lock:
            self._saved_version[tenant] = max(
                self._saved_version.get(tenant, 0), int(version)
            )

    def _due(self, force: bool) -> list[Any]:
        with self._lock:
            due = []
            for tenant, snap in self._latest.items():
                saved = self._saved_version.get(tenant, 0)
                if snap.version <= saved:
                    continue
                if force or snap.version - saved >= self.every_publishes:
                    due.append(snap)
            return due

    def _persist(self, snap) -> None:
        store = self.plane.checkpoints_for(snap.tenant)
        try:
            store.save(snap.state, {
                "tenant": snap.tenant,
                "snapshot_version": int(snap.version),
                "rows_applied": int(snap.rows_applied),
                "blocks_applied": int(snap.blocks_applied),
                "wal_seq": int(snap.wal_seq),
                "outlier_t": float(snap.outlier_t),
                "published_unix": float(snap.published_unix),
            })
        except OSError:
            self.n_errors += 1
            return
        with self._lock:
            self._saved_version[snap.tenant] = max(
                self._saved_version.get(snap.tenant, 0), snap.version
            )
        self.n_checkpoints += 1
        self.plane.count("checkpoints")
        if snap.wal_seq >= 0:
            self.plane.wal_for(snap.tenant).truncate_upto(snap.wal_seq)

    def tick(self, *, force: bool = False) -> int:
        done = 0
        for snap in self._due(force):
            self._persist(snap)
            done += 1
        return done

    def flush(self) -> int:
        """Checkpoint every tenant whose snapshot moved (shutdown path)."""
        return self.tick(force=True)

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # persister must outlive transient races
                self.n_errors += 1

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)
        self.flush()


@dataclass
class _TenantRecovery:
    """Progress of one tenant's recovery (the /ready 503 body)."""

    tenant: str
    phase: str = "pending"  # pending -> checkpoint -> replaying -> done
    checkpoint_version: int = 0
    checkpoint_rows: int = 0
    wal_records_total: int = 0
    wal_records_replayed: int = 0
    rows_replayed: int = 0
    torn_at_seq: int | None = None

    def snapshot(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "phase": self.phase,
            "checkpoint_version": self.checkpoint_version,
            "checkpoint_rows": self.checkpoint_rows,
            "wal_records_total": self.wal_records_total,
            "wal_records_replayed": self.wal_records_replayed,
            "rows_replayed": self.rows_replayed,
            "torn_at_seq": self.torn_at_seq,
        }


class RecoveryManager:
    """Startup restore: checkpoints first, then the WAL tail.

    Runs on its own thread (started by ``PCAService.start``) so the
    HTTP listener can come up and answer ``/ready`` with 503 +
    replay-progress JSON while long tails replay.  Ingest is refused
    (503, ``reason="recovering"``) until recovery completes — replay
    order must not interleave with fresh traffic — but queries are
    answered from recovered snapshots as soon as they republish.
    """

    def __init__(self, plane: "DurabilityPlane", service) -> None:
        self.plane = plane
        self.service = service
        self.done = threading.Event()
        self.started_at: float | None = None
        self.duration_s: float | None = None
        self.error: str | None = None
        self._progress: dict[str, _TenantRecovery] = {}
        self._thread: threading.Thread | None = None
        #: Test hook: per-record sleep while replaying (lets tests
        #: observe the 503-with-progress window deterministically).
        self.throttle_s = 0.0

    # -- progress surface --------------------------------------------------

    @property
    def in_progress(self) -> bool:
        return self._thread is not None and not self.done.is_set()

    def progress(self) -> dict[str, Any]:
        return {
            "done": self.done.is_set(),
            "duration_s": self.duration_s,
            "error": self.error,
            "tenants": {
                name: rec.snapshot()
                for name, rec in sorted(self._progress.items())
            },
        }

    # -- the restore itself ------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="serving-recovery", daemon=True
        )
        self._thread.start()

    def wait(self, timeout_s: float | None = None) -> bool:
        return self.done.wait(timeout_s)

    def _run(self) -> None:
        self.started_at = time.monotonic()
        try:
            for spec in self.plane.load_specs():
                self._recover_tenant(spec)
        except Exception as exc:  # recovery must never wedge startup
            self.error = repr(exc)
        finally:
            self.duration_s = time.monotonic() - self.started_at
            try:
                self.service.telemetry.metrics.gauge(
                    "repro_recovery_duration_seconds"
                ).set(self.duration_s)
            except Exception:
                pass
            self.done.set()

    def _recover_tenant(self, spec) -> None:
        svc = self.service
        rec = self._progress.setdefault(
            spec.name, _TenantRecovery(tenant=spec.name)
        )
        if svc.tenant_exists(spec.name):
            st = svc.tenant(spec.name)
        else:
            st = svc.add_tenant(spec, persist=False)
        model = st.model
        wal = self.plane.wal_for(spec.name)

        rec.phase = "checkpoint"
        loaded = self.plane.checkpoints_for(spec.name).load_latest()
        after_seq = -1
        ckpt_version = 0
        if loaded is not None:
            state, extras = loaded
            ckpt_version = int(extras.get("snapshot_version", 0))
            after_seq = int(extras.get("wal_seq", -1))
            rec.checkpoint_version = ckpt_version
            rec.checkpoint_rows = int(extras.get("rows_applied", 0))
            model.adopt_recovered(
                state,
                rows_applied=rec.checkpoint_rows,
                blocks_applied=int(extras.get("blocks_applied", 0)),
                wal_seq=after_seq,
            )

        rec.phase = "replaying"
        rec.wal_records_total = wal.records_on_disk(after_seq)
        last_seq = after_seq
        for record in wal.replay(after_seq):
            model.apply_block(record.block, wal_seq=record.seq)
            last_seq = record.seq
            rec.wal_records_replayed += 1
            rec.rows_replayed += int(record.block.shape[0])
            self.plane.count("replayed_records")
            self.plane.count("replayed_rows", int(record.block.shape[0]))
            if self.throttle_s > 0.0:
                time.sleep(self.throttle_s)
        if wal.next_seq != last_seq + 1 and last_seq >= 0:
            # Seqs past last_seq existed but did not replay cleanly:
            # the truncated tail is recorded for the report.
            rec.torn_at_seq = last_seq + 1
        # One publish at the end, at a version no pre-crash client can
        # have exceeded: every publish after the checkpoint consumed at
        # least one post-checkpoint WAL record, so pre-crash version <=
        # ckpt_version + replayed-record count.  EigenbasisCache clamps
        # upward, so the version stream stays monotone across the
        # restart even though the exact pre-crash counter died with the
        # process.
        if model.is_initialized:
            st.publish_now(
                svc.cache,
                version=ckpt_version + rec.wal_records_replayed,
            )
            if self.plane.checkpointer is not None:
                self.plane.checkpointer.note_saved(spec.name, ckpt_version)
        rec.phase = "done"


class DurabilityPlane:
    """Everything durable about one serving deployment, under one root.

    Owns the per-tenant WALs and checkpoint stores, the background
    :class:`TenantCheckpointer`, and the startup
    :class:`RecoveryManager`; :class:`~.service.PCAService` drives it
    and never touches the disk layout directly.
    """

    def __init__(
        self,
        data_dir: str | pathlib.Path,
        *,
        durability: str = "async",
        segment_max_bytes: int = 4 << 20,
        checkpoint_every_publishes: int = 8,
        checkpoint_interval_s: float = 0.5,
        keep_checkpoints: int = 3,
        telemetry=None,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self.data_dir = pathlib.Path(data_dir)
        self.tenants_dir = self.data_dir / "tenants"
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.segment_max_bytes = int(segment_max_bytes)
        self.keep_checkpoints = int(keep_checkpoints)
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._wals: dict[str, WriteAheadLog] = {}
        self._stores: dict[str, TenantCheckpointStore] = {}
        self.checkpointer = TenantCheckpointer(
            self,
            every_publishes=checkpoint_every_publishes,
            interval_s=checkpoint_interval_s,
        )
        self.recovery: RecoveryManager | None = None

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if self.telemetry is None:
            return
        try:
            self.telemetry.metrics.counter(f"repro_wal_{name}_total").inc(n)
        except Exception:
            pass

    def _wal_metric(self, tenant: str):
        def on_metric(name: str, n: int) -> None:
            if self.telemetry is None:
                return
            self.telemetry.metrics.counter(
                f"repro_wal_{name}_total", tenant=tenant
            ).inc(n)
        return on_metric if self.telemetry is not None else None

    # -- per-tenant resources ---------------------------------------------

    def tenant_dir(self, tenant: str) -> pathlib.Path:
        return self.tenants_dir / tenant

    def wal_for(self, tenant: str) -> WriteAheadLog:
        with self._lock:
            wal = self._wals.get(tenant)
            if wal is None:
                wal = WriteAheadLog(
                    self.tenant_dir(tenant) / "wal",
                    durability=self.durability,
                    segment_max_bytes=self.segment_max_bytes,
                    on_metric=self._wal_metric(tenant),
                )
                self._wals[tenant] = wal
            return wal

    def checkpoints_for(self, tenant: str) -> TenantCheckpointStore:
        with self._lock:
            store = self._stores.get(tenant)
            if store is None:
                store = TenantCheckpointStore(
                    self.tenant_dir(tenant) / "ckpt",
                    keep_last=self.keep_checkpoints,
                    fsync=(self.durability != "none"),
                )
                self._stores[tenant] = store
            return store

    # -- tenant spec persistence ------------------------------------------

    def save_spec(self, spec) -> None:
        """Persist a TenantSpec so recovery can re-create the tenant."""
        d = self.tenant_dir(spec.name)
        d.mkdir(parents=True, exist_ok=True)
        doc = {k: v for k, v in spec.__dict__.items()}
        tmp = d / f".spec.json.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        os.replace(tmp, d / "spec.json")
        if self.durability == "fsync":
            fsync_directory(d)

    def load_specs(self) -> list[Any]:
        """Every persisted TenantSpec, sorted by name; bad files skipped."""
        from .tenancy import TenantSpec

        specs = []
        if not self.tenants_dir.is_dir():
            return specs
        for d in sorted(self.tenants_dir.iterdir()):
            path = d / "spec.json"
            if not path.is_file():
                continue
            try:
                doc = json.loads(path.read_text())
                specs.append(TenantSpec(**doc))
            except (OSError, ValueError, TypeError):
                continue
        return specs

    # -- lifecycle ---------------------------------------------------------

    def attach(self, service) -> None:
        """Wire into a service: publish listener + checkpointer thread."""
        self.telemetry = service.telemetry
        service.cache.add_listener(self.checkpointer.on_publish)
        self.checkpointer.start()
        self.recovery = RecoveryManager(self, service)
        self.recovery.start()

    def append(self, tenant: str, block: np.ndarray) -> int:
        return self.wal_for(tenant).append(block)

    def stop(self) -> None:
        if self.checkpointer.is_alive():
            self.checkpointer.stop()
        else:
            self.checkpointer.flush()
        with self._lock:
            wals = list(self._wals.values())
        for wal in wals:
            wal.close()

    # -- status surface ----------------------------------------------------

    def status(self) -> dict[str, Any]:
        with self._lock:
            tenants = sorted(set(self._wals) | set(self._stores))
        out: dict[str, Any] = {
            "data_dir": str(self.data_dir),
            "durability": self.durability,
            "checkpointer": {
                "n_checkpoints": self.checkpointer.n_checkpoints,
                "n_errors": self.checkpointer.n_errors,
                "every_publishes": self.checkpointer.every_publishes,
            },
            "recovery": (
                self.recovery.progress() if self.recovery is not None
                else None
            ),
            "tenants": {},
        }
        for tenant in tenants:
            wal = self._wals.get(tenant)
            store = self._stores.get(tenant)
            ckpts = store.list() if store is not None else []
            out["tenants"][tenant] = {
                "wal": wal.stats() if wal is not None else None,
                "checkpoints": len(ckpts),
                "checkpoint_version": ckpts[-1][0] if ckpts else 0,
                "checkpoint_age_s": (
                    store.age_s() if store is not None else None
                ),
            }
        return out
