"""The tenant-facing service: admission, queries, health, telemetry.

:class:`PCAService` is the transport-independent core of the serving
layer — the HTTP/WebSocket front end in :mod:`repro.serving.http` is a
thin codec over it, and tests can drive it directly.  It enforces the
three-plane separation the ROADMAP asks for:

* **ingestion** — :meth:`ingest` runs admission (per-tenant
  :class:`~repro.streams.resilience.LoadShedValve`, then queue bound)
  and enqueues; it never touches a model.
* **compute** — the :class:`~.pool.EnginePool` lanes drain queues and
  publish snapshots; the service only observes.
* **query** — :meth:`transform` / :meth:`reconstruction_error` /
  :meth:`outlier_score` / :meth:`eigenspectra` read *only* the
  :class:`~.snapshots.EigenbasisCache`; they cannot block on a model
  lock because they never reach for one.

Every response is ``(status, payload)`` with HTTP semantics:
202 admitted, 200 answered, 404 unknown tenant, 409 no snapshot yet,
422 bad rows, 429 shed (with ``retry_after_s``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..streams.health import HealthRuleEngine, default_rules
from ..streams.telemetry import (
    BackpressureSampler,
    Telemetry,
    TelemetryConfig,
)
from .pool import ElasticController, EnginePool
from .snapshots import EigenbasisCache
from .tenancy import QueueFull, TenantSpec, TenantState

__all__ = ["EventBus", "PCAService", "ServingConfig"]


class _ServingRuleEngine(HealthRuleEngine):
    """Rule engine whose monitor/membership views track the live pool.

    The base class freezes ``monitors`` and ``controller`` at
    construction; tenants and lanes come and go, so this subclass
    refreshes both from the service before every snapshot.  Works
    unchanged wherever a :class:`HealthRuleEngine` is expected (the
    observability server's ``/health`` endpoints included).
    """

    def __init__(self, service: "PCAService") -> None:
        super().__init__(
            service.telemetry, monitors=(), controller=None,
            rules=default_rules(),
        )
        self._service = service

    def snapshot(self):
        self.monitors = self._service._live_monitors()
        self.controller = self._service.pool.membership
        return super().snapshot()


@dataclass
class ServingConfig:
    """Knobs of one serving deployment."""

    n_lanes: int = 2
    min_lanes: int = 1
    max_lanes: int = 8
    elastic: bool = True
    elastic_interval_s: float = 0.25
    high_watermark_rows: int = 4096
    low_watermark_rows: int = 256
    hysteresis_ticks: int = 3
    sampler_interval_s: float = 0.1
    #: Tenants unknown at ingest time are auto-created from this
    #: template when set (name is filled in); ``None`` → 404.
    auto_tenant_template: TenantSpec | None = None
    telemetry: Telemetry | None = None
    #: Root of the durability plane (WAL + checkpoints + tenant specs);
    #: ``None`` keeps the pre-durability behaviour: memory only, state
    #: lost on restart.
    data_dir: str | None = None
    #: WAL ack mode: ``none`` (buffered), ``async`` (survives process
    #: death), ``fsync`` (survives power loss).  See docs/serving.md.
    durability: str = "async"
    wal_segment_bytes: int = 4 << 20
    checkpoint_every_publishes: int = 8
    checkpoint_interval_s: float = 0.5
    keep_checkpoints: int = 3

    def make_telemetry(self) -> Telemetry:
        return self.telemetry or Telemetry(
            TelemetryConfig(metrics=True, timing=False, tracing=False)
        )


class EventBus:
    """Fan-out of serving events to subscribers (the WS push channel).

    Publishers are arbitrary threads (lanes, the pool, the service);
    subscribers are bounded per-subscriber queues drained by whoever
    registered them.  A slow subscriber drops its *own* oldest events —
    counted, never blocking the publisher.
    """

    def __init__(self, *, max_queue: int = 256) -> None:
        self.max_queue = int(max_queue)
        self._subs: dict[int, list] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._wakers: dict[int, Any] = {}
        self.n_published = 0
        self.n_dropped = 0

    def subscribe(self, waker=None) -> int:
        """Register a subscriber; ``waker()`` (if given) is called after
        each delivery — e.g. ``loop.call_soon_threadsafe`` bridging into
        asyncio."""
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            self._subs[sid] = []
            if waker is not None:
                self._wakers[sid] = waker
            return sid

    def unsubscribe(self, sid: int) -> None:
        with self._lock:
            self._subs.pop(sid, None)
            self._wakers.pop(sid, None)

    def publish(self, event: dict[str, Any]) -> None:
        with self._lock:
            self.n_published += 1
            for sid, q in self._subs.items():
                q.append(event)
                if len(q) > self.max_queue:
                    q.pop(0)
                    self.n_dropped += 1
            wakers = list(self._wakers.values())
        for wake in wakers:
            try:
                wake()
            except Exception:
                pass

    def drain(self, sid: int) -> list[dict[str, Any]]:
        """Take every pending event for subscriber ``sid``."""
        with self._lock:
            q = self._subs.get(sid)
            if not q:
                return []
            out, self._subs[sid] = q, []
            return out


class PCAService:
    """Multi-tenant streaming-PCA service (transport-independent core)."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()
        self.telemetry = self.config.make_telemetry()
        self.cache = EigenbasisCache()
        self.bus = EventBus()
        self._tenants: dict[str, TenantState] = {}
        self._tenants_lock = threading.Lock()
        self.pool = EnginePool(
            self.cache,
            self.get_tenants,
            n_lanes=self.config.n_lanes,
            on_event=self._pool_event,
        )
        self.sampler: BackpressureSampler | None = None
        self.elastic: ElasticController | None = None
        self.rule_engine = _ServingRuleEngine(self)
        self._started = False
        self.durability = None
        if self.config.data_dir is not None:
            from .durability import DurabilityPlane

            self.durability = DurabilityPlane(
                self.config.data_dir,
                durability=self.config.durability,
                segment_max_bytes=self.config.wal_segment_bytes,
                checkpoint_every_publishes=(
                    self.config.checkpoint_every_publishes
                ),
                checkpoint_interval_s=self.config.checkpoint_interval_s,
                keep_checkpoints=self.config.keep_checkpoints,
                telemetry=self.telemetry,
            )
        self._register_metrics()
        self.cache.add_listener(self._on_snapshot)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.pool.start()
        if self.durability is not None:
            # Recovery runs on its own thread: /ready answers 503 with
            # replay progress while checkpoints load and WAL tails
            # replay; ingest is refused until recovery completes.
            self.durability.attach(self)
        cfg = self.config
        self.sampler = BackpressureSampler(
            self.telemetry,
            self.pool.backpressure_probe,
            interval_s=cfg.sampler_interval_s,
        )
        self.sampler.start()
        if cfg.elastic:
            self.elastic = ElasticController(
                self.pool,
                telemetry=self.telemetry,
                min_lanes=cfg.min_lanes,
                max_lanes=cfg.max_lanes,
                high_watermark_rows=cfg.high_watermark_rows,
                low_watermark_rows=cfg.low_watermark_rows,
                hysteresis_ticks=cfg.hysteresis_ticks,
                interval_s=cfg.elastic_interval_s,
            )
            self.elastic.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.elastic is not None:
            self.elastic.stop()
        if self.sampler is not None:
            self.sampler.stop()
        for st in self.get_tenants().values():
            st.model.flush()
        self.pool.stop()
        if self.durability is not None:
            # Final publish per tenant so the shutdown checkpoint covers
            # everything applied, then flush the checkpointer and close
            # the WALs.
            for st in self.get_tenants().values():
                if st.model.is_initialized:
                    st.model.publish(self.cache)
            self.durability.stop()

    # -- tenants ----------------------------------------------------------

    def get_tenants(self) -> dict[str, TenantState]:
        with self._tenants_lock:
            return dict(self._tenants)

    def add_tenant(
        self, spec: TenantSpec, *, persist: bool = True
    ) -> TenantState:
        with self._tenants_lock:
            if spec.name in self._tenants:
                raise ValueError(f"tenant {spec.name!r} already exists")
            st = TenantState(spec)
            st.valve.bind_telemetry(
                self.telemetry, f"serving/{spec.name}"
            )
            self._tenants[spec.name] = st
        if persist and self.durability is not None:
            # The spec goes to disk so recovery can re-create the tenant
            # before a single client reconnects (persist=False on the
            # recovery path itself — the spec is already there).
            self.durability.save_spec(spec)
        self.bus.publish({"event": "tenant_added", "tenant": spec.name})
        return st

    def tenant_exists(self, name: str) -> bool:
        with self._tenants_lock:
            return name in self._tenants

    def tenant(self, name: str) -> TenantState | None:
        with self._tenants_lock:
            st = self._tenants.get(name)
        if st is None and self.config.auto_tenant_template is not None:
            tmpl = self.config.auto_tenant_template
            try:
                spec = TenantSpec(
                    **{**tmpl.__dict__, "name": name}
                )
                return self.add_tenant(spec)
            except ValueError:
                with self._tenants_lock:
                    return self._tenants.get(name)
        return st

    def _live_monitors(self):
        return [
            st.model.monitor
            for st in self.get_tenants().values()
            if st.model.monitor is not None
        ]

    # -- ingestion plane ---------------------------------------------------

    def ingest(self, tenant: str, rows) -> tuple[int, dict[str, Any]]:
        """Admit a block of rows into ``tenant``'s lane.

        Admission order: valve first (rate shed → 429 + retry-after),
        then the queue bound (429, full).  Admitted rows are counted
        into ``rows_accepted`` *before* enqueue, so the zero-loss
        invariant is checkable: ``rows_accepted == rows_applied +
        queued + model-pending`` at any quiet point.
        """
        if self._recovering():
            # Replay order must not interleave with fresh traffic.
            return 503, {
                "error": "recovering",
                "tenant": tenant,
                "reason": "recovering",
                "retry_after_s": 0.25,
                "recovery": self.durability.recovery.progress(),
            }
        st = self.tenant(tenant)
        if st is None:
            return 404, {"error": "unknown tenant", "tenant": tenant}
        self._count(tenant, "ingest")
        try:
            x = np.asarray(rows, dtype=np.float64)
            if x.ndim == 1:
                x = x[None, :]
            if x.ndim != 2 or x.shape[0] == 0 or x.shape[1] == 0:
                raise ValueError(f"expected (k, d) rows, got {x.shape}")
        except (TypeError, ValueError) as exc:
            return 422, {"error": f"bad rows: {exc}", "tenant": tenant}
        n = int(x.shape[0])
        if not st.valve.admit_n(n):
            st.note_shed(n)
            return 429, {
                "error": "shedding",
                "tenant": tenant,
                "reason": "rate",
                "rows": n,
                "retry_after_s": st.valve.retry_after_s(),
            }
        if self.durability is not None:
            # WAL-ahead ordering: capacity is checked *before* the WAL
            # append, and a logged block is force-pushed — once a record
            # is durable its rows must reach the model, so the queue may
            # overshoot by the in-flight race window but never drops.
            if st.queue.depth_rows + n > st.queue.capacity_rows:
                st.note_rejected_full(n)
                return 429, {
                    "error": "shedding",
                    "tenant": tenant,
                    "reason": "queue_full",
                    "rows": n,
                    "retry_after_s": 0.05,
                }
            try:
                seq = self.durability.append(tenant, x)
            except OSError as exc:
                # Disk trouble must fail the request, not fake an ack.
                return 503, {
                    "error": f"wal append failed: {exc}",
                    "tenant": tenant,
                    "reason": "wal_error",
                    "retry_after_s": 0.5,
                }
            depth = st.queue.push(x, seq, force=True)
        else:
            seq = -1
            try:
                depth = st.queue.push(x)
            except QueueFull:
                st.note_rejected_full(n)
                return 429, {
                    "error": "shedding",
                    "tenant": tenant,
                    "reason": "queue_full",
                    "rows": n,
                    "retry_after_s": 0.05,
                }
        st.note_accepted(n)
        self.pool.work_event.set()
        ack: dict[str, Any] = {
            "accepted_rows": n,
            "tenant": tenant,
            "queue_depth_rows": depth,
            "snapshot_version": self.cache.version(tenant),
        }
        if self.durability is not None:
            ack["wal_seq"] = seq
            ack["durability"] = self.durability.durability
        return 202, ack

    # -- query plane (snapshot-only, lock-free) ----------------------------

    def _snapshot_or_error(self, tenant: str):
        if self.tenant(tenant) is None and self.cache.peek(tenant) is None:
            return None, (
                404, {"error": "unknown tenant", "tenant": tenant}
            )
        snap = self.cache.get(tenant)
        if snap is None:
            return None, (409, {
                "error": "no snapshot published yet",
                "tenant": tenant,
                "hint": "ingest more rows; first snapshot follows "
                        "model initialization",
            })
        return snap, None

    def _query(self, tenant: str, route: str, fn):
        self._count(tenant, route)
        snap, err = self._snapshot_or_error(tenant)
        if err is not None:
            return err
        try:
            body = fn(snap)
        except ValueError as exc:
            return 422, {"error": str(exc), "tenant": tenant}
        return 200, {**snap.meta(), **body}

    def transform(self, tenant: str, rows):
        return self._query(tenant, "transform", lambda s: {
            "coefficients": s.transform(rows).tolist(),
        })

    def reconstruction_error(self, tenant: str, rows):
        return self._query(tenant, "reconstruction_error", lambda s: {
            "reconstruction_error": s.reconstruction_error(rows).tolist(),
        })

    def outlier_score(self, tenant: str, rows):
        def run(s):
            t, flags = s.outlier_score(rows)
            return {
                "scores": t.tolist(),
                "is_outlier": flags.tolist(),
                "outlier_t": s.outlier_t,
            }
        return self._query(tenant, "outlier_score", run)

    def eigenspectra(
        self, tenant: str, top_k: int | None = None,
        include_basis: bool = False,
    ):
        return self._query(tenant, "eigenspectra", lambda s: {
            "spectra": s.eigenspectra(top_k, include_basis=include_basis),
        })

    # -- health plane ------------------------------------------------------

    def _recovering(self) -> bool:
        return (
            self.durability is not None
            and self.durability.recovery is not None
            and not self.durability.recovery.done.is_set()
        )

    def ready(self) -> tuple[int, dict[str, Any]]:
        """Readiness: every desired lane live, health not CRITICAL, and
        — when a durability plane is attached — startup recovery done.

        During recovery the 503 body carries the per-tenant replay
        progress (checkpoint version loaded, WAL records replayed /
        total), so an orchestrator's probe log *is* the recovery trace.
        """
        live = len(self.pool.live_lane_ids())
        desired = self.pool.desired_lanes
        verdict = self.rule_engine.evaluate()
        recovering = self._recovering()
        ok = (
            self._started and live >= desired
            and verdict.status != "CRITICAL"
            and not recovering
        )
        body: dict[str, Any] = {
            "ready": ok,
            "started": self._started,
            "live_lanes": live,
            "desired_lanes": desired,
            "health_status": verdict.status,
            "firing": verdict.firing,
        }
        if recovering:
            body["recovering"] = True
            body["retry_after_s"] = 0.25
            body["recovery"] = self.durability.recovery.progress()
        elif self.durability is not None and self.durability.recovery:
            body["recovering"] = False
            body["recovery_duration_s"] = (
                self.durability.recovery.duration_s
            )
        return (200 if ok else 503), body

    def live(self) -> tuple[int, dict[str, Any]]:
        """Liveness: the process serves requests (pool may be degraded)."""
        return 200, {"live": True, "started": self._started}

    def status(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "tenants": {
                name: st.stats()
                for name, st in sorted(self.get_tenants().items())
            },
            "lanes": self.pool.lanes_snapshot(),
            "cache": self.cache.stats(),
            "bus": {
                "published": self.bus.n_published,
                "dropped": self.bus.n_dropped,
            },
            "elastic": (
                self.elastic.snapshot() if self.elastic is not None else None
            ),
            "health": self.rule_engine.snapshot(),
            "durability": (
                self.durability.status()
                if self.durability is not None else None
            ),
        }

    # -- events & metrics --------------------------------------------------

    def _pool_event(self, kind: str, **payload: Any) -> None:
        self.telemetry.events.append({
            "ts": self.telemetry.now(), "kind": f"serving_{kind}", **payload,
        })
        self.bus.publish({"event": kind, **payload})

    def _on_snapshot(self, snap) -> None:
        self.bus.publish({
            "event": "snapshot",
            "tenant": snap.tenant,
            "version": snap.version,
            "model_rows": snap.rows_applied,
            "n_components": snap.n_components,
        })

    def observe_latency(self, route: str, seconds: float) -> None:
        """Record one request's wall time (p50/p95/p99 via summary())."""
        self.telemetry.metrics.histogram(
            "repro_serving_request_seconds", route=route
        ).observe(seconds)

    def _count(self, tenant: str, route: str) -> None:
        self.telemetry.metrics.counter(
            "repro_serving_requests_total", route=route
        ).inc()

    def _register_metrics(self) -> None:
        """Expose serving state through one registry collector.

        Collector, not live gauges: the counters already live on the
        tenant/queue/cache objects, so export reads them at scrape time
        (single source of truth, no double bookkeeping).
        """

        def _serving_samples():
            samples = []
            for name, st in self.get_tenants().items():
                t = {"tenant": name}
                samples.append((
                    "repro_serving_queue_depth", "gauge", t,
                    st.queue.depth_rows,
                ))
                snap = self.cache.peek(name)
                samples.append((
                    "repro_serving_snapshot_age_seconds", "gauge", t,
                    snap.age_s() if snap is not None else -1.0,
                ))
                samples.append((
                    "repro_serving_snapshot_version", "gauge", t,
                    self.cache.version(name),
                ))
                samples.append((
                    "repro_serving_rows_accepted_total", "counter", t,
                    st.rows_accepted,
                ))
                samples.append((
                    "repro_serving_rows_shed_total", "counter", t,
                    st.rows_shed + st.rows_rejected_full,
                ))
            samples.append((
                "repro_serving_live_lanes", "gauge", {},
                len(self.pool.live_lane_ids()),
            ))
            stats = self.cache.stats()
            samples.append((
                "repro_serving_cache_hits_total", "counter", {},
                stats["n_hits"],
            ))
            samples.append((
                "repro_serving_cache_misses_total", "counter", {},
                stats["n_misses"],
            ))
            if self.durability is not None:
                dur = self.durability.status()
                for name, t in dur["tenants"].items():
                    labels = {"tenant": name}
                    age = t["checkpoint_age_s"]
                    samples.append((
                        "repro_checkpoint_age_seconds", "gauge", labels,
                        age if age is not None else -1.0,
                    ))
                    if t["wal"] is not None:
                        samples.append((
                            "repro_wal_size_bytes", "gauge", labels,
                            t["wal"]["size_bytes"],
                        ))
            return samples

        self.telemetry.metrics.register_collector(_serving_samples)

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Per-route p50/p95/p99 from the request histograms."""
        out: dict[str, dict[str, float]] = {}
        reg = self.telemetry.metrics
        for (name, labels), metric in list(reg._metrics.items()):
            if name != "repro_serving_request_seconds":
                continue
            summary = metric.summary()
            if summary:
                out[dict(labels).get("route", "?")] = summary
        return out
