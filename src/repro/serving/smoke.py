"""Concurrent serving smoke run: the CI `serving-smoke` workload.

Boots a full :class:`ServingServer`, drives N concurrent clients
(mixed ingest + query across two tenants, one of them deliberately
rate-starved so the valve sheds) for a fixed duration, then checks the
serving contract:

* zero 5xx across every request;
* the overloaded tenant shed (429) but **lost nothing it admitted** —
  ``rows_accepted == rows_applied + queued + model-pending`` exactly;
* queries were answered from published snapshots (version monotone,
  reported in each reply);
* the telemetry JSONL artifact is written for upload.

Seeded and deterministic in structure (thread interleaving varies, the
assertions hold regardless).  Used by ``python -m repro serve --smoke``
and directly by the CI job.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

import numpy as np

from .client import ServingClient
from .http import ServingServer
from .service import PCAService, ServingConfig
from .tenancy import TenantSpec

__all__ = ["run_smoke"]


def _client_loop(
    host: str, port: int, tenant: str, *, seed: int, dim: int,
    block_rows: int, stop: threading.Event, mix: str,
    out: dict[str, Any],
) -> None:
    rng = np.random.default_rng(seed)
    codes: dict[int, int] = {}
    rows_accepted = 0
    versions: list[int] = []
    n_queries_ok = 0
    try:
        with ServingClient(host, port, timeout_s=15.0) as client:
            while not stop.is_set():
                if mix == "ingest" or (mix == "mixed" and rng.random() < 0.5):
                    reply = client.ingest(
                        tenant, rng.normal(size=(block_rows, dim))
                    )
                    if reply.code == 202:
                        rows_accepted += reply.body["accepted_rows"]
                    elif reply.code == 429:
                        time.sleep(
                            min(reply.retry_after_s or 0.01, 0.05)
                        )
                else:
                    op = rng.integers(0, 3)
                    if op == 0:
                        reply = client.transform(
                            tenant, rng.normal(size=(4, dim))
                        )
                    elif op == 1:
                        reply = client.outlier_score(
                            tenant, rng.normal(size=(4, dim))
                        )
                    else:
                        reply = client.eigenspectra(tenant, top_k=3)
                    if reply.code == 200:
                        n_queries_ok += 1
                        versions.append(reply.body["snapshot_version"])
                codes[reply.code] = codes.get(reply.code, 0) + 1
    except Exception as exc:
        out["error"] = repr(exc)
    out.update(
        codes=codes, rows_accepted=rows_accepted,
        n_queries_ok=n_queries_ok, versions=versions,
    )


def run_smoke(
    *,
    n_clients: int = 20,
    duration_s: float = 30.0,
    seed: int = 20120513,
    dim: int = 16,
    block_rows: int = 32,
    n_lanes: int = 2,
    overload: bool = True,
    telemetry_out: str | None = None,
    verbose: bool = True,
    data_dir: str | None = None,
    durability: str = "async",
) -> dict[str, Any]:
    """Run the smoke workload; returns the report dict (raises on FAIL)."""
    svc = PCAService(ServingConfig(
        n_lanes=n_lanes, min_lanes=1, max_lanes=max(4, n_lanes),
        elastic_interval_s=0.25,
        data_dir=data_dir, durability=durability,
    ))
    svc.add_tenant(TenantSpec(
        "bulk", n_components=4, publish_every_blocks=4,
        queue_capacity_rows=200_000,
    ))
    svc.add_tenant(TenantSpec(
        "throttled", n_components=4, publish_every_blocks=4,
        # Low rate so sustained ingest trips the valve: shed-not-drop.
        max_rate_hz=(400.0 if overload else None), burst_s=1.0,
        queue_capacity_rows=200_000,
    ))
    server = ServingServer(svc).start()
    stop = threading.Event()
    results: list[dict[str, Any]] = []
    threads: list[threading.Thread] = []
    # Client mix: half hit the bulk tenant, half the throttled one;
    # within each, alternate pure-ingest and mixed ingest+query.
    for i in range(n_clients):
        tenant = "bulk" if i % 2 == 0 else "throttled"
        mix = "ingest" if i % 4 < 2 else "mixed"
        out: dict[str, Any] = {"tenant": tenant, "mix": mix}
        results.append(out)
        threads.append(threading.Thread(
            target=_client_loop,
            args=(server.host, server.port, tenant),
            kwargs=dict(
                seed=seed + i, dim=dim, block_rows=block_rows,
                stop=stop, mix=mix, out=out,
            ),
            daemon=True,
        ))
    t0 = time.monotonic()
    for t in threads:
        t.start()
    time.sleep(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=20.0)
    wall_s = time.monotonic() - t0

    # Let the lanes drain what was admitted, then do the accounting.
    svc.pool.drain(timeout_s=30.0)
    time.sleep(0.2)

    failures: list[str] = []
    all_codes: dict[int, int] = {}
    for out in results:
        if "error" in out:
            failures.append(f"client error: {out['error']}")
        for code, n in out.get("codes", {}).items():
            all_codes[code] = all_codes.get(code, 0) + n
        versions = out.get("versions", [])
        if any(b < a for a, b in zip(versions, versions[1:])):
            failures.append(
                "snapshot versions went backwards on one client"
            )
    for code, n in all_codes.items():
        if code >= 500:
            failures.append(f"{n} responses with 5xx code {code}")
    accepted_by_clients = {
        name: sum(
            o.get("rows_accepted", 0) for o in results
            if o["tenant"] == name
        )
        for name in ("bulk", "throttled")
    }
    tenant_stats = {}
    for name, st in svc.get_tenants().items():
        stats = st.stats()
        tenant_stats[name] = stats
        settled = (
            stats["rows_applied"] + stats["queue_depth_rows"]
            + stats["pending_rows"]
        )
        if stats["rows_accepted"] != settled:
            failures.append(
                f"tenant {name}: accepted {stats['rows_accepted']} rows "
                f"but only {settled} applied+queued (tuple loss)"
            )
        if accepted_by_clients[name] != stats["rows_accepted"]:
            failures.append(
                f"tenant {name}: clients saw {accepted_by_clients[name]} "
                f"accepted, server counted {stats['rows_accepted']}"
            )
    if overload:
        shed = tenant_stats["throttled"]["rows_shed"]
        if shed <= 0 and 429 not in all_codes:
            failures.append(
                "overload run produced no shedding on the throttled tenant"
            )

    report = {
        "n_clients": n_clients,
        "duration_s": round(wall_s, 3),
        "codes": {str(k): v for k, v in sorted(all_codes.items())},
        "tenants": tenant_stats,
        "cache": svc.cache.stats(),
        "latency": svc.latency_summary(),
        "lanes": svc.pool.lanes_snapshot(),
        "bus": {
            "published": svc.bus.n_published,
            "dropped": svc.bus.n_dropped,
        },
        "failures": failures,
        "ok": not failures,
    }
    if telemetry_out:
        svc.telemetry.events.append({
            "ts": svc.telemetry.now(), "kind": "serving_smoke_report",
            **{k: v for k, v in report.items() if k != "latency"},
        })
        svc.telemetry.write_jsonl(telemetry_out)
    server.stop()
    if verbose:
        print(json.dumps(report, indent=2, default=str))
    if failures:
        raise AssertionError(
            "serving smoke FAILED:\n  " + "\n  ".join(failures)
        )
    return report
