"""The shared compute pool: engine lanes, membership, elastic scaling.

An :class:`EnginePool` owns N *lanes* — daemon threads that drain the
ingest queues of the tenants the :class:`~.tenancy.TenantRouter`
assigns to them, fold blocks into the tenant models, and publish
eigenbasis snapshots on the tenant's cadence.  The pool exposes:

* a ``membership`` adapter shaped like the sync controller's peer table
  (``peers`` / ``quorum`` / ``stats``), so the existing
  :class:`~repro.streams.health.HealthRuleEngine` rules — peer-evicted,
  quorum-lost — apply to lanes unchanged;
* a ``backpressure_probe`` in the exact shape
  :class:`~repro.streams.telemetry.BackpressureSampler` expects, so
  per-lane queue depth lands on the standard ``repro_queue_depth``
  gauges; and
* the chaos hooks (:meth:`EngineLane.kill`) the serving contract test
  uses to prove 503-then-recover.

The :class:`ElasticController` closes the loop: it respawns dead lanes
(the rejoin/reseed path) and scales the pool between ``min_lanes`` and
``max_lanes`` off the sampled queue-depth gauges with consecutive-tick
hysteresis.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .snapshots import EigenbasisCache
from .tenancy import TenantRouter, TenantState

__all__ = ["ElasticController", "EngineLane", "EnginePool"]


class _LaneKilled(Exception):
    """Raised inside a lane's loop by the chaos kill hook."""


@dataclass
class _PoolStats:
    """Membership-shaped counters (HealthRuleEngine reads these)."""

    n_evictions: int = 0
    n_rejoins: int = 0


@dataclass
class _LanePeer:
    """One row of the membership table the health rules inspect."""

    engine: int
    alive: bool = True
    last_seen: float = 0.0


class EngineLane(threading.Thread):
    """One pool worker: drains its assigned tenants' ingest queues.

    The loop is at-least-once: a block is popped, applied, and only an
    *applied* block is gone — any failure (including a chaos kill landing
    mid-loop) requeues the in-flight block at the front of the queue
    before the lane dies, so admitted rows are never lost.
    """

    def __init__(self, lane_id: int, pool: "EnginePool") -> None:
        super().__init__(name=f"serving-lane-{lane_id}", daemon=True)
        self.lane_id = int(lane_id)
        self.pool = pool
        self.alive = True
        self._halt = threading.Event()
        self._killed = threading.Event()
        self.rows_processed = 0
        self.blocks_processed = 0

    def stop(self) -> None:
        """Graceful retirement (scale-down): finish the current block."""
        self._halt.set()

    def kill(self) -> None:
        """Chaos hook: die uncleanly at the next loop checkpoint."""
        self._killed.set()

    def _check_killed(self) -> None:
        if self._killed.is_set():
            raise _LaneKilled(f"lane {self.lane_id} killed")

    def run(self) -> None:  # noqa: C901 - one linear drain loop
        pool = self.pool
        try:
            while not self._halt.is_set():
                self._check_killed()
                worked = False
                for tenant in pool.tenants_for(self.lane_id):
                    self._check_killed()
                    worked |= self._drain_one(tenant)
                if not worked:
                    pool.work_event.wait(pool.idle_wait_s)
                    pool.work_event.clear()
        except _LaneKilled:
            self.alive = False
            pool.note_lane_death(self.lane_id, reason="killed")
            return
        except Exception as exc:  # unexpected: same recovery path
            self.alive = False
            pool.note_lane_death(self.lane_id, reason=repr(exc))
            return
        self.alive = False

    def _drain_one(self, tenant: TenantState) -> bool:
        """Apply at most one block of ``tenant``'s queue; True if it did."""
        if tenant.needs_reseed:
            # Previous owner died mid-update: never trust the in-place
            # state — rebuild from the latest *published* snapshot.
            snap = self.pool.cache.peek(tenant.name)
            tenant.model.reseed(snap)
            tenant.needs_reseed = False
            self.pool.emit(
                "tenant_reseeded",
                tenant=tenant.name,
                lane=self.lane_id,
                from_version=snap.version if snap is not None else 0,
            )
        popped = tenant.queue.pop_block(tenant.spec.max_block_rows)
        if popped is None:
            if tenant.model.should_publish():
                self._publish(tenant)
            return False
        block, wal_seq = popped
        try:
            tenant.model.apply_block(block, wal_seq=wal_seq)
        except BaseException:
            tenant.queue.requeue_front(block, wal_seq)
            raise
        self.rows_processed += int(block.shape[0])
        self.blocks_processed += 1
        if tenant.model.should_publish():
            self._publish(tenant)
        return True

    def _publish(self, tenant: TenantState) -> None:
        snap = tenant.model.publish(self.pool.cache)
        if snap is not None:
            self.pool.emit(
                "snapshot_published",
                tenant=tenant.name,
                lane=self.lane_id,
                version=snap.version,
                model_rows=snap.rows_applied,
            )


class EnginePool:
    """Owns the lanes and the tenant → lane placement.

    ``get_tenants`` decouples the pool from the service: it returns the
    live ``{name: TenantState}`` map on every drain pass, so tenants
    added after the pool started are picked up without coordination.
    """

    def __init__(
        self,
        cache: EigenbasisCache,
        get_tenants: Callable[[], dict[str, TenantState]],
        *,
        n_lanes: int = 2,
        idle_wait_s: float = 0.02,
        on_event: Callable[..., None] | None = None,
    ) -> None:
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        self.cache = cache
        self.get_tenants = get_tenants
        self.router = TenantRouter()
        self.idle_wait_s = float(idle_wait_s)
        self._on_event = on_event
        self.desired_lanes = int(n_lanes)
        self.stats = _PoolStats()
        self.work_event = threading.Event()
        self._lock = threading.Lock()
        self._lanes: dict[int, EngineLane] = {}
        self._next_lane_id = 0
        self._started = False

    # -- events -----------------------------------------------------------

    def emit(self, kind: str, **payload: Any) -> None:
        if self._on_event is not None:
            try:
                self._on_event(kind, **payload)
            except Exception:
                pass

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._started = True
            for _ in range(self.desired_lanes - len(self._lanes)):
                self._spawn_locked()

    def stop(self) -> None:
        with self._lock:
            lanes = list(self._lanes.values())
            self._started = False
        for lane in lanes:
            lane.stop()
        self.work_event.set()
        for lane in lanes:
            lane.join(timeout=5.0)

    def _spawn_locked(self) -> EngineLane:
        lane_id = self._next_lane_id
        self._next_lane_id += 1
        lane = EngineLane(lane_id, self)
        self._lanes[lane_id] = lane
        lane.start()
        return lane

    # -- placement --------------------------------------------------------

    def live_lane_ids(self) -> list[int]:
        with self._lock:
            return [
                lid for lid, lane in self._lanes.items()
                if lane.alive and lane.is_alive()
            ]

    def tenants_for(self, lane_id: int) -> list[TenantState]:
        """The tenants lane ``lane_id`` currently owns (stable order)."""
        live = self.live_lane_ids()
        if lane_id not in live:
            return []
        tenants = self.get_tenants()
        return [
            st for name, st in sorted(tenants.items())
            if self.router.lane_of(name, live) == lane_id
        ]

    def lane_of(self, tenant: str) -> int | None:
        live = self.live_lane_ids()
        return self.router.lane_of(tenant, live) if live else None

    # -- death & recovery --------------------------------------------------

    def note_lane_death(self, lane_id: int, *, reason: str) -> None:
        """A lane died uncleanly: evict it, mark its tenants dirty."""
        with self._lock:
            lane = self._lanes.get(lane_id)
            if lane is None:
                return
            self.stats.n_evictions += 1
        for name, st in self.get_tenants().items():
            # Any tenant the dead lane *could* have been updating must be
            # reseeded by its next owner; ownership at death time is what
            # matters, but the dead lane is already out of live_lane_ids,
            # so recompute against the pre-death set.
            with self._lock:
                pre_death = [
                    lid for lid, ln in self._lanes.items()
                    if (ln.alive and ln.is_alive()) or lid == lane_id
                ]
            if self.router.lane_of(name, pre_death) == lane_id:
                st.needs_reseed = True
        self.emit("lane_dead", lane=lane_id, reason=reason)
        self.work_event.set()

    def respawn_dead(self) -> int:
        """Replace dead lanes up to ``desired_lanes`` (the rejoin path)."""
        spawned = 0
        with self._lock:
            if not self._started:
                return 0
            for lid, lane in list(self._lanes.items()):
                if not lane.alive or not lane.is_alive():
                    del self._lanes[lid]
            while len(self._lanes) < self.desired_lanes:
                lane = self._spawn_locked()
                self.stats.n_rejoins += 1
                spawned += 1
                self.emit("lane_respawned", lane=lane.lane_id)
        if spawned:
            self.work_event.set()
        return spawned

    def scale_to(self, n: int) -> int:
        """Elastic resize to ``n`` lanes; returns the delta applied."""
        n = max(1, int(n))
        with self._lock:
            if not self._started:
                self.desired_lanes = n
                return 0
            delta = 0
            self.desired_lanes = n
            live = [
                (lid, ln) for lid, ln in sorted(self._lanes.items())
                if ln.alive and ln.is_alive()
            ]
            while len(live) + delta < n:
                self._spawn_locked()
                delta += 1
            retired = []
            while len(live) > n:
                lid, lane = live.pop()  # retire the newest lanes first
                retired.append(lane)
                del self._lanes[lid]
                delta -= 1
        for lane in retired:
            lane.stop()
        if delta:
            self.work_event.set()
            self.emit(
                "pool_scaled", desired=n, delta=delta,
                live=len(self.live_lane_ids()),
            )
        return delta

    # -- telemetry & health surfaces --------------------------------------

    def backpressure_probe(self):
        """``(per_pe, inflight, dispatched)`` for BackpressureSampler."""
        tenants = self.get_tenants()
        live = self.live_lane_ids()
        depth_by_lane: dict[int, int] = {lid: 0 for lid in live}
        inflight = 0
        dispatched = 0
        for name, st in tenants.items():
            depth = st.queue.depth_rows + st.model.pending_rows
            inflight += depth
            dispatched += st.queue.rows_popped
            if live:
                depth_by_lane[self.router.lane_of(name, live)] += depth
        per_pe = [
            (f"lane-{lid}", depth, sum(
                st.queue.capacity_rows for st in tenants.values()
            ) or 1)
            for lid, depth in sorted(depth_by_lane.items())
        ]
        return per_pe, inflight, dispatched

    @property
    def membership(self) -> "_Membership":
        """Sync-controller-shaped view for :class:`HealthRuleEngine`."""
        with self._lock:
            peers = {
                lid: _LanePeer(engine=lid, alive=lane.alive and lane.is_alive())
                for lid, lane in self._lanes.items()
            }
            desired = self.desired_lanes
        # Numeric quorum, like the sync controller's: a majority of the
        # desired lane count.  The quorum-lost rule fires (critical)
        # when live peers drop below it.
        quorum = desired // 2 + 1
        return _Membership(peers=peers, quorum=quorum, stats=self.stats)

    def lanes_snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            lanes = list(self._lanes.values())
        return [
            {
                "lane": lane.lane_id,
                "alive": lane.alive and lane.is_alive(),
                "rows_processed": lane.rows_processed,
                "blocks_processed": lane.blocks_processed,
            }
            for lane in lanes
        ]

    def queue_depth_rows(self) -> int:
        return sum(
            st.queue.depth_rows + st.model.pending_rows
            for st in self.get_tenants().values()
        )

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Block until every queue is empty (tests/shutdown); True if so."""
        import time as _time

        deadline = _time.monotonic() + timeout_s
        self.work_event.set()
        while _time.monotonic() < deadline:
            if self.queue_depth_rows() == 0:
                return True
            self.work_event.set()
            _time.sleep(0.01)
        return self.queue_depth_rows() == 0


@dataclass
class _Membership:
    """Duck-typed stand-in for the sync controller in health rules."""

    peers: dict[int, _LanePeer]
    quorum: bool
    stats: _PoolStats = field(default_factory=_PoolStats)


class ElasticController(threading.Thread):
    """Scales the pool off sampled backpressure, and respawns the dead.

    Each tick it (1) replaces dead lanes immediately — recovery never
    waits for hysteresis — and (2) reads the per-lane
    ``repro_queue_depth`` gauges the
    :class:`~repro.streams.telemetry.BackpressureSampler` maintains
    (falling back to a direct pool probe when no telemetry is wired).
    Total depth above ``high_watermark_rows`` for ``hysteresis_ticks``
    consecutive ticks adds a lane (up to ``max_lanes``); depth below
    ``low_watermark_rows`` for the same streak removes one (down to
    ``min_lanes``).
    """

    def __init__(
        self,
        pool: EnginePool,
        *,
        telemetry=None,
        min_lanes: int = 1,
        max_lanes: int = 8,
        high_watermark_rows: int = 4096,
        low_watermark_rows: int = 256,
        hysteresis_ticks: int = 3,
        interval_s: float = 0.25,
    ) -> None:
        if min_lanes < 1 or max_lanes < min_lanes:
            raise ValueError("need 1 <= min_lanes <= max_lanes")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        super().__init__(name="serving-elastic", daemon=True)
        self.pool = pool
        self.telemetry = telemetry
        self.min_lanes = int(min_lanes)
        self.max_lanes = int(max_lanes)
        self.high_watermark_rows = int(high_watermark_rows)
        self.low_watermark_rows = int(low_watermark_rows)
        self.hysteresis_ticks = int(hysteresis_ticks)
        self.interval_s = float(interval_s)
        self._halt = threading.Event()
        self._high_streak = 0
        self._low_streak = 0
        self.n_ticks = 0
        self.n_scale_ups = 0
        self.n_scale_downs = 0
        self.n_respawns = 0

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)

    def _sampled_depth(self) -> int:
        """Total queue depth, preferring the sampler's gauges."""
        tel = self.telemetry
        if tel is not None:
            try:
                total, seen = 0.0, False
                for lid in self.pool.live_lane_ids():
                    v = tel.metrics.value(
                        "repro_queue_depth", pe=f"lane-{lid}"
                    )
                    if v is not None:
                        total += v
                        seen = True
                if seen:
                    return int(total)
            except Exception:
                pass
        return self.pool.queue_depth_rows()

    def tick(self) -> None:
        self.n_ticks += 1
        self.n_respawns += self.pool.respawn_dead()
        depth = self._sampled_depth()
        live = len(self.pool.live_lane_ids())
        if depth >= self.high_watermark_rows:
            self._high_streak += 1
            self._low_streak = 0
        elif depth <= self.low_watermark_rows:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = self._low_streak = 0
        if (
            self._high_streak >= self.hysteresis_ticks
            and live < self.max_lanes
        ):
            self.pool.scale_to(live + 1)
            self.n_scale_ups += 1
            self._high_streak = 0
        elif (
            self._low_streak >= self.hysteresis_ticks
            and live > self.min_lanes
        ):
            self.pool.scale_to(live - 1)
            self.n_scale_downs += 1
            self._low_streak = 0

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # controller must outlive transient races
                pass

    def snapshot(self) -> dict[str, Any]:
        return {
            "ticks": self.n_ticks,
            "scale_ups": self.n_scale_ups,
            "scale_downs": self.n_scale_downs,
            "respawns": self.n_respawns,
            "live_lanes": len(self.pool.live_lane_ids()),
            "desired_lanes": self.pool.desired_lanes,
            "min_lanes": self.min_lanes,
            "max_lanes": self.max_lanes,
        }
