"""Tenants: specs, ingest lanes, per-tenant models, and the router.

Each tenant is an isolated streaming-PCA customer: its own model, its
own bounded ingest queue, and its own admission valve
(:class:`~repro.streams.resilience.LoadShedValve`), so one tenant's
overload sheds *that tenant's* traffic and never starves a neighbour.
Compute is shared: a :class:`~repro.serving.pool.EnginePool` of lanes
drains every tenant's queue, with the :class:`TenantRouter` deciding
which lane owns which tenant (rendezvous hashing, so scaling the pool
up or down moves as few tenants as possible).
"""

from __future__ import annotations

import hashlib
import itertools
import re
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.eigensystem import Eigensystem
from ..core.merge import merge_eigensystems
from ..core.robust import RobustIncrementalPCA
from ..streams.health import HealthMonitor
from ..streams.resilience import LoadShedValve
from .snapshots import DEFAULT_OUTLIER_T, EigenbasisCache

__all__ = [
    "IngestQueue",
    "QueueFull",
    "TenantModel",
    "TenantRouter",
    "TenantSpec",
    "TenantState",
]

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

_MONITOR_IDS = itertools.count()

_RUNTIMES = ("synchronous", "threaded", "process", "cluster")


@dataclass(frozen=True)
class TenantSpec:
    """Declarative per-tenant configuration.

    Parameters
    ----------
    name:
        URL-safe tenant id (``[A-Za-z0-9][A-Za-z0-9_.-]*``, <= 64 chars).
    n_components / alpha / delta / init_size / estimator_kwargs:
        Forwarded to the tenant's
        :class:`~repro.core.robust.RobustIncrementalPCA`.
    n_engines / runtime:
        ``n_engines == 1`` (default) updates one estimator in place on
        the owning lane — the hot path.  ``n_engines > 1`` switches the
        tenant to *parallel chunk mode*: ingest rows accumulate into
        chunks of ``parallel_chunk_rows``, each chunk is processed by a
        full :class:`~repro.parallel.ParallelStreamingPCA` run on the
        chosen runtime, and the chunk's merged eigensystem is folded
        into the tenant state with
        :func:`~repro.core.merge.merge_eigensystems` (the paper's merge
        operator used as the incremental step).
    publish_every_blocks:
        Snapshot cadence ``k``: the lane publishes a fresh eigenbasis
        snapshot after every ``k`` applied blocks (plus once immediately
        after the model first initializes, so queries go live early).
    max_rate_hz / burst_s / shed_open_for_s:
        Admission valve; ``None`` admits everything (see
        :class:`~repro.streams.resilience.LoadShedValve`).  Rates are in
        *rows* per second.
    queue_capacity_rows:
        Bound on queued-but-unapplied rows; ingest beyond it is rejected
        with 429 (shed-not-drop: rejected rows were never admitted).
    max_block_rows:
        Drain granularity: the lane applies at most this many rows per
        model update (keeps publish latency and lock hold times bounded).
    health_check_every:
        Rows between model-health checks (0 disables the monitor).
    outlier_t:
        Scaled-residual outlier cutoff stamped into snapshots when the
        model cannot provide a calibrated one.
    """

    name: str
    n_components: int = 4
    alpha: float = 0.999
    delta: float = 0.5
    init_size: int = 20
    estimator_kwargs: dict[str, Any] = field(default_factory=dict)
    n_engines: int = 1
    runtime: str = "synchronous"
    parallel_chunk_rows: int = 0  # 0 = auto
    publish_every_blocks: int = 4
    max_rate_hz: float | None = None
    burst_s: float = 1.0
    shed_open_for_s: float = 0.25
    queue_capacity_rows: int = 50_000
    max_block_rows: int = 256
    health_check_every: int = 512
    outlier_t: float = DEFAULT_OUTLIER_T

    def __post_init__(self) -> None:
        if not _TENANT_RE.match(self.name):
            raise ValueError(
                f"tenant name must match {_TENANT_RE.pattern!r}, "
                f"got {self.name!r}"
            )
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")
        if self.n_engines < 1:
            raise ValueError("n_engines must be >= 1")
        if self.runtime not in _RUNTIMES:
            raise ValueError(
                f"runtime must be one of {_RUNTIMES}, got {self.runtime!r}"
            )
        if self.publish_every_blocks < 1:
            raise ValueError("publish_every_blocks must be >= 1")
        if self.max_rate_hz is not None and self.max_rate_hz <= 0:
            raise ValueError("max_rate_hz must be positive (or None)")
        if self.burst_s <= 0:
            raise ValueError("burst_s must be positive")
        if self.queue_capacity_rows < 1:
            raise ValueError("queue_capacity_rows must be >= 1")
        if self.max_block_rows < 1:
            raise ValueError("max_block_rows must be >= 1")

    @property
    def chunk_rows(self) -> int:
        """Effective parallel chunk size (auto = enough to warm every
        engine with comfortable margin under random splitting)."""
        if self.parallel_chunk_rows > 0:
            return self.parallel_chunk_rows
        return max(512, 4 * self.n_engines * self.init_size)


class QueueFull(Exception):
    """Raised by :meth:`IngestQueue.push` when capacity would be exceeded."""


class IngestQueue:
    """Bounded FIFO of ``(k, d)`` row blocks for one tenant.

    Producers are request handlers (reject-on-full — admission control,
    not backpressure-by-blocking); the single consumer is the owning
    engine lane.  ``requeue_front`` re-admits an in-flight block after a
    lane death and is allowed to overshoot capacity: those rows were
    already admitted and must not be lost.
    """

    def __init__(self, capacity_rows: int) -> None:
        self.capacity_rows = int(capacity_rows)
        #: FIFO of ``(block, wal_seq)``; seq is -1 when the tenant has
        #: no durability plane (nothing to account against the WAL).
        self._blocks: deque[tuple[np.ndarray, int]] = deque()
        self._rows = 0
        self._lock = threading.Lock()
        self.rows_pushed = 0
        self.rows_popped = 0
        self.rows_requeued = 0

    @property
    def depth_rows(self) -> int:
        return self._rows

    def push(
        self, block: np.ndarray, seq: int = -1, *, force: bool = False
    ) -> int:
        """Enqueue one admitted block; returns the new depth in rows.

        ``force=True`` admits past capacity — used for rows that are
        already durable in the WAL (an acked row must never be dropped;
        capacity is enforced by the ingest pre-check instead).
        """
        n = block.shape[0]
        with self._lock:
            if not force and self._rows + n > self.capacity_rows:
                raise QueueFull(
                    f"queue at {self._rows}/{self.capacity_rows} rows"
                )
            self._blocks.append((block, int(seq)))
            self._rows += n
            self.rows_pushed += n
            return self._rows

    def pop(self, max_rows: int) -> np.ndarray | None:
        """Dequeue up to ``max_rows`` rows (coalescing whole blocks)."""
        popped = self.pop_block(max_rows)
        return None if popped is None else popped[0]

    def pop_block(self, max_rows: int) -> tuple[np.ndarray, int] | None:
        """Like :meth:`pop`, plus the highest WAL seq of the coalesced
        blocks.  FIFO ordering makes the last block's seq cover every
        earlier one, so a checkpoint at that seq accounts for the whole
        coalesced batch."""
        out: list[np.ndarray] = []
        seq = -1
        got = 0
        with self._lock:
            while self._blocks and (
                not out or got + self._blocks[0][0].shape[0] <= max_rows
            ):
                blk, blk_seq = self._blocks.popleft()
                self._rows -= blk.shape[0]
                got += blk.shape[0]
                seq = max(seq, blk_seq)
                out.append(blk)
        if not out:
            return None
        self.rows_popped += got
        return (out[0] if len(out) == 1 else np.vstack(out)), seq

    def requeue_front(self, block: np.ndarray, seq: int = -1) -> None:
        """Put an in-flight block back (lane died before applying it)."""
        with self._lock:
            self._blocks.appendleft((block, int(seq)))
            self._rows += block.shape[0]
            self.rows_requeued += block.shape[0]


class TenantModel:
    """The hot model of one tenant, with its publish discipline.

    All mutation happens under ``lock`` on the owning lane's thread; the
    *only* thing that ever leaves the lock is an immutable snapshot
    (copy-on-publish into the :class:`EigenbasisCache`).  Query traffic
    never touches this object — that is the serving layer's core
    contract, tested by ``tests/test_serving.py`` with the lock held.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.lock = threading.Lock()
        self._estimator = self._make_estimator()
        #: Parallel chunk mode state (n_engines > 1): merged eigensystem
        #: plus the pending chunk buffer.
        self._merged: Eigensystem | None = None
        self._pending: list[np.ndarray] = []
        self._pending_rows = 0
        self.monitor: HealthMonitor | None = None
        if spec.health_check_every > 0:
            # Each tenant model gets a unique monitor id so the rule
            # engine's per-engine snapshot table does not collide.
            self.monitor = HealthMonitor(
                next(_MONITOR_IDS), check_every=spec.health_check_every
            )
        self.rows_applied = 0
        self.blocks_applied = 0
        self.n_outliers = 0
        self.n_publishes = 0
        self.n_reseeds = 0
        #: Highest WAL sequence folded into the model (-1 = none); the
        #: durability plane checkpoints this so recovery knows where the
        #: replay tail starts.
        self.last_wal_seq = -1
        self._blocks_since_publish = 0
        self._published_initialized = False

    def _make_estimator(self) -> RobustIncrementalPCA:
        s = self.spec
        return RobustIncrementalPCA(
            s.n_components,
            alpha=s.alpha,
            delta=s.delta,
            init_size=s.init_size,
            **dict(s.estimator_kwargs),
        )

    @property
    def parallel(self) -> bool:
        return self.spec.n_engines > 1

    @property
    def is_initialized(self) -> bool:
        if self.parallel:
            return self._merged is not None
        return self._estimator.is_initialized

    @property
    def pending_rows(self) -> int:
        """Rows buffered inside the model (parallel chunk mode only)."""
        return self._pending_rows

    # -- compute side (owning lane only) ---------------------------------

    def apply_block(self, xs: np.ndarray, wal_seq: int = -1) -> None:
        """Fold one block of admitted rows into the model."""
        with self.lock:
            if self.parallel:
                self._apply_parallel(xs)
            else:
                result = self._estimator.update_block(xs)
                self.n_outliers += int(result.n_outliers)
                if self.monitor is not None:
                    gaps = int(np.isnan(xs).any(axis=1).sum())
                    if result.n_processed:
                        self.monitor.note_rows(
                            xs.shape[0], n_gap_rows=gaps,
                            n_outliers=int(result.n_outliers),
                            weight_sum=float(np.sum(result.weights)),
                            r2_sum=float(np.sum(result.residual_norm2)),
                        )
                    else:
                        self.monitor.note_rows(xs.shape[0], n_gap_rows=gaps)
                    self.monitor.maybe_check(self._estimator)
            self.rows_applied += int(xs.shape[0])
            self.blocks_applied += 1
            if wal_seq > self.last_wal_seq:
                self.last_wal_seq = wal_seq
            self._blocks_since_publish += 1

    def _apply_parallel(self, xs: np.ndarray) -> None:
        self._pending.append(np.asarray(xs, dtype=np.float64))
        self._pending_rows += int(xs.shape[0])
        if self.monitor is not None:
            self.monitor.note_rows(
                int(xs.shape[0]),
                n_gap_rows=int(np.isnan(xs).any(axis=1).sum()),
            )
        if self._pending_rows >= self.spec.chunk_rows:
            self._run_chunk()

    def _run_chunk(self) -> None:
        """Process the pending chunk through a full parallel-PCA run and
        fold its merged eigensystem into the tenant state."""
        from ..data.streams import VectorStream
        from ..parallel.runner import ParallelStreamingPCA

        chunk = np.vstack(self._pending)
        self._pending.clear()
        self._pending_rows = 0
        s = self.spec
        if chunk.shape[0] >= 2 * s.n_engines * s.init_size:
            runner = ParallelStreamingPCA(
                s.n_components,
                n_engines=s.n_engines,
                alpha=s.alpha,
                delta=s.delta,
                estimator_kwargs=dict(
                    s.estimator_kwargs, init_size=s.init_size
                ),
                runtime=s.runtime,
                collect_diagnostics=False,
            )
            result = runner.run(VectorStream.from_array(chunk))
            chunk_state = result.global_state
        else:
            # Flush remainder too small to warm a parallel run: a
            # single sequential estimator covers it.
            est = self._make_estimator()
            est.update_block(chunk)
            if not est.is_initialized:
                return  # too few rows to learn anything from
            chunk_state = est.public_state()
        if self._merged is None:
            self._merged = chunk_state.copy()
        else:
            self._merged = merge_eigensystems(
                [self._merged, chunk_state], s.n_components
            )
        if self.monitor is not None:
            self.monitor.maybe_check(self._estimator_view())

    def flush(self) -> None:
        """Force any pending chunk through (drain/shutdown path)."""
        with self.lock:
            if self.parallel and self._pending_rows:
                self._run_chunk()
                self._blocks_since_publish += 1

    def _estimator_view(self):
        """Estimator-shaped shim over the merged state (health checks)."""
        class _View:
            is_initialized = True
            state = self._merged
        return _View()

    # -- publish discipline ----------------------------------------------

    def should_publish(self) -> bool:
        if not self.is_initialized:
            return False
        if not self._published_initialized:
            return True  # first snapshot goes out immediately
        return self._blocks_since_publish >= self.spec.publish_every_blocks

    def publish(self, cache: EigenbasisCache, *, version: int | None = None):
        """Copy-on-publish the current state into the cache.

        ``version`` is the recovery override (see
        :meth:`EigenbasisCache.publish`); normal publishes leave it
        ``None`` and the cache assigns previous + 1.
        """
        with self.lock:
            if not self.is_initialized:
                return None
            if self.parallel:
                state = self._merged.copy()
                outlier_t = self.spec.outlier_t
            else:
                state = self._estimator.public_state()
                threshold = getattr(
                    self._estimator, "_outlier_threshold", None
                )
                outlier_t = (
                    float(threshold()) if threshold is not None
                    else self.spec.outlier_t
                )
            rows, blocks = self.rows_applied, self.blocks_applied
            wal_seq = self.last_wal_seq
            self._blocks_since_publish = 0
            self._published_initialized = True
            self.n_publishes += 1
        return cache.publish(
            self.spec.name, state,
            rows_applied=rows, blocks_applied=blocks, outlier_t=outlier_t,
            wal_seq=wal_seq, version=version,
        )

    # -- recovery (the rejoin/reseed path) --------------------------------

    def reseed(self, snapshot) -> None:
        """Rebuild the model after its lane died mid-update.

        A lane killed inside ``apply_block`` can leave the in-place
        eigensystem torn, so the replacement lane never trusts it:
        a fresh estimator adopts the latest *published* snapshot (the
        same :meth:`~repro.core.robust.RobustIncrementalPCA.adopt_state`
        path a late-rejoining sync peer uses), and the health monitor
        re-anchors exactly as it does on a controller re-seed.
        """
        with self.lock:
            self._estimator = self._make_estimator()
            self._pending.clear()
            self._pending_rows = 0
            self._merged = None
            self._blocks_since_publish = 0
            self._published_initialized = False
            if snapshot is not None:
                if self.parallel:
                    self._merged = snapshot.state.copy()
                else:
                    self._estimator.adopt_state(snapshot.state)
                self._published_initialized = True
                if snapshot.wal_seq > self.last_wal_seq:
                    self.last_wal_seq = snapshot.wal_seq
            self.n_reseeds += 1
            if self.monitor is not None and snapshot is not None:
                view = (
                    self._estimator_view() if self.parallel
                    else self._estimator
                )
                self.monitor.on_merge(view, reseed=True)

    def adopt_recovered(
        self,
        state: Eigensystem,
        *,
        rows_applied: int,
        blocks_applied: int,
        wal_seq: int,
    ) -> None:
        """Restore the model from a durable checkpoint at startup.

        Unlike :meth:`reseed` (which keeps in-memory accounting — the
        lane merely lost its estimator), a restart lost *everything*:
        the checkpoint's accounting becomes the model's accounting, and
        the WAL tail past ``wal_seq`` is replayed on top by the
        :class:`~.durability.RecoveryManager`.
        """
        with self.lock:
            self._estimator = self._make_estimator()
            self._pending.clear()
            self._pending_rows = 0
            self._merged = None
            if self.parallel:
                self._merged = state.copy()
            else:
                self._estimator.adopt_state(state)
            self.rows_applied = int(rows_applied)
            self.blocks_applied = int(blocks_applied)
            self.last_wal_seq = int(wal_seq)
            self._blocks_since_publish = 0
            self._published_initialized = True
            if self.monitor is not None:
                view = (
                    self._estimator_view() if self.parallel
                    else self._estimator
                )
                self.monitor.on_merge(view, reseed=True)

    def stats(self) -> dict[str, Any]:
        return {
            "rows_applied": self.rows_applied,
            "blocks_applied": self.blocks_applied,
            "pending_rows": self._pending_rows,
            "n_outliers": self.n_outliers,
            "n_publishes": self.n_publishes,
            "n_reseeds": self.n_reseeds,
            "last_wal_seq": self.last_wal_seq,
            "initialized": self.is_initialized,
            "parallel": self.parallel,
            "n_engines": self.spec.n_engines,
            "runtime": self.spec.runtime,
        }


class TenantState:
    """Everything the service keeps per tenant."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.model = TenantModel(spec)
        self.queue = IngestQueue(spec.queue_capacity_rows)
        self.valve = LoadShedValve(
            spec.max_rate_hz,
            burst_s=spec.burst_s,
            open_for_s=spec.shed_open_for_s,
        )
        self.rows_accepted = 0
        self.rows_shed = 0
        self.rows_rejected_full = 0
        self.n_requests = 0
        #: Set by the pool when this tenant's owning lane died uncleanly;
        #: the next lane to pick the tenant up reseeds the model from the
        #: latest published snapshot before applying anything.
        self.needs_reseed = False
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.spec.name

    def note_accepted(self, n: int) -> None:
        with self._lock:
            self.rows_accepted += n

    def note_shed(self, n: int) -> None:
        with self._lock:
            self.rows_shed += n

    def note_rejected_full(self, n: int) -> None:
        with self._lock:
            self.rows_rejected_full += n

    def publish_now(self, cache, version: int | None = None) -> None:
        """Publish the current model state unconditionally (recovery —
        the first post-restart query must see the replayed rows, not
        just the checkpoint)."""
        self.model.publish(cache, version=version)

    def stats(self) -> dict[str, Any]:
        return {
            "tenant": self.name,
            "rows_accepted": self.rows_accepted,
            "rows_shed": self.rows_shed,
            "rows_rejected_full": self.rows_rejected_full,
            "valve_state": self.valve.state,
            "valve_trips": self.valve.n_trips,
            "queue_depth_rows": self.queue.depth_rows,
            "queue_capacity_rows": self.queue.capacity_rows,
            **self.model.stats(),
        }


class TenantRouter:
    """Rendezvous (highest-random-weight) tenant → lane placement.

    Every tenant scores every live lane with a stable hash; the lane
    with the highest score owns the tenant.  Adding or removing one lane
    moves only the tenants whose top choice changed (~1/n of them) —
    the property that makes elastic scale-up/down cheap.
    """

    @staticmethod
    def _score(tenant: str, lane_id: int) -> int:
        digest = hashlib.blake2b(
            f"{tenant}\x00{lane_id}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def lane_of(self, tenant: str, lane_ids) -> int:
        """The owning lane for ``tenant`` among ``lane_ids``."""
        ids = list(lane_ids)
        if not ids:
            raise ValueError("no live lanes to route to")
        return max(ids, key=lambda lid: self._score(tenant, lid))

    def assignment(
        self, tenants, lane_ids
    ) -> dict[int, list[str]]:
        """Full lane → tenants map for a given lane set."""
        out: dict[int, list[str]] = {int(lid): [] for lid in lane_ids}
        for t in tenants:
            out[self.lane_of(t, lane_ids)].append(t)
        return out
