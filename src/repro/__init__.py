"""repro — robust incremental & parallel streaming PCA.

A full reproduction of *Incremental and Parallel Analytics on
Astrophysical Data Streams* (Mishin, Budavári, Szalay, Ahmad; SC 2012):
the robust streaming PCA algorithm (:mod:`repro.core`), a from-scratch
stream-processing engine standing in for IBM InfoSphere Streams
(:mod:`repro.streams`), the parallel PCA application with data-driven
synchronization (:mod:`repro.parallel`), a discrete-event cluster
simulator for the throughput experiments (:mod:`repro.cluster`), and the
workload generators (:mod:`repro.data`).

Quickstart::

    import numpy as np
    from repro.core import RobustIncrementalPCA
    from repro.data import PlantedSubspaceModel, GrossOutlierInjector

    model = PlantedSubspaceModel(dim=100)
    rng = np.random.default_rng(7)
    inject = GrossOutlierInjector(rate=0.03, amplitude=20.0, rng=rng)

    pca = RobustIncrementalPCA(n_components=5, alpha=0.999)
    for x in inject.wrap(model.stream(5000, rng)):
        pca.update(x)
    print(pca.eigenvalues_)
"""

__version__ = "1.0.0"

from . import cluster, core, data, experiments, io, parallel, serving, streams

__all__ = [
    "cluster",
    "core",
    "data",
    "experiments",
    "io",
    "parallel",
    "serving",
    "streams",
    "__version__",
]
