"""Compiled hot-path kernels with pure-numpy fallbacks.

The streaming hot path spends its time in a handful of numerical
primitives: the rank-``k`` covariance update (weighted block split
``Z``/``R``, residual Gram assembly, the small-eigenproblem rotation),
the per-block rho/weight/wstar evaluations of the three M-scale
families, the block residual norms, and gap patching.  This module
provides each as a numba ``@njit(nogil=True)`` kernel **and** as a pure
numpy fallback, selected once at import time:

``REPRO_JIT=auto`` (default)
    Compile when :mod:`numba` is importable, fall back silently
    otherwise — numba stays an optional dependency
    (``pip install .[jit]``).
``REPRO_JIT=1``
    Require the compiled path; a missing numba produces a loud
    :class:`RuntimeWarning` and the numpy fallback (never a crash).
``REPRO_JIT=0``
    Force the numpy fallback even when numba is installed.

Two properties matter beyond raw speed:

* **nogil** — compiled kernels release the GIL, so
  :class:`~repro.streams.engine.ThreadedEngine` PE threads running
  concurrent PCA updates can overlap on real cores instead of
  serializing on the interpreter lock.
* **parity** — the compiled and fallback paths agree to 1e-10
  (``tests/test_kernels.py``); ``cache=True`` persists compilation
  across processes so only the first call in a fresh environment pays
  the compile latency (seconds; see ``docs/performance.md`` §8).

The heavy kernels are written in a numba-compatible numpy dialect and
used *as the same source* for both paths (interpreted numpy when JIT is
off); the small elementwise kernels keep separate vectorized fallbacks
where the fused loop form and the vectorized form differ.

Runtime switching (benchmarks, tests) goes through :func:`set_jit`;
production code reads the dispatch table exactly once per call via the
thin module-level wrappers.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "jit_enabled",
    "jit_status",
    "set_jit",
    "use_jit",
    "rank_k_core",
    "residual_norm2_block",
    "rho_weights_bisquare",
    "rho_weights_cauchy",
    "rho_weights_skipped",
    "fill_gappy_rows",
]

#: Relative rank tolerance shared with :mod:`repro.core.lowrank`.
_RELATIVE_RANK_TOL = 1e-12

try:  # optional dependency — the fallback path must import cleanly
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
    numba = None
    HAVE_NUMBA = False


def _requested() -> str:
    value = os.environ.get("REPRO_JIT", "auto").strip().lower()
    if value in ("0", "off", "false", "no"):
        return "0"
    if value in ("1", "on", "true", "yes"):
        return "1"
    return "auto"


# ---------------------------------------------------------------------------
# Kernel sources
# ---------------------------------------------------------------------------
#
# Dialect rules (so one source serves both the compiled and interpreted
# paths): no einsum, no ``clip(..., None)``, no boolean fancy indexing,
# explicit ``ascontiguousarray`` before ``np.dot`` on transposed views,
# loops instead of newaxis broadcasting.


def _rank_k_core_src(basis, lam, yw, gamma, p):
    """Top-``p`` eigensystem of ``gamma·E Λ Eᵀ + Yw Ywᵀ`` (main path).

    ``basis`` is ``(d, m)`` with ``m >= 1`` orthonormal columns,
    ``lam`` the ``(m,)`` non-negative eigenvalues, ``yw`` the ``(d, k)``
    weighted block with ``k >= 1`` columns, ``gamma > 0``.  Callers
    handle the degenerate cases (empty basis, zero gamma, empty block)
    before dispatching here — see :func:`repro.core.lowrank.rank_k_update`.
    """
    d = basis.shape[0]
    m = basis.shape[1]
    k = yw.shape[1]

    # Weighted block split: in-basis coordinates and residual.
    bt = np.ascontiguousarray(basis.T)
    z = np.dot(bt, yw)                 # (m, k)
    r = yw - np.dot(basis, z)          # (d, k)

    # Residual subspace via the small Gram eigenproblem.
    rt = np.ascontiguousarray(r.T)
    gram_r = np.dot(rt, r)             # (k, k)
    w_asc, v_asc = np.linalg.eigh(gram_r)
    w = w_asc[::-1].copy()
    v = np.ascontiguousarray(v_asc[:, ::-1])
    for i in range(k):
        if w[i] < 0.0:
            w[i] = 0.0

    # Residual rank cut relative to the update's overall energy scale.
    ref = w[0]
    glam0 = gamma * lam[0]
    if glam0 > ref:
        ref = glam0
    q_rank = 0
    if ref > 0.0:
        for i in range(k):
            if w[i] > ref * _RELATIVE_RANK_TOL:
                q_rank += 1

    zt = np.ascontiguousarray(z.T)
    zzt = np.dot(z, zt)                # (m, m)
    if q_rank == 0:
        # Block is (numerically) inside the current subspace.
        n_aug = m
        small = np.empty((m, m))
        for i in range(m):
            for j in range(m):
                small[i, j] = zzt[i, j]
            small[i, i] += gamma * lam[i]
        aug = basis
    else:
        wq = w[:q_rank].copy()
        vq = np.ascontiguousarray(v[:, :q_rank])
        sq = np.sqrt(wq)
        # Orthonormal augmentation Q = R V W^{-1/2}.
        q_cols = np.dot(r, vq)         # (d, q)
        for j in range(q_rank):
            inv = 1.0 / sq[j]
            for i in range(d):
                q_cols[i, j] *= inv
        # Z Sᵀ with R = Q S, S = sqrt(wq)·Vqᵀ  →  (Z Vq) scaled per column.
        zs = np.dot(z, vq)             # (m, q)
        for j in range(q_rank):
            for i in range(m):
                zs[i, j] *= sq[j]
        n_aug = m + q_rank
        small = np.empty((n_aug, n_aug))
        for i in range(m):
            for j in range(m):
                small[i, j] = zzt[i, j]
            small[i, i] += gamma * lam[i]
        for i in range(m):
            for j in range(q_rank):
                small[i, m + j] = zs[i, j]
                small[m + j, i] = zs[i, j]
        for i in range(q_rank):
            for j in range(q_rank):
                small[m + i, m + j] = 0.0
            small[m + i, m + i] = wq[i]    # S Sᵀ is diagonal
        aug = np.empty((d, n_aug))
        for i in range(d):
            for j in range(m):
                aug[i, j] = basis[i, j]
            for j in range(q_rank):
                aug[i, m + j] = q_cols[i, j]

    ew_asc, ev_asc = np.linalg.eigh(small)
    ew = ew_asc[::-1].copy()
    ev = np.ascontiguousarray(ev_asc[:, ::-1])
    for i in range(n_aug):
        if ew[i] < 0.0:
            ew[i] = 0.0
    keep = 0
    if ew[0] > 0.0:
        for i in range(n_aug):
            if ew[i] > ew[0] * _RELATIVE_RANK_TOL:
                keep += 1
    k_out = p if p < keep else keep
    if k_out == 0:
        return np.zeros((d, 0)), np.zeros(0)
    e_new = np.dot(aug, np.ascontiguousarray(ev[:, :k_out]))
    # Defensive re-orthonormalization, mirroring eigensystem_of_factor.
    q_mat, _ = np.linalg.qr(e_new)
    return q_mat, ew[:k_out].copy()


def _rank_k_core_np(basis, lam, yw, gamma, p):
    """Vectorized numpy fallback of :func:`_rank_k_core_src`.

    Same algebra, expressed with BLAS-level operations: the jit source's
    per-element loops are free once compiled but cost O(d·k) interpreter
    iterations when numba is absent, which would erase the block-update
    speedup the fallback exists to preserve.
    """
    d = basis.shape[0]
    m = basis.shape[1]
    z = basis.T @ yw                   # (m, k)
    r = yw - basis @ z                 # (d, k)
    gram_r = r.T @ r                   # (k, k)
    w_asc, v_asc = np.linalg.eigh(gram_r)
    w = np.maximum(w_asc[::-1], 0.0)
    v = v_asc[:, ::-1]

    ref = max(w[0], gamma * lam[0])
    q_rank = 0
    if ref > 0.0:
        q_rank = int(np.count_nonzero(w > ref * _RELATIVE_RANK_TOL))

    zzt = z @ z.T                      # (m, m)
    if q_rank == 0:
        small = zzt + np.diag(gamma * lam)
        aug = basis
    else:
        wq = w[:q_rank]
        vq = v[:, :q_rank]
        sq = np.sqrt(wq)
        q_cols = (r @ vq) / sq         # (d, q), orthonormal
        zs = (z @ vq) * sq             # (m, q)
        n_aug = m + q_rank
        small = np.zeros((n_aug, n_aug))
        small[:m, :m] = zzt + np.diag(gamma * lam)
        small[:m, m:] = zs
        small[m:, :m] = zs.T
        small[m:, m:] = np.diag(wq)
        aug = np.concatenate((basis, q_cols), axis=1)

    ew_asc, ev_asc = np.linalg.eigh(small)
    ew = np.maximum(ew_asc[::-1], 0.0)
    ev = ev_asc[:, ::-1]
    keep = 0
    if ew[0] > 0.0:
        keep = int(np.count_nonzero(ew > ew[0] * _RELATIVE_RANK_TOL))
    k_out = min(p, keep)
    if k_out == 0:
        return np.zeros((d, 0)), np.zeros(0)
    e_new = aug @ ev[:, :k_out]
    q_mat, _ = np.linalg.qr(e_new)
    return q_mat, ew[:k_out].copy()


def _residual_norm2_block_src(y, basis):
    """Squared residual norms of rows of ``y`` against ``basis``.

    One fused pass: reconstruction plus per-row accumulation, no
    ``(k, d)`` residual temporary.
    """
    k = y.shape[0]
    d = y.shape[1]
    proj = np.dot(y, basis)            # (k, p)
    bt = np.ascontiguousarray(basis.T)
    recon = np.dot(proj, bt)           # (k, d)
    r2 = np.empty(k)
    for i in range(k):
        acc = 0.0
        for j in range(d):
            diff = y[i, j] - recon[i, j]
            acc += diff * diff
        r2[i] = acc
    return r2


def _residual_norm2_block_np(y, basis):
    proj = y @ basis
    resid = y - proj @ basis.T
    return np.einsum("ij,ij->i", resid, resid)


def _rho_weights_bisquare_src(t, c2):
    """Fused ``(W, W*)`` for the Tukey bisquare family."""
    n = t.shape[0]
    w = np.empty(n)
    wstar = np.empty(n)
    w0 = 3.0 / c2
    for i in range(n):
        z = t[i] / c2
        if z < 1.0:
            u = 1.0 - z
            w[i] = w0 * u * u
        else:
            w[i] = 0.0
        if t[i] < 1e-300:
            wstar[i] = w0
        else:
            zc = z
            if zc > 1.0:
                zc = 1.0
            rho = zc * (3.0 - 3.0 * zc + zc * zc)
            wstar[i] = rho / t[i]
    return w, wstar


def _rho_weights_bisquare_np(t, c2):
    z = t / c2
    w = np.where(z < 1.0, (3.0 / c2) * (1.0 - np.minimum(z, 1.0)) ** 2, 0.0)
    zc = np.clip(z, 0.0, 1.0)
    rho = zc * (3.0 - 3.0 * zc + zc * zc)
    small = t < 1e-300
    wstar = np.where(small, 3.0 / c2, rho / np.where(small, 1.0, t))
    return w, wstar


def _rho_weights_cauchy_src(t, c2):
    """Fused ``(W, W*)`` for the Cauchy family, finite at ``t = inf``.

    ``W* = rho/t = (t/(t+c2))/t`` collapses exactly to ``1/(t+c2)``,
    which is finite and cancellation-free on all of ``[0, inf]``; ``W``
    is evaluated as ``(c2/(t+c2))/(t+c2)`` to avoid the ``(t+c2)²``
    overflow at ``t > ~1e154``.
    """
    n = t.shape[0]
    w = np.empty(n)
    wstar = np.empty(n)
    for i in range(n):
        denom = t[i] + c2
        w[i] = (c2 / denom) / denom
        wstar[i] = 1.0 / denom
    return w, wstar


def _rho_weights_cauchy_np(t, c2):
    denom = t + c2
    w = (c2 / denom) / denom
    wstar = 1.0 / denom
    return w, wstar


def _rho_weights_skipped_src(t, c2):
    """Fused ``(W, W*)`` for the skipped-mean family."""
    n = t.shape[0]
    w = np.empty(n)
    wstar = np.empty(n)
    inv = 1.0 / c2
    for i in range(n):
        if t[i] < c2:
            w[i] = inv
        else:
            w[i] = 0.0
        if t[i] < 1e-300:
            wstar[i] = inv
        else:
            rho = t[i] * inv
            if rho > 1.0:
                rho = 1.0
            wstar[i] = rho / t[i]
    return w, wstar


def _rho_weights_skipped_np(t, c2):
    w = np.where(t < c2, 1.0 / c2, 0.0)
    small = t < 1e-300
    rho = np.minimum(t / c2, 1.0)
    wstar = np.where(small, 1.0 / c2, rho / np.where(small, 1.0, t))
    return w, wstar


def _fill_gappy_rows_src(filled, mask, mean, basis, ridge, rows):
    """Patch the listed gappy rows of ``filled`` in place.

    Per row: masked ridge least squares against ``basis`` (the same
    normal equations as :func:`repro.core.gaps.fill_from_basis`), mean
    fill when nothing is observed or the basis is empty.  Returns the
    per-row patched-entry counts for the listed rows.
    """
    d = filled.shape[1]
    kcomp = basis.shape[1]
    n_filled = np.zeros(rows.shape[0], dtype=np.int64)
    for ri in range(rows.shape[0]):
        i = rows[ri]
        n_obs = 0
        for j in range(d):
            if mask[i, j]:
                n_obs += 1
        n_miss = d - n_obs
        n_filled[ri] = n_miss
        if n_miss == 0:
            continue
        if kcomp == 0 or n_obs == 0:
            for j in range(d):
                if not mask[i, j]:
                    filled[i, j] = mean[j]
            continue
        e_obs = np.empty((n_obs, kcomp))
        y_obs = np.empty(n_obs)
        row = 0
        for j in range(d):
            if mask[i, j]:
                for c in range(kcomp):
                    e_obs[row, c] = basis[j, c]
                y_obs[row] = filled[i, j] - mean[j]
                row += 1
        et = np.ascontiguousarray(e_obs.T)
        gram = np.dot(et, e_obs)
        for c in range(kcomp):
            gram[c, c] += ridge
        z = np.linalg.solve(gram, np.dot(et, y_obs))
        for j in range(d):
            if not mask[i, j]:
                acc = mean[j]
                for c in range(kcomp):
                    acc += basis[j, c] * z[c]
                filled[i, j] = acc
    return n_filled


def _fill_gappy_rows_np(filled, mask, mean, basis, ridge, rows):
    """Vectorized numpy fallback of :func:`_fill_gappy_rows_src`.

    The per-row masked gathers/scatters are boolean fancy indexing —
    outside the jit dialect but far cheaper than element loops when
    interpreted.
    """
    kcomp = basis.shape[1]
    n_filled = np.zeros(rows.shape[0], dtype=np.int64)
    for ri in range(rows.shape[0]):
        i = rows[ri]
        obs = mask[i]
        miss = ~obs
        n_miss = int(np.count_nonzero(miss))
        n_filled[ri] = n_miss
        if n_miss == 0:
            continue
        if kcomp == 0 or n_miss == filled.shape[1]:
            filled[i, miss] = mean[miss]
            continue
        e_obs = basis[obs]
        y_obs = filled[i, obs] - mean[obs]
        gram = e_obs.T @ e_obs
        gram[np.diag_indices(kcomp)] += ridge
        z = np.linalg.solve(gram, e_obs.T @ y_obs)
        filled[i, miss] = mean[miss] + basis[miss] @ z
    return n_filled


# ---------------------------------------------------------------------------
# Dispatch table
# ---------------------------------------------------------------------------

#: Kernel name -> (fallback impl, jit source).  The fallback is pure
#: numpy; the jit source doubles as an interpreted implementation, which
#: is what the parity tests exercise when numba is absent.
_SOURCES = {
    "rank_k_core": (_rank_k_core_np, _rank_k_core_src),
    "residual_norm2_block": (_residual_norm2_block_np, _residual_norm2_block_src),
    "rho_weights_bisquare": (_rho_weights_bisquare_np, _rho_weights_bisquare_src),
    "rho_weights_cauchy": (_rho_weights_cauchy_np, _rho_weights_cauchy_src),
    "rho_weights_skipped": (_rho_weights_skipped_np, _rho_weights_skipped_src),
    "fill_gappy_rows": (_fill_gappy_rows_np, _fill_gappy_rows_src),
}

_compiled: dict[str, object] = {}
_IMPL: dict[str, object] = {}
_jit_on = False


def _compile_all() -> None:
    """JIT-wrap every kernel source (idempotent, lazy import cost only).

    ``cache=True`` persists the compiled machine code on disk, so the
    first-call compile latency is paid once per environment rather than
    once per process; ``nogil=True`` is the point — see the module
    docstring.
    """
    if _compiled or not HAVE_NUMBA:
        return
    for name, (_, src) in _SOURCES.items():
        _compiled[name] = numba.njit(cache=True, nogil=True, fastmath=False)(
            src
        )


def set_jit(enabled: bool) -> bool:
    """Select the compiled (``True``) or numpy (``False``) dispatch.

    Returns the state actually installed: asking for the compiled path
    without numba available falls back to numpy (with a warning), so
    the return value — not the argument — is the truth.
    """
    global _jit_on
    if enabled and not HAVE_NUMBA:
        warnings.warn(
            "REPRO_JIT requested the compiled kernels but numba is not "
            "installed; falling back to the numpy path "
            "(pip install 'repro[jit]' to enable)",
            RuntimeWarning,
            stacklevel=2,
        )
        enabled = False
    if enabled:
        _compile_all()
        for name in _SOURCES:
            _IMPL[name] = _compiled[name]
    else:
        for name, (fallback, _) in _SOURCES.items():
            _IMPL[name] = fallback
    _jit_on = enabled
    return enabled


def jit_enabled() -> bool:
    """Whether the compiled dispatch is currently installed."""
    return _jit_on


def jit_status() -> dict:
    """Machine-readable status for benchmark payloads and diagnostics."""
    return {
        "numba_available": HAVE_NUMBA,
        "enabled": _jit_on,
        "requested": _requested(),
        "numba_version": getattr(numba, "__version__", None)
        if HAVE_NUMBA
        else None,
    }


@contextmanager
def use_jit(enabled: bool):
    """Temporarily force the compiled or fallback dispatch (tests)."""
    previous = _jit_on
    set_jit(enabled)
    try:
        yield
    finally:
        set_jit(previous)


# Import-time selection.
_request = _requested()
if _request == "0":
    set_jit(False)
elif _request == "1":
    set_jit(True)  # warns + falls back when numba is missing
else:
    set_jit(HAVE_NUMBA)


# ---------------------------------------------------------------------------
# Public wrappers (one dict lookup per call; rebindable via set_jit)
# ---------------------------------------------------------------------------


def rank_k_core(basis, lam, yw, gamma, p):
    """Dispatch :func:`_rank_k_core_src` (compiled when JIT is on)."""
    return _IMPL["rank_k_core"](basis, lam, yw, gamma, p)


def residual_norm2_block(y, basis):
    """Per-row squared residual norms ``||y_i - E Eᵀ y_i||²``."""
    return _IMPL["residual_norm2_block"](y, basis)


def rho_weights_bisquare(t, c2):
    """Fused ``(W(t), W*(t))`` arrays for the bisquare family."""
    return _IMPL["rho_weights_bisquare"](t, c2)


def rho_weights_cauchy(t, c2):
    """Fused ``(W(t), W*(t))`` arrays for the Cauchy family."""
    return _IMPL["rho_weights_cauchy"](t, c2)


def rho_weights_skipped(t, c2):
    """Fused ``(W(t), W*(t))`` arrays for the skipped-mean family."""
    return _IMPL["rho_weights_skipped"](t, c2)


def fill_gappy_rows(filled, mask, mean, basis, ridge, rows):
    """Patch the listed gappy rows in place; see the kernel source."""
    return _IMPL["fill_gappy_rows"](filled, mask, mean, basis, ridge, rows)
