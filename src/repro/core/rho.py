"""Bounded :math:`\\rho`-functions for M-scale estimation.

The robust streaming PCA of the paper (Section II-A) replaces the classical
mean-square residual scale by an *M-scale* :math:`\\sigma^2` (Maronna 2005)
that solves

.. math::

    \\frac{1}{N}\\sum_{n=1}^{N} \\rho\\!\\left(\\frac{r_n^2}{\\sigma^2}\\right)
    = \\delta ,

where :math:`\\rho` is a bounded, non-decreasing function scaled so that
:math:`\\rho(0)=0` and :math:`\\rho(\\infty)=1`, and :math:`\\delta` controls
the breakdown point of the estimator.

Two weight functions derived from :math:`\\rho` drive the algorithm:

``weight``
    :math:`W(t) = \\rho'(t)` — the per-observation weight entering the
    weighted mean and weighted covariance (paper eqs. 6–7).
``wstar``
    :math:`W^\\star(t) = \\rho(t)/t` — the weight entering the fixed-point
    re-evaluation of the scale (paper eq. 8), with the continuous limit
    :math:`W^\\star(0) = \\rho'(0)`.

All functions are vectorized over numpy arrays of the *squared, scaled*
residual :math:`t = r^2/\\sigma^2 \\ge 0`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from . import kernels as _kernels

__all__ = [
    "RhoFunction",
    "BisquareRho",
    "CauchyRho",
    "SkippedMeanRho",
    "make_rho",
]


class RhoFunction(abc.ABC):
    """A bounded rho-function of the squared scaled residual ``t = r²/σ²``.

    Subclasses implement :meth:`rho` and :meth:`weight`; :meth:`wstar` has a
    generic implementation with the correct ``t -> 0`` limit.

    All three methods accept scalars or numpy arrays and return values of
    the same shape.  Inputs must be non-negative.
    """

    #: Tuning constant controlling where the function saturates, in units
    #: of the scaled squared residual.  ``t >= c2`` is (close to) fully
    #: rejected for redescending families.
    c2: float

    @abc.abstractmethod
    def rho(self, t: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``rho(t)`` with ``rho(0) = 0`` and ``rho(inf) = 1``."""

    @abc.abstractmethod
    def weight(self, t: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``W(t) = rho'(t)`` (the covariance weight)."""

    @abc.abstractmethod
    def weight_at_zero(self) -> float:
        """The limit ``rho'(0)``, used for ``wstar(0)``."""

    def wstar(self, t: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``W*(t) = rho(t) / t`` with its limit at ``t = 0``.

        Finite everywhere on ``[0, inf]``: boundedness gives
        ``rho(t)/t -> 0`` as ``t -> inf`` (infinite scaled residuals
        arise whenever the M-scale underflows to zero).
        """
        if isinstance(t, float):  # per-tuple hot path (np.float64 included)
            if t < 1e-300:
                return self.weight_at_zero()
            return float(self.rho(t)) / t
        t_arr = np.asarray(t, dtype=np.float64)
        scalar = t_arr.ndim == 0
        t_arr = np.atleast_1d(t_arr)
        out = np.empty_like(t_arr)
        small = t_arr < 1e-300
        out[small] = self.weight_at_zero()
        ts = t_arr[~small]
        out[~small] = np.asarray(self.rho(ts)) / ts
        return float(out[0]) if scalar else out

    def block_weights(self, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused ``(W(t), W*(t))`` over a 1-D block of scaled residuals.

        Dispatches to the family's compiled kernel when one exists (see
        :mod:`repro.core.kernels`); the generic fallback is two
        vectorized passes.  Used by the block update of
        :class:`~repro.core.robust.RobustIncrementalPCA`, where both
        weights are needed for every row.
        """
        arr = np.ascontiguousarray(t, dtype=np.float64)
        kern = self._weights_kernel()
        if kern is None:
            return (
                np.asarray(self.weight(arr)),
                np.asarray(self.wstar(arr)),
            )
        return kern(arr, self.c2)

    def _weights_kernel(self):
        """The fused kernel for this family (``None`` → generic path)."""
        return None

    def rejection_point(self) -> float:
        """Value of ``t`` beyond which ``W(t) = 0`` (``inf`` if none)."""
        return math.inf

    def with_c2(self, c2: float) -> "RhoFunction":
        """Return a copy of this family with a new tuning constant."""
        return type(self)(c2=c2)  # type: ignore[call-arg]


def _validated_t(t: np.ndarray | float) -> tuple[np.ndarray, bool]:
    arr = np.asarray(t, dtype=np.float64)
    scalar = arr.ndim == 0
    return np.atleast_1d(arr), scalar


@dataclass(frozen=True)
class BisquareRho(RhoFunction):
    """Tukey bisquare rho expressed in ``t = r²/σ²``.

    With ``u = r/σ`` the classical biweight is
    ``rho_u(u) = 1 - (1 - (u/c)²)³`` for ``|u| <= c`` and 1 beyond.  In the
    squared variable ``t = u²`` and with ``c2 = c²``:

    .. math::

        \\rho(t) = 1 - (1 - t/c_2)^3 \\quad (t \\le c_2), \\qquad
        \\rho(t) = 1 \\quad (t > c_2).

    This is the redescending family used throughout the paper's lineage
    (Maronna 2005; Budavári et al. 2009): observations with
    ``t >= c2`` receive exactly zero covariance weight, which is what makes
    gross outliers harmless.
    """

    c2: float = 9.0

    def __post_init__(self) -> None:
        if not self.c2 > 0:
            raise ValueError(f"c2 must be positive, got {self.c2}")

    def rho(self, t):
        if isinstance(t, float):
            z = min(max(t / self.c2, 0.0), 1.0)
            # 1 - (1-z)^3 expanded as z(3 - 3z + z²): cancellation-free
            # at z -> 0 (wstar = rho/t needs full precision there).
            return z * (3.0 - 3.0 * z + z * z)
        arr, scalar = _validated_t(t)
        z = np.clip(arr / self.c2, 0.0, 1.0)
        out = z * (3.0 - 3.0 * z + z * z)
        return float(out[0]) if scalar else out

    def weight(self, t):
        if isinstance(t, float):
            z = min(t / self.c2, 1.0)
            u = 1.0 - z
            return (3.0 / self.c2) * u * u
        arr, scalar = _validated_t(t)
        z = arr / self.c2
        out = np.where(z < 1.0, (3.0 / self.c2) * (1.0 - np.minimum(z, 1.0)) ** 2, 0.0)
        return float(out[0]) if scalar else out

    def weight_at_zero(self) -> float:
        return 3.0 / self.c2

    def rejection_point(self) -> float:
        return self.c2

    def _weights_kernel(self):
        return _kernels.rho_weights_bisquare


@dataclass(frozen=True)
class CauchyRho(RhoFunction):
    """Smooth bounded rho ``rho(t) = t / (t + c2)``.

    Never fully rejects an observation (``W(t) > 0`` everywhere) but decays
    as ``1/t²``; useful when a soft down-weighting is preferred over the
    hard redescend of the bisquare.
    """

    c2: float = 4.0

    def __post_init__(self) -> None:
        if not self.c2 > 0:
            raise ValueError(f"c2 must be positive, got {self.c2}")

    def rho(self, t):
        # Two forms of t/(t + c2), split at t = c2: the direct ratio is
        # inf/inf = NaN at t = inf (where the limit is plainly 1), while
        # the complement 1 - c2/(t + c2) loses precision to cancellation
        # for t << c2 (wstar = rho/t needs those digits).  Each form is
        # used only where it is exact.
        if isinstance(t, float):
            if t < self.c2:
                return t / (t + self.c2)
            return 1.0 - self.c2 / (t + self.c2)
        arr, scalar = _validated_t(t)
        denom = arr + self.c2
        lo = np.minimum(arr, self.c2)  # finite in the branch that uses it
        out = np.where(arr < self.c2, lo / denom, 1.0 - self.c2 / denom)
        return float(out[0]) if scalar else out

    def weight(self, t):
        # c2/(t + c2)² evaluated as (c2/(t+c2))/(t+c2): the squared
        # denominator overflows to inf (RuntimeWarning, then weight 0 by
        # accident) once t > ~1e154; the factored form underflows cleanly
        # and is exactly 0.0 at t = inf.
        if isinstance(t, float):
            denom = t + self.c2
            return (self.c2 / denom) / denom
        arr, scalar = _validated_t(t)
        denom = arr + self.c2
        out = (self.c2 / denom) / denom
        return float(out[0]) if scalar else out

    def weight_at_zero(self) -> float:
        return 1.0 / self.c2

    def _weights_kernel(self):
        return _kernels.rho_weights_cauchy


@dataclass(frozen=True)
class SkippedMeanRho(RhoFunction):
    """Hard-rejection rho: ``rho(t) = min(t/c2, 1)``.

    The weight is a step function (``1/c2`` inside the acceptance region,
    ``0`` outside), i.e. observations are either used at full weight or
    skipped entirely.  Cheap and easy to reason about, at the cost of a
    discontinuous influence function.
    """

    c2: float = 9.0

    def __post_init__(self) -> None:
        if not self.c2 > 0:
            raise ValueError(f"c2 must be positive, got {self.c2}")

    def rho(self, t):
        if isinstance(t, float):
            return min(t / self.c2, 1.0)
        arr, scalar = _validated_t(t)
        out = np.minimum(arr / self.c2, 1.0)
        return float(out[0]) if scalar else out

    def weight(self, t):
        if isinstance(t, float):
            return 1.0 / self.c2 if t < self.c2 else 0.0
        arr, scalar = _validated_t(t)
        out = np.where(arr < self.c2, 1.0 / self.c2, 0.0)
        return float(out[0]) if scalar else out

    def weight_at_zero(self) -> float:
        return 1.0 / self.c2

    def rejection_point(self) -> float:
        return self.c2

    def _weights_kernel(self):
        return _kernels.rho_weights_skipped


_FAMILIES: dict[str, type[RhoFunction]] = {
    "bisquare": BisquareRho,
    "cauchy": CauchyRho,
    "skipped": SkippedMeanRho,
}


def make_rho(family: str = "bisquare", c2: float | None = None) -> RhoFunction:
    """Construct a rho-function by family name.

    Parameters
    ----------
    family:
        One of ``"bisquare"`` (default, the paper's choice), ``"cauchy"``,
        ``"skipped"``.
    c2:
        Tuning constant in units of the scaled squared residual; ``None``
        uses the family default.  See :mod:`repro.core.calibration` for
        choosing ``c2`` consistently with a breakdown parameter ``delta``.
    """
    try:
        cls = _FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown rho family {family!r}; choose from {sorted(_FAMILIES)}"
        ) from None
    return cls() if c2 is None else cls(c2=c2)
