"""The streaming eigensystem state.

:class:`Eigensystem` bundles everything a streaming PCA engine carries
between tuples — the location :math:`\\mu`, the truncated eigenbasis
:math:`E_p` and eigenvalues :math:`\\Lambda_p`, the robust scale
:math:`\\sigma^2`, and the exponentially-weighted running sums
:math:`u, v, q` of eqs. 12–14 that define the γ coefficients.  It is the
unit of state shipped between PCA instances during synchronization
(Section III-B) and snapshotted to disk by the checkpoint sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

__all__ = ["Eigensystem"]


@dataclass
class Eigensystem:
    """Truncated eigensystem plus the streaming bookkeeping around it.

    Attributes
    ----------
    mean:
        Location estimate ``µ``, shape ``(d,)``.
    basis:
        Orthonormal eigenvectors ``E``, shape ``(d, k)`` with ``k <= p``
        (``k < p`` transiently while the stream warms up).
    eigenvalues:
        Non-negative eigenvalues ``Λ`` in descending order, shape ``(k,)``.
    scale:
        Robust residual scale ``σ²`` (M-scale of ``r²``); for the classical
        estimator this is the mean squared residual.
    sum_count:
        Running sum ``u = α·u_prev + 1`` (eq. 14) — the effective sample
        size, converging to ``1/(1-α)``.
    sum_weight:
        Running sum ``v = α·v_prev + w`` (eq. 12) of robust weights.
    sum_weighted_r2:
        Running sum ``q = α·q_prev + w·r²`` (eq. 13).
    n_seen:
        Total observations consumed by this engine (unweighted).
    n_since_sync:
        Observations consumed since the last synchronization; the
        data-driven sync gate of Section II-C compares this to ``1.5·N``.
    """

    mean: np.ndarray
    basis: np.ndarray
    eigenvalues: np.ndarray
    scale: float = 1.0
    sum_count: float = 0.0
    sum_weight: float = 0.0
    sum_weighted_r2: float = 0.0
    n_seen: int = 0
    n_since_sync: int = 0

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64)
        self.basis = np.asarray(self.basis, dtype=np.float64)
        self.eigenvalues = np.asarray(self.eigenvalues, dtype=np.float64)
        if self.basis.ndim == 1:
            self.basis = self.basis[:, None]
        self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, dim: int) -> "Eigensystem":
        """A zero-knowledge state: no basis vectors, zero mean, unit scale."""
        return cls(
            mean=np.zeros(dim),
            basis=np.zeros((dim, 0)),
            eigenvalues=np.zeros(0),
        )

    @classmethod
    def from_batch(
        cls, x: np.ndarray, p: int, *, center: bool = True
    ) -> "Eigensystem":
        """Initialize from a small accumulated batch (Section III-C).

        The paper's implementation "accumulates a given number of incoming
        vectors and initializes the eigensystem"; this performs that batch
        solve with a thin SVD of the centered data.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"batch must be 2-D, got shape {x.shape}")
        n, d = x.shape
        if n < 2:
            raise ValueError(f"need at least 2 vectors to initialize, got {n}")
        mean = x.mean(axis=0) if center else np.zeros(d)
        y = x - mean
        # Thin SVD (guide: never full_matrices=True for skinny problems).
        u, s, vt = np.linalg.svd(y, full_matrices=False)
        k = min(p, int(np.sum(s > s[0] * 1e-12)) if s.size else 0)
        basis = vt[:k].T
        eigenvalues = (s[:k] ** 2) / n
        # Residual scale per observation: mean squared residual.
        recon = y @ basis @ basis.T
        r2 = np.sum((y - recon) ** 2, axis=1)
        scale = float(np.mean(r2)) if np.any(r2 > 0) else 1.0
        if scale <= 0.0:
            scale = 1.0
        return cls(
            mean=mean,
            basis=basis,
            eigenvalues=eigenvalues,
            scale=scale,
            sum_count=float(n),
            sum_weight=float(n),
            sum_weighted_r2=float(np.sum(r2)),
            n_seen=n,
            n_since_sync=n,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Ambient dimensionality ``d``."""
        return int(self.mean.shape[0])

    @property
    def n_components(self) -> int:
        """Current number of retained eigenpairs ``k``."""
        return int(self.basis.shape[1])

    @property
    def effective_sample_size(self) -> float:
        """The exponentially-weighted count ``u`` (→ ``1/(1-α)``)."""
        return self.sum_count

    def validate(self) -> None:
        """Raise ``ValueError`` if the state is structurally inconsistent."""
        if self.mean.ndim != 1:
            raise ValueError(f"mean must be 1-D, got shape {self.mean.shape}")
        d = self.mean.shape[0]
        if self.basis.shape[0] != d:
            raise ValueError(
                f"basis rows {self.basis.shape[0]} != dimension {d}"
            )
        if self.eigenvalues.shape != (self.basis.shape[1],):
            raise ValueError(
                f"eigenvalues shape {self.eigenvalues.shape} does not match "
                f"basis with {self.basis.shape[1]} columns"
            )
        if np.any(self.eigenvalues < -1e-9):
            raise ValueError("eigenvalues must be non-negative")
        if not np.isfinite(self.scale) or self.scale < 0:
            raise ValueError(f"scale must be finite and >= 0, got {self.scale}")

    def orthonormality_error(self) -> float:
        """``max |EᵀE - I|`` — a health metric checked by tests and sync."""
        if self.n_components == 0:
            return 0.0
        g = self.basis.T @ self.basis
        return float(np.max(np.abs(g - np.eye(self.n_components))))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def center(self, x: np.ndarray) -> np.ndarray:
        """``y = x - µ`` (works for single vectors and ``(n, d)`` blocks)."""
        return np.asarray(x, dtype=np.float64) - self.mean

    def project(self, y: np.ndarray) -> np.ndarray:
        """Expansion coefficients ``Eᵀy`` of centered data on the basis."""
        return np.asarray(y, dtype=np.float64) @ self.basis

    def reconstruct(self, y: np.ndarray) -> np.ndarray:
        """Projection ``E Eᵀ y`` of centered data onto the PCA hyperplane."""
        return self.project(y) @ self.basis.T

    def residual(self, y: np.ndarray) -> np.ndarray:
        """Residual ``(I - E Eᵀ) y`` of the hyperplane fit (paper eq. 4)."""
        return np.asarray(y, dtype=np.float64) - self.reconstruct(y)

    def residual_norm2(self, y: np.ndarray) -> float | np.ndarray:
        """Squared residual norm ``r²``; vectorized over leading axis."""
        r = self.residual(y)
        return np.sum(r * r, axis=-1)

    def covariance(self) -> np.ndarray:
        """Dense ``E Λ Eᵀ`` reconstruction.

        **Test/analysis only** — this materializes a ``d × d`` matrix and is
        deliberately never called from the streaming path.
        """
        return (self.basis * self.eigenvalues) @ self.basis.T

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def copy(self) -> "Eigensystem":
        """Deep copy (fresh arrays), e.g. for shipping state during sync."""
        return replace(
            self,
            mean=self.mean.copy(),
            basis=self.basis.copy(),
            eigenvalues=self.eigenvalues.copy(),
        )

    def mark_synced(self) -> None:
        """Reset the since-sync counter after a completed synchronization."""
        self.n_since_sync = 0

    # ------------------------------------------------------------------
    # Serialization (checkpoints, network tuples)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form with list payloads (JSON-friendly)."""
        return {
            "mean": self.mean.tolist(),
            "basis": self.basis.tolist(),
            "eigenvalues": self.eigenvalues.tolist(),
            "scale": float(self.scale),
            "sum_count": float(self.sum_count),
            "sum_weight": float(self.sum_weight),
            "sum_weighted_r2": float(self.sum_weighted_r2),
            "n_seen": int(self.n_seen),
            "n_since_sync": int(self.n_since_sync),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Eigensystem":
        """Inverse of :meth:`to_dict`."""
        return cls(
            mean=np.asarray(payload["mean"], dtype=np.float64),
            basis=np.asarray(payload["basis"], dtype=np.float64).reshape(
                len(payload["mean"]), -1
            ),
            eigenvalues=np.asarray(payload["eigenvalues"], dtype=np.float64),
            scale=float(payload["scale"]),
            sum_count=float(payload["sum_count"]),
            sum_weight=float(payload["sum_weight"]),
            sum_weighted_r2=float(payload["sum_weighted_r2"]),
            n_seen=int(payload["n_seen"]),
            n_since_sync=int(payload["n_since_sync"]),
        )

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        if not isinstance(other, Eigensystem):
            return NotImplemented
        return (
            np.array_equal(self.mean, other.mean)
            and np.array_equal(self.basis, other.basis)
            and np.array_equal(self.eigenvalues, other.eigenvalues)
            and self.scale == other.scale
            and self.sum_count == other.sum_count
            and self.sum_weight == other.sum_weight
            and self.sum_weighted_r2 == other.sum_weighted_r2
            and self.n_seen == other.n_seen
            and self.n_since_sync == other.n_since_sync
        )
