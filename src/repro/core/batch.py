"""Offline batch PCA baselines.

Two reference estimators used throughout the tests and experiments to
measure what the streaming algorithms converge *to*:

* :class:`BatchPCA` — the classical thin-SVD solution.
* :class:`BatchRobustPCA` — Maronna's (2005) iterative M-scale PCA: the
  fixed point that the paper's streaming recursions (eqs. 9–14) approximate
  online.  Solved by alternating (i) the σ² fixed-point re-evaluation of
  eq. 8, (ii) the weighted location/covariance of eqs. 6–7, and (iii) a
  truncated eigensolve — performed as a thin SVD of the *weight-scaled*
  data matrix, so no ``d × d`` covariance is ever materialized even in the
  batch path (HPC guide: prefer skinny factorizations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .calibration import calibrate_c2
from .eigensystem import Eigensystem
from .rho import RhoFunction, make_rho

__all__ = ["BatchPCA", "BatchRobustPCA", "mscale_fixed_point"]


def _as_matrix(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D data matrix, got shape {x.shape}")
    if not np.all(np.isfinite(x)):
        raise ValueError(
            "batch estimators require complete data; patch gaps first "
            "(see repro.core.gaps)"
        )
    return x


@dataclass
class BatchPCA:
    """Classical PCA via thin SVD of the centered data matrix.

    Attributes after :meth:`fit`: ``mean_`` (d,), ``components_`` (p, d)
    rows = eigenvectors, ``eigenvalues_`` (p,) sample-covariance
    eigenvalues, ``scale_`` mean squared residual.
    """

    n_components: int
    mean_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    components_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    eigenvalues_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    scale_: float = 0.0

    def fit(self, x: np.ndarray) -> "BatchPCA":
        x = _as_matrix(x)
        n, d = x.shape
        p = min(self.n_components, min(n, d))
        self.mean_ = x.mean(axis=0)
        y = x - self.mean_
        _, s, vt = np.linalg.svd(y, full_matrices=False)
        self.components_ = vt[:p]
        self.eigenvalues_ = (s[:p] ** 2) / n
        recon = (y @ self.components_.T) @ self.components_
        self.scale_ = float(np.mean(np.sum((y - recon) ** 2, axis=1)))
        return self

    def to_eigensystem(self) -> Eigensystem:
        """Package the fit as a streaming-compatible state."""
        return Eigensystem(
            mean=self.mean_,
            basis=self.components_.T,
            eigenvalues=self.eigenvalues_,
            scale=max(self.scale_, 1e-12),
        )


def mscale_fixed_point(
    r2: np.ndarray,
    rho: RhoFunction,
    delta: float,
    *,
    sigma2_init: float | None = None,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> float:
    """Solve the M-scale equation ``mean(rho(r²/σ²)) = δ`` for ``σ²``.

    Uses the re-weighting iteration of paper eq. 8,

    .. math::

        \\sigma^2 \\leftarrow \\frac{1}{N\\delta}
            \\sum_n W^\\star(r_n^2/\\sigma^2)\\, r_n^2 ,

    which is globally convergent for bounded non-decreasing ρ.
    """
    r2 = np.asarray(r2, dtype=np.float64)
    if r2.ndim != 1 or r2.size == 0:
        raise ValueError("r2 must be a non-empty 1-D array")
    if np.any(r2 < 0):
        raise ValueError("squared residuals must be non-negative")
    if not np.any(r2 > 0):
        return 0.0
    sigma2 = float(sigma2_init) if sigma2_init else float(np.median(r2[r2 > 0]))
    if sigma2 <= 0:
        sigma2 = float(np.mean(r2))
    inv_ndelta = 1.0 / (r2.size * delta)
    for _ in range(max_iter):
        t = r2 / sigma2
        new = inv_ndelta * float(np.sum(rho.wstar(t) * r2))
        if new <= 0:
            return 0.0
        if abs(new - sigma2) <= tol * max(sigma2, 1e-300):
            return new
        sigma2 = new
    return sigma2


@dataclass
class BatchRobustPCA:
    """Maronna's iterative robust PCA (the offline reference fixed point).

    Parameters
    ----------
    n_components:
        Number of eigenpairs ``p``.
    delta:
        Breakdown parameter of the M-scale.
    rho_family:
        Rho family name; the tuning constant is calibrated for
        ``dof = d - p`` unless ``rho`` is supplied directly.
    max_iter / tol:
        Outer-loop controls; convergence is declared when the projector
        ``E Eᵀ`` moves less than ``tol`` in Frobenius-like norm (computed
        low-rank) between iterations.
    """

    n_components: int
    delta: float = 0.5
    rho_family: str = "bisquare"
    rho: RhoFunction | None = None
    max_iter: int = 100
    tol: float = 1e-8

    mean_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    components_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    eigenvalues_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    scale_: float = 0.0
    weights_: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    rho_: RhoFunction = field(default=None, repr=False)  # type: ignore[assignment]
    n_iter_: int = 0
    converged_: bool = False

    def fit(self, x: np.ndarray) -> "BatchRobustPCA":
        x = _as_matrix(x)
        n, d = x.shape
        p = min(self.n_components, min(n, d))
        rho = self.rho or make_rho(
            self.rho_family, c2=calibrate_c2(self.delta, max(d - p, 1),
                                             self.rho_family)
        )
        self.rho_ = rho

        # Non-robust start (the paper's streaming variant does the same).
        start = BatchPCA(p).fit(x)
        mean = start.mean_
        basis = start.components_.T  # (d, p)
        sigma2 = max(start.scale_, 1e-12)

        for it in range(1, self.max_iter + 1):
            y = x - mean
            resid = y - (y @ basis) @ basis.T
            r2 = np.sum(resid * resid, axis=1)
            sigma2 = mscale_fixed_point(r2, rho, self.delta,
                                        sigma2_init=sigma2)
            if sigma2 <= 0:
                # Degenerate: data lies exactly on a p-plane; weights all max.
                w = np.full(n, rho.weight_at_zero())
            else:
                w = np.asarray(rho.weight(r2 / sigma2))
            wsum = float(np.sum(w))
            if wsum <= 0:
                raise RuntimeError(
                    "all observations rejected; delta/rho mis-calibrated"
                )
            mean = (w @ x) / wsum
            y = x - mean
            # Weighted covariance C = σ² Σ w yyᵀ / Σ w r²  — top-p via thin
            # SVD of the weight-scaled data matrix (no d×d build).
            wr2 = float(np.sum(w * r2))
            yw = y * np.sqrt(w)[:, None]
            _, s, vt = np.linalg.svd(yw, full_matrices=False)
            new_basis = vt[:p].T
            denom = wr2 if wr2 > 0 else 1.0
            eigenvalues = sigma2 * (s[:p] ** 2) / denom

            # Projector movement, computed without forming d×d matrices:
            # |E₁E₁ᵀ - E₂E₂ᵀ|_F² = 2p - 2|E₁ᵀE₂|_F².
            cross = basis.T @ new_basis
            drift = 2.0 * p - 2.0 * float(np.sum(cross * cross))
            basis = new_basis
            self.n_iter_ = it
            if drift < self.tol:
                self.converged_ = True
                break

        self.mean_ = mean
        self.components_ = basis.T
        self.eigenvalues_ = eigenvalues
        self.scale_ = sigma2
        y = x - mean
        resid = y - (y @ basis) @ basis.T
        r2 = np.sum(resid * resid, axis=1)
        self.weights_ = (
            np.asarray(rho.weight(r2 / sigma2))
            if sigma2 > 0
            else np.full(n, rho.weight_at_zero())
        )
        return self

    def to_eigensystem(self) -> Eigensystem:
        """Package the fit as a streaming-compatible state."""
        return Eigensystem(
            mean=self.mean_,
            basis=self.components_.T,
            eigenvalues=self.eigenvalues_,
            scale=max(self.scale_, 1e-12),
        )
