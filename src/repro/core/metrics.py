"""Convergence and comparison metrics used by every experiment.

The paper's evidence is visual (eigenvalue traces in Fig. 1, eigenspectra
snapshots in Figs. 4–5); these helpers turn those visuals into numbers the
test suite and benchmark harness can assert on: principal angles between
subspaces, roughness of eigenspectra ("the smoothness of these curves is a
sign of robustness"), and per-step trace recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .eigensystem import Eigensystem
from .incremental import UpdateResult

__all__ = [
    "principal_angles",
    "largest_principal_angle",
    "subspace_distance",
    "align_signs",
    "roughness",
    "explained_variance_ratio",
    "TraceRecorder",
    "ConvergenceReport",
]


def _orthonormal_basis(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"basis must be 2-D, got shape {a.shape}")
    q, _ = np.linalg.qr(a)
    return q


def principal_angles(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Principal angles (radians, ascending) between ``span(a)``/``span(b)``.

    Inputs are ``(d, k)`` matrices whose columns span the subspaces; they
    are orthonormalized internally, so raw (even rank-deficient-ish) bases
    are fine.  Returns ``min(k_a, k_b)`` angles in ``[0, π/2]``.
    """
    qa, qb = _orthonormal_basis(a), _orthonormal_basis(b)
    if qa.shape[1] == 0 or qb.shape[1] == 0:
        return np.zeros(0)
    s = np.linalg.svd(qa.T @ qb, compute_uv=False)
    return np.arccos(np.clip(s, -1.0, 1.0))[::-1][: min(qa.shape[1], qb.shape[1])][::-1]


def largest_principal_angle(a: np.ndarray, b: np.ndarray) -> float:
    """The largest principal angle — 0 iff one subspace contains the other."""
    ang = principal_angles(a, b)
    return float(ang.max()) if ang.size else 0.0


def subspace_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``sin`` of the largest principal angle (the projector 2-norm gap)."""
    return float(np.sin(largest_principal_angle(a, b)))


def align_signs(basis: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Flip column signs of ``basis`` to best match ``reference``.

    Eigenvectors are defined up to sign; plots and column-wise comparisons
    need a consistent orientation.  Returns a sign-adjusted copy.
    """
    basis = np.asarray(basis, dtype=np.float64).copy()
    reference = np.asarray(reference, dtype=np.float64)
    k = min(basis.shape[1], reference.shape[1])
    for j in range(k):
        if basis[:, j] @ reference[:, j] < 0:
            basis[:, j] = -basis[:, j]
    return basis


def roughness(spectrum: np.ndarray) -> float:
    """Mean squared second difference, normalized by the signal power.

    Low values = smooth curves.  Figs. 4–5 argue that smooth eigenspectra
    indicate a converged, physical solution ("PCA has no notion of where
    the pixels are relative to each other"), so roughness decreasing with
    the number of processed spectra is our quantitative Fig. 4→5 check.
    """
    s = np.asarray(spectrum, dtype=np.float64)
    if s.ndim != 1 or s.size < 3:
        raise ValueError("spectrum must be 1-D with at least 3 samples")
    d2 = np.diff(s, n=2)
    power = float(np.mean(s * s))
    if power <= 0:
        return 0.0
    return float(np.mean(d2 * d2)) / power


def explained_variance_ratio(
    eigenvalues: np.ndarray, total_variance: float
) -> np.ndarray:
    """Fraction of total variance captured by each eigenvalue."""
    lam = np.asarray(eigenvalues, dtype=np.float64)
    if total_variance <= 0:
        raise ValueError(f"total variance must be positive, got {total_variance}")
    return lam / total_variance


@dataclass
class TraceRecorder:
    """Per-step capture of the quantities plotted in Fig. 1.

    Call :meth:`record` after each ``update``; the recorder stores the
    eigenvalue vector, the robust weight, the scaled residual ``t``, the
    outlier flag, and the scale.  ``every`` thins the eigenvalue trace
    (weights/flags are always kept) to bound memory on long streams.
    """

    every: int = 1
    steps: list[int] = field(default_factory=list)
    eigenvalues: list[np.ndarray] = field(default_factory=list)
    scales: list[float] = field(default_factory=list)
    weights: list[float] = field(default_factory=list)
    scaled_residuals: list[float] = field(default_factory=list)
    outlier_steps: list[int] = field(default_factory=list)
    _step: int = 0

    def record(
        self, state: Eigensystem, result: UpdateResult | None
    ) -> None:
        """Record one step (pass ``result=None`` during warm-up)."""
        self._step += 1
        if result is None:
            return
        self.weights.append(result.weight)
        self.scaled_residuals.append(result.scaled_residual)
        if result.is_outlier:
            self.outlier_steps.append(self._step)
        if self._step % self.every == 0:
            self.steps.append(self._step)
            self.eigenvalues.append(state.eigenvalues.copy())
            self.scales.append(state.scale)

    def eigenvalue_matrix(self) -> np.ndarray:
        """Trace as an ``(n_records, p)`` array (ragged warm-up rows padded
        with NaN on the right while fewer components existed)."""
        if not self.eigenvalues:
            return np.zeros((0, 0))
        p = max(e.size for e in self.eigenvalues)
        out = np.full((len(self.eigenvalues), p), np.nan)
        for i, e in enumerate(self.eigenvalues):
            out[i, : e.size] = e
        return out

    def tail_dispersion(self, fraction: float = 0.25) -> np.ndarray:
        """Relative eigenvalue dispersion over the trailing ``fraction`` of
        the trace — the quantitative form of "the eigenvalue plot has
        converged": small for the robust run, large for the classical run
        under contamination."""
        mat = self.eigenvalue_matrix()
        if mat.shape[0] == 0:
            return np.zeros(0)
        n_tail = max(2, int(mat.shape[0] * fraction))
        tail = mat[-n_tail:]
        mean = np.nanmean(tail, axis=0)
        std = np.nanstd(tail, axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            rel = np.where(mean > 0, std / mean, np.inf)
        return rel


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary comparing a streaming fit against a reference basis."""

    largest_angle: float
    mean_angle: float
    eigenvalue_rel_error: np.ndarray
    roughness_per_component: np.ndarray

    @classmethod
    def compare(
        cls,
        state: Eigensystem,
        reference_basis: np.ndarray,
        reference_eigenvalues: np.ndarray | None = None,
    ) -> "ConvergenceReport":
        angles = principal_angles(state.basis, reference_basis)
        if reference_eigenvalues is not None:
            k = min(state.eigenvalues.size, len(reference_eigenvalues))
            ref = np.asarray(reference_eigenvalues, dtype=np.float64)[:k]
            with np.errstate(invalid="ignore", divide="ignore"):
                rel = np.abs(state.eigenvalues[:k] - ref) / np.where(
                    ref > 0, ref, np.nan
                )
        else:
            rel = np.zeros(0)
        rough = np.array(
            [roughness(state.basis[:, j]) for j in range(state.n_components)]
        )
        return cls(
            largest_angle=float(angles.max()) if angles.size else 0.0,
            mean_angle=float(angles.mean()) if angles.size else 0.0,
            eigenvalue_rel_error=rel,
            roughness_per_component=rough,
        )
