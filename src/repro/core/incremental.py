"""Classical (non-robust) incremental PCA — the Fig. 1 baseline.

Implements the covariance recursion of paper eq. 1,

.. math::

    C \\approx \\gamma E_p \\Lambda_p E_p^T + (1-\\gamma)\\, y y^T = A A^T ,

with the factor columns of eqs. 2–3 and the SVD of the skinny ``A``
(delegated to :mod:`repro.core.lowrank`).  With forgetting factor
``alpha = 1`` the weights reduce to the classical ``γ = n/(n+1)`` running
average (infinite memory); ``alpha < 1`` gives the exponentially-weighted
sliding window of Section II-B.

Two execution paths share the same recursion:

* :meth:`IncrementalPCA.update` — one observation, one rank-one
  eigensolve (:func:`repro.core.lowrank.rank_one_update`);
* :meth:`IncrementalPCA.update_block` — a ``(k, d)`` block, one rank-``k``
  eigensolve (:func:`repro.core.lowrank.rank_k_update`).  The per-row
  γ-weights of the sequential recursion are unrolled in closed form, so
  the block path is **algebraically identical** to ``k`` sequential
  updates whenever no rank is lost to the per-step truncation (always
  true when the data rank is ≤ ``n_components``); see
  ``docs/performance.md`` for the full equivalence contract.

This estimator treats every observation at full weight, which is exactly
why it fails under contamination: each gross outlier "takes over the top
eigenvector creating a rainbow effect" (Fig. 1, left).  The robust variant
lives in :mod:`repro.core.robust`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from . import kernels as _kernels
from .eigensystem import Eigensystem
from .exceptions import NotFittedError
from .lowrank import rank_k_update, rank_one_update

__all__ = ["UpdateResult", "BlockUpdateResult", "IncrementalPCA"]

#: Bound on the scan exponent ``alpha^{-(k-1)}`` used by the exact
#: per-row mean unrolling: chunks are sized so the rescaled cumulative
#: sums stay far from float64 overflow.
_MAX_SCAN_EXPONENT = 60.0

#: Hard cap on rows per rank-``k`` eigensolve.  Two forces pick this:
#: per-chunk fixed costs amortize as ``1/k``, but the residual Gram and
#: augmented-basis work grow as ``O(d·k)`` *per row* (the noisy residual
#: block has rank ≈ ``k``), so throughput peaks at a moderate ``k`` —
#: measured flat-optimal near 64 for d in [250, 4000].  Bounding the
#: block also keeps the block-start basis (used for residual
#: diagnostics and the scale recursion) fresh when a caller hands
#: ``partial_fit`` an entire dataset at once.
_MAX_BLOCK_ROWS = 64


@dataclass(frozen=True)
class UpdateResult:
    """Per-observation diagnostics returned by ``update``.

    Attributes
    ----------
    weight:
        Robust covariance weight given to the observation (always 1.0 for
        the classical estimator).
    scaled_residual:
        ``t = r²/σ²`` — the squared residual in units of the current scale.
    residual_norm2:
        Raw squared residual norm ``r²`` of the hyperplane fit.
    is_outlier:
        Whether the observation was flagged (never, classically).
    n_filled:
        Number of missing entries that were gap-filled before the update.
    """

    weight: float
    scaled_residual: float
    residual_norm2: float
    is_outlier: bool = False
    n_filled: int = 0


@dataclass(frozen=True)
class BlockUpdateResult:
    """Per-block diagnostics returned by ``update_block``.

    The vectorized counterpart of :class:`UpdateResult`: one entry per
    *processed* post-initialization row, in arrival order.  Rows consumed
    by warm-up buffering or skipped (too gappy) are counted but carry no
    per-row entry.

    Attributes
    ----------
    weights:
        Robust covariance weights, shape ``(n_processed,)`` (all ones
        classically).
    scaled_residuals:
        ``t_i = r_i²/σ²`` against the block-start scale.
    residual_norm2:
        Raw squared residuals ``r_i²`` against the block-start basis.
    is_outlier:
        Per-row outlier flags (all ``False`` classically).
    n_processed:
        Rows that went through the block update.
    n_buffered:
        Rows consumed by warm-up buffering (before initialization).
    n_skipped:
        Rows skipped outright (e.g. too few observed entries).
    n_filled:
        Total missing entries gap-filled across the block.
    indices:
        For each processed row, its position within the block passed to
        ``update_block`` — maps diagnostics back to source rows even
        when warm-up buffering or skips make the mapping non-trivial.
    """

    weights: np.ndarray
    scaled_residuals: np.ndarray
    residual_norm2: np.ndarray
    is_outlier: np.ndarray
    n_processed: int
    n_buffered: int = 0
    n_skipped: int = 0
    n_filled: int = 0
    indices: np.ndarray | None = None

    @property
    def n_outliers(self) -> int:
        """Number of processed rows flagged as outliers."""
        return int(np.count_nonzero(self.is_outlier))

    @staticmethod
    def empty(n_buffered: int = 0, n_skipped: int = 0) -> "BlockUpdateResult":
        """A result covering no processed rows (warm-up-only blocks)."""
        return BlockUpdateResult(
            weights=np.zeros(0),
            scaled_residuals=np.zeros(0),
            residual_norm2=np.zeros(0),
            is_outlier=np.zeros(0, dtype=bool),
            n_processed=0,
            n_buffered=n_buffered,
            n_skipped=n_skipped,
            indices=np.zeros(0, dtype=np.int64),
        )

    @staticmethod
    def concat(parts: "list[BlockUpdateResult]") -> "BlockUpdateResult":
        """Merge chunked results into one block-level result.

        ``indices`` are concatenated as-is — callers offset them to block
        coordinates before concatenation.
        """
        if not parts:
            return BlockUpdateResult.empty()
        if len(parts) == 1:
            return parts[0]
        indices = None
        if all(p.indices is not None for p in parts):
            indices = np.concatenate([p.indices for p in parts])
        return BlockUpdateResult(
            weights=np.concatenate([p.weights for p in parts]),
            scaled_residuals=np.concatenate(
                [p.scaled_residuals for p in parts]
            ),
            residual_norm2=np.concatenate([p.residual_norm2 for p in parts]),
            is_outlier=np.concatenate([p.is_outlier for p in parts]),
            n_processed=sum(p.n_processed for p in parts),
            n_buffered=sum(p.n_buffered for p in parts),
            n_skipped=sum(p.n_skipped for p in parts),
            n_filled=sum(p.n_filled for p in parts),
            indices=indices,
        )


class _WarmupBuffer:
    """Preallocated ``(init_size, d)`` warm-up accumulator.

    Replaces the old per-row ``list.append(x.copy())`` pattern: the
    array is allocated once (lazily, when the first row reveals ``d``)
    and rows are written in place — no per-row allocation, and the batch
    solve reads a contiguous view instead of re-stacking a Python list.
    """

    __slots__ = ("capacity", "_rows", "count")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._rows: np.ndarray | None = None
        self.count = 0

    def append(self, x: np.ndarray) -> None:
        if self._rows is None:
            self._rows = np.empty((self.capacity, x.shape[0]))
        elif x.shape[0] != self._rows.shape[1]:
            raise ValueError(
                f"expected vector of dim {self._rows.shape[1]}, "
                f"got {x.shape}"
            )
        self._rows[self.count] = x
        self.count += 1

    def extend(self, block: np.ndarray) -> int:
        """Copy as many leading rows of ``block`` as fit; return how many."""
        take = min(self.capacity - self.count, block.shape[0])
        if take <= 0:
            return 0
        if self._rows is None:
            self._rows = np.empty((self.capacity, block.shape[1]))
        elif block.shape[1] != self._rows.shape[1]:
            raise ValueError(
                f"expected vectors of dim {self._rows.shape[1]}, "
                f"got dim {block.shape[1]}"
            )
        self._rows[self.count : self.count + take] = block[:take]
        self.count += take
        return take

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    def view(self) -> np.ndarray:
        """The filled prefix as a (zero-copy) array view."""
        if self._rows is None:
            return np.empty((0, 0))
        return self._rows[: self.count]

    def clear(self) -> None:
        self._rows = None
        self.count = 0


class IncrementalPCA:
    """Streaming PCA with low-rank rank-one/rank-``k`` covariance updates.

    Parameters
    ----------
    n_components:
        Number of leading eigenpairs ``p`` to maintain.
    alpha:
        Forgetting factor ``α ∈ (0, 1]``; ``1`` = infinite memory
        (classical running average), smaller values forget the past with an
        effective window of ``N = 1/(1-α)`` observations.
    init_size:
        Number of observations buffered before the eigensystem is
        initialized with a small batch solve (Section III-C keeps this
        "small to minimize the computational requirements").

    Notes
    -----
    The per-update cost is ``O(d·p²)`` for the sequential path and
    ``O(d·k·(p+k))`` per ``k``-row block — independent of how many
    observations have been seen — and no ``d × d`` matrix is formed.
    """

    def __init__(
        self,
        n_components: int,
        *,
        alpha: float = 1.0,
        init_size: int = 10,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if init_size < 2:
            raise ValueError(f"init_size must be >= 2, got {init_size}")
        self.n_components = int(n_components)
        self.alpha = float(alpha)
        self.init_size = int(init_size)
        self._buffer = _WarmupBuffer(self.init_size)
        self._state: Eigensystem | None = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def state(self) -> Eigensystem:
        """The current eigensystem; raises if still warming up."""
        if self._state is None:
            raise NotFittedError(
                "eigensystem not initialized yet: "
                f"{self._buffer.count}/{self.init_size} warm-up vectors "
                "seen — feed more observations before querying the fit"
            )
        return self._state

    @property
    def is_initialized(self) -> bool:
        """Whether the warm-up batch solve has happened."""
        return self._state is not None

    @property
    def n_seen(self) -> int:
        """Total observations consumed (including warm-up)."""
        if self._state is not None:
            return self._state.n_seen
        return self._buffer.count

    @property
    def components_(self) -> np.ndarray:
        """Eigenvectors as rows, sklearn-style ``(p, d)`` view."""
        return self.state.basis.T

    @property
    def eigenvalues_(self) -> np.ndarray:
        """Current eigenvalues in descending order."""
        return self.state.eigenvalues

    @property
    def mean_(self) -> np.ndarray:
        """Current location estimate."""
        return self.state.mean

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def update(self, x: np.ndarray) -> UpdateResult | None:
        """Consume one observation; returns ``None`` during warm-up."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"update expects a single vector, got {x.shape}")
        if self._state is None:
            self._buffer.append(x)
            if self._buffer.is_full:
                self._initialize()
            return None
        return self._update_initialized(x)

    def update_block(self, x: np.ndarray) -> BlockUpdateResult:
        """Consume a ``(k, d)`` block through the vectorized block kernel.

        Rows that fall into the warm-up window are buffered (and may
        trigger initialization mid-block); the remainder is processed in
        one (or, for very aggressive forgetting, a few) rank-``k``
        updates.  Never loops over rows on the post-initialization path.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2:
            raise ValueError(f"update_block expects (k, d), got {x.shape}")
        n_buffered = 0
        if self._state is None:
            n_buffered = self._buffer.extend(x)
            if self._buffer.is_full:
                self._initialize()
            x = x[n_buffered:]
        if x.shape[0] == 0 or self._state is None:
            return BlockUpdateResult.empty(n_buffered=n_buffered)
        parts = []
        offset = n_buffered
        for chunk in self._iter_chunks(x):
            part = self._update_block_initialized(chunk)
            if part.indices is not None:
                part = replace(part, indices=part.indices + offset)
            offset += chunk.shape[0]
            parts.append(part)
        result = BlockUpdateResult.concat(parts)
        if n_buffered:
            result = replace(result, n_buffered=n_buffered)
        return result

    def partial_fit(self, x: np.ndarray) -> "IncrementalPCA":
        """Consume a block of observations of shape ``(n, d)``.

        Routes through :meth:`update_block` — one vectorized rank-``k``
        eigensolve per block instead of a Python loop of rank-one
        updates per row.
        """
        self.update_block(x)
        return self

    # sklearn-style alias
    fit = partial_fit

    def _max_chunk_rows(self) -> int:
        """Largest block one eigensolve may cover.

        Bounded by ``_MAX_BLOCK_ROWS`` (diagnostics freshness) and, for
        ``α < 1``, by the exact α-scan's overflow guard.
        """
        if self.alpha >= 1.0:
            return _MAX_BLOCK_ROWS
        overflow = max(1, int(_MAX_SCAN_EXPONENT / -math.log(self.alpha)))
        return min(_MAX_BLOCK_ROWS, overflow)

    def _iter_chunks(self, x: np.ndarray):
        limit = self._max_chunk_rows()
        if x.shape[0] <= limit:
            yield x
            return
        for start in range(0, x.shape[0], limit):
            yield x[start : start + limit]

    def _initialize(self) -> None:
        self._state = Eigensystem.from_batch(
            self._buffer.view(), self.n_components
        )
        self._buffer.clear()

    def _update_initialized(self, x: np.ndarray) -> UpdateResult:
        st = self._state
        assert st is not None
        if x.shape != (st.dim,):
            raise ValueError(f"expected vector of dim {st.dim}, got {x.shape}")

        # Running sums (classical: every weight is 1, so u == v and
        # q tracks plain r²).
        u_new = self.alpha * st.sum_count + 1.0
        gamma = self.alpha * st.sum_count / u_new
        one_minus_gamma = 1.0 / u_new

        st.mean = gamma * st.mean + one_minus_gamma * x
        y = x - st.mean

        r = st.residual(y)
        r2 = float(r @ r)
        scale_prev = st.scale if st.scale > 0 else 1.0

        st.basis, st.eigenvalues = rank_one_update(
            st.basis, st.eigenvalues, y, gamma, one_minus_gamma,
            self.n_components,
        )
        st.scale = gamma * st.scale + one_minus_gamma * r2
        st.sum_count = u_new
        st.sum_weight = u_new
        st.sum_weighted_r2 = self.alpha * st.sum_weighted_r2 + r2
        st.n_seen += 1
        st.n_since_sync += 1
        return UpdateResult(
            weight=1.0,
            scaled_residual=r2 / scale_prev,
            residual_norm2=r2,
        )

    def _update_block_initialized(self, x: np.ndarray) -> BlockUpdateResult:
        """One rank-``k`` update, exactly unrolling ``k`` sequential steps.

        The sequential recursion applies, at step ``j``,
        ``u_j = α u_{j-1} + 1`` and ``mean_j = γ_j mean_{j-1} + x_j/u_j``;
        unrolled over the block this gives per-row decay weights
        ``α^{k-j}`` and the closed-form per-row means computed below, so
        mean / eigenbasis / eigenvalues match the sequential path exactly
        whenever the single end-of-block truncation loses no rank
        (see docs/performance.md).  Residual diagnostics (and hence the
        scale recursion) are evaluated against the block-*start* basis —
        the one deliberate approximation of the block path.
        """
        st = self._state
        assert st is not None
        k, d = x.shape
        if d != st.dim:
            raise ValueError(
                f"expected vectors of dim {st.dim}, got dim {d}"
            )

        a = self.alpha
        u0 = st.sum_count
        j = np.arange(1, k + 1, dtype=np.float64)
        if a >= 1.0:
            u = u0 + j
            pw = np.ones(k)
            decay_k = 1.0
            # Exact per-row means: mean_j = (u0 mean0 + Σ_{i<=j} x_i)/u_j.
            means = (u0 * st.mean + np.cumsum(x, axis=0)) / u[:, None]
        else:
            aj = a ** j
            u = aj * u0 + (1.0 - aj) / (1.0 - a)
            pw = a ** (k - j)
            decay_k = float(aj[-1])
            # Exact per-row means via the rescaled cumulative sum
            #   mean_j = α^j (u0 mean0 + Σ_{i<=j} α^{-i} x_i) / u_j ;
            # chunking (_max_chunk_rows) bounds α^{-i} far below overflow.
            t = np.cumsum((a ** -j)[:, None] * x, axis=0)
            means = (aj[:, None] * (u0 * st.mean + t)) / u[:, None]
        u_new = float(u[-1])
        gamma_block = decay_k * u0 / u_new

        y = x - means
        # Diagnostics against the block-start basis (fused kernel).
        r2 = _kernels.residual_norm2_block(
            np.ascontiguousarray(y), np.ascontiguousarray(st.basis)
        )
        scale_prev = st.scale if st.scale > 0 else 1.0

        st.mean = means[-1]
        st.basis, st.eigenvalues = rank_k_update(
            st.basis, st.eigenvalues, y, gamma_block, pw / u_new,
            self.n_components,
        )
        pw_r2 = float(pw @ r2)
        st.scale = gamma_block * st.scale + pw_r2 / u_new
        st.sum_count = u_new
        st.sum_weight = u_new
        st.sum_weighted_r2 = decay_k * st.sum_weighted_r2 + pw_r2
        st.n_seen += k
        st.n_since_sync += k
        return BlockUpdateResult(
            weights=np.ones(k),
            scaled_residuals=r2 / scale_prev,
            residual_norm2=r2,
            is_outlier=np.zeros(k, dtype=bool),
            n_processed=k,
            indices=np.arange(k, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Expansion coefficients of (blocks of) observations."""
        st = self.state
        return st.project(st.center(x))

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map coefficients back to the ambient space (adds the mean)."""
        st = self.state
        return np.asarray(z, dtype=np.float64) @ st.basis.T + st.mean

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray | float:
        """Squared residual norm of observations under the current fit."""
        st = self.state
        return st.residual_norm2(st.center(x))
