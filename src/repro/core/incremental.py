"""Classical (non-robust) incremental PCA — the Fig. 1 baseline.

Implements the covariance recursion of paper eq. 1,

.. math::

    C \\approx \\gamma E_p \\Lambda_p E_p^T + (1-\\gamma)\\, y y^T = A A^T ,

with the factor columns of eqs. 2–3 and the SVD of the skinny ``A``
(delegated to :mod:`repro.core.lowrank`).  With forgetting factor
``alpha = 1`` the weights reduce to the classical ``γ = n/(n+1)`` running
average (infinite memory); ``alpha < 1`` gives the exponentially-weighted
sliding window of Section II-B.

This estimator treats every observation at full weight, which is exactly
why it fails under contamination: each gross outlier "takes over the top
eigenvector creating a rainbow effect" (Fig. 1, left).  The robust variant
lives in :mod:`repro.core.robust`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .eigensystem import Eigensystem
from .lowrank import rank_one_update

__all__ = ["UpdateResult", "IncrementalPCA"]


@dataclass(frozen=True)
class UpdateResult:
    """Per-observation diagnostics returned by ``update``.

    Attributes
    ----------
    weight:
        Robust covariance weight given to the observation (always 1.0 for
        the classical estimator).
    scaled_residual:
        ``t = r²/σ²`` — the squared residual in units of the current scale.
    residual_norm2:
        Raw squared residual norm ``r²`` of the hyperplane fit.
    is_outlier:
        Whether the observation was flagged (never, classically).
    n_filled:
        Number of missing entries that were gap-filled before the update.
    """

    weight: float
    scaled_residual: float
    residual_norm2: float
    is_outlier: bool = False
    n_filled: int = 0


class IncrementalPCA:
    """Streaming PCA with the low-rank rank-one covariance update.

    Parameters
    ----------
    n_components:
        Number of leading eigenpairs ``p`` to maintain.
    alpha:
        Forgetting factor ``α ∈ (0, 1]``; ``1`` = infinite memory
        (classical running average), smaller values forget the past with an
        effective window of ``N = 1/(1-α)`` observations.
    init_size:
        Number of observations buffered before the eigensystem is
        initialized with a small batch solve (Section III-C keeps this
        "small to minimize the computational requirements").

    Notes
    -----
    The per-update cost is ``O(d·p² )`` — independent of how many
    observations have been seen — and no ``d × d`` matrix is formed.
    """

    def __init__(
        self,
        n_components: int,
        *,
        alpha: float = 1.0,
        init_size: int = 10,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if init_size < 2:
            raise ValueError(f"init_size must be >= 2, got {init_size}")
        self.n_components = int(n_components)
        self.alpha = float(alpha)
        self.init_size = int(init_size)
        self._buffer: list[np.ndarray] = []
        self._state: Eigensystem | None = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def state(self) -> Eigensystem:
        """The current eigensystem; raises if still warming up."""
        if self._state is None:
            raise RuntimeError(
                "eigensystem not initialized yet: "
                f"{len(self._buffer)}/{self.init_size} warm-up vectors seen"
            )
        return self._state

    @property
    def is_initialized(self) -> bool:
        """Whether the warm-up batch solve has happened."""
        return self._state is not None

    @property
    def n_seen(self) -> int:
        """Total observations consumed (including warm-up)."""
        if self._state is not None:
            return self._state.n_seen
        return len(self._buffer)

    @property
    def components_(self) -> np.ndarray:
        """Eigenvectors as rows, sklearn-style ``(p, d)`` view."""
        return self.state.basis.T

    @property
    def eigenvalues_(self) -> np.ndarray:
        """Current eigenvalues in descending order."""
        return self.state.eigenvalues

    @property
    def mean_(self) -> np.ndarray:
        """Current location estimate."""
        return self.state.mean

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def update(self, x: np.ndarray) -> UpdateResult | None:
        """Consume one observation; returns ``None`` during warm-up."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"update expects a single vector, got {x.shape}")
        if self._state is None:
            self._buffer.append(x.copy())
            if len(self._buffer) >= self.init_size:
                self._initialize()
            return None
        return self._update_initialized(x)

    def partial_fit(self, x: np.ndarray) -> "IncrementalPCA":
        """Consume a block of observations of shape ``(n, d)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for row in x:
            self.update(row)
        return self

    # sklearn-style alias
    fit = partial_fit

    def _initialize(self) -> None:
        batch = np.asarray(self._buffer)
        self._state = Eigensystem.from_batch(batch, self.n_components)
        self._buffer.clear()

    def _update_initialized(self, x: np.ndarray) -> UpdateResult:
        st = self._state
        assert st is not None
        if x.shape != (st.dim,):
            raise ValueError(f"expected vector of dim {st.dim}, got {x.shape}")

        # Running sums (classical: every weight is 1, so u == v and
        # q tracks plain r²).
        u_new = self.alpha * st.sum_count + 1.0
        gamma = self.alpha * st.sum_count / u_new
        one_minus_gamma = 1.0 / u_new

        st.mean = gamma * st.mean + one_minus_gamma * x
        y = x - st.mean

        r = st.residual(y)
        r2 = float(r @ r)
        scale_prev = st.scale if st.scale > 0 else 1.0

        st.basis, st.eigenvalues = rank_one_update(
            st.basis, st.eigenvalues, y, gamma, one_minus_gamma,
            self.n_components,
        )
        st.scale = gamma * st.scale + one_minus_gamma * r2
        st.sum_count = u_new
        st.sum_weight = u_new
        st.sum_weighted_r2 = self.alpha * st.sum_weighted_r2 + r2
        st.n_seen += 1
        st.n_since_sync += 1
        return UpdateResult(
            weight=1.0,
            scaled_residual=r2 / scale_prev,
            residual_norm2=r2,
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Expansion coefficients of (blocks of) observations."""
        st = self.state
        return st.project(st.center(x))

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map coefficients back to the ambient space (adds the mean)."""
        st = self.state
        return np.asarray(z, dtype=np.float64) @ st.basis.T + st.mean

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray | float:
        """Squared residual norm of observations under the current fit."""
        st = self.state
        return st.residual_norm2(st.center(x))
