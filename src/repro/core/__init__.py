"""Core algorithms: robust incremental PCA and its supporting machinery.

Public surface of the paper's primary contribution (Section II):

* :class:`~repro.core.robust.RobustIncrementalPCA` — the streaming robust
  estimator (eqs. 9–14, gap handling of §II-D).
* :class:`~repro.core.incremental.IncrementalPCA` — the classical
  streaming baseline (eqs. 1–3).
* :class:`~repro.core.batch.BatchPCA` /
  :class:`~repro.core.batch.BatchRobustPCA` — offline references.
* :func:`~repro.core.merge.merge_eigensystems` — the parallel-sync
  combination rule (eqs. 15–16).
* :class:`~repro.core.eigensystem.Eigensystem` — the state unit shipped
  between engines and to checkpoints.
"""

from .basis_comparison import (
    BasisComparison,
    BasisScore,
    compare_bases,
    robust_eigenvalues_along,
)
from .batch import BatchPCA, BatchRobustPCA, mscale_fixed_point
from .calibration import (
    breakdown_point,
    calibrate_c2,
    calibrate_delta,
    consistent_rho,
    expected_rho,
)
from .drift import DriftReport, SubspaceDriftDetector
from .eigensystem import Eigensystem
from .exceptions import NotFittedError
from .gaps import (
    GAP_RESIDUAL_MODES,
    BlockGapFillResult,
    GapFiller,
    GapFillResult,
    corrected_residual_norm2,
    estimate_residual_norm2,
    fill_block_from_basis,
    fill_from_basis,
    has_gaps,
    iterative_gap_fill,
    observed_mask,
)
from .incremental import BlockUpdateResult, IncrementalPCA, UpdateResult
from .kernels import jit_enabled, jit_status, set_jit, use_jit
from .lowrank import (
    build_merge_factor,
    build_update_factor,
    eigensystem_of_factor,
    rank_k_update,
    rank_one_update,
)
from .merge import (
    eigensystems_consistent,
    merge_eigensystems,
    merge_pair,
    merge_weights,
)
from .metrics import (
    ConvergenceReport,
    TraceRecorder,
    align_signs,
    explained_variance_ratio,
    largest_principal_angle,
    principal_angles,
    roughness,
    subspace_distance,
)
from .normalize import NormalizationError, normalize_block, unit_mean_flux, unit_norm
from .outliers import OutlierEvent, OutlierLog, flag_outliers
from .rho import BisquareRho, CauchyRho, RhoFunction, SkippedMeanRho, make_rho
from .robust import RobustEigenvalueEstimator, RobustIncrementalPCA
from .windows import SlidingWindowPCA

__all__ = [
    "BasisComparison",
    "BasisScore",
    "BatchPCA",
    "GAP_RESIDUAL_MODES",
    "BatchRobustPCA",
    "BisquareRho",
    "BlockGapFillResult",
    "BlockUpdateResult",
    "CauchyRho",
    "ConvergenceReport",
    "DriftReport",
    "Eigensystem",
    "GapFillResult",
    "GapFiller",
    "IncrementalPCA",
    "NormalizationError",
    "NotFittedError",
    "OutlierEvent",
    "OutlierLog",
    "RhoFunction",
    "RobustEigenvalueEstimator",
    "RobustIncrementalPCA",
    "SlidingWindowPCA",
    "SubspaceDriftDetector",
    "SkippedMeanRho",
    "TraceRecorder",
    "UpdateResult",
    "align_signs",
    "breakdown_point",
    "build_merge_factor",
    "build_update_factor",
    "calibrate_c2",
    "calibrate_delta",
    "compare_bases",
    "consistent_rho",
    "corrected_residual_norm2",
    "eigensystem_of_factor",
    "estimate_residual_norm2",
    "eigensystems_consistent",
    "expected_rho",
    "explained_variance_ratio",
    "fill_block_from_basis",
    "fill_from_basis",
    "flag_outliers",
    "has_gaps",
    "iterative_gap_fill",
    "jit_enabled",
    "jit_status",
    "largest_principal_angle",
    "make_rho",
    "merge_eigensystems",
    "merge_pair",
    "merge_weights",
    "mscale_fixed_point",
    "normalize_block",
    "observed_mask",
    "principal_angles",
    "rank_k_update",
    "rank_one_update",
    "robust_eigenvalues_along",
    "roughness",
    "set_jit",
    "subspace_distance",
    "unit_mean_flux",
    "unit_norm",
    "use_jit",
]
