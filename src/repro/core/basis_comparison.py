"""Comparing bases by their robust eigenvalues (paper §II-B, last ¶).

"It is worth noting that robust 'eigenvalues' can be computed for any
basis vectors in a consistent way, which enables a meaningful comparison
of the performance of various bases."  Given several candidate bases for
the same data stream (e.g. a classical PCA basis poisoned by outliers vs
a robust one), project the data onto each basis vector, estimate the
robust scatter along it as a `dof = 1` M-scale, and compare how much
*robust* variance each basis captures.

A basis captured by outliers scores poorly here: the junk direction's
robust eigenvalue collapses to the inlier variance along it, so its
"captured robust variance" is small even though its *classical* variance
was huge — the comparison the paper is after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .batch import mscale_fixed_point
from .calibration import calibrate_c2
from .rho import make_rho

__all__ = [
    "BasisComparison",
    "BasisScore",
    "compare_bases",
    "robust_eigenvalues_along",
]


def robust_eigenvalues_along(
    x: np.ndarray,
    basis: np.ndarray,
    *,
    center: np.ndarray | None = None,
    delta: float = 0.5,
) -> np.ndarray:
    """Robust λ along each column of ``basis`` for the data block ``x``.

    Projections are median-centered per direction (a robust location
    along the direction), then the squared projections' M-scale with
    ``dof = 1`` calibration is the robust eigenvalue.

    Parameters
    ----------
    x:
        Complete data ``(n, d)``.
    basis:
        Candidate directions as columns ``(d, k)``; normalized internally.
    center:
        Optional location estimate; default column medians of ``x``.
    """
    x = np.asarray(x, dtype=np.float64)
    basis = np.asarray(basis, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    if basis.ndim != 2 or basis.shape[0] != x.shape[1]:
        raise ValueError(
            f"basis shape {basis.shape} does not match data dim {x.shape[1]}"
        )
    norms = np.linalg.norm(basis, axis=0)
    if np.any(norms <= 0):
        raise ValueError("basis columns must be nonzero")
    basis = basis / norms
    if center is None:
        center = np.median(x, axis=0)
    y = x - center
    proj = y @ basis
    proj -= np.median(proj, axis=0)
    rho1 = make_rho("bisquare", c2=calibrate_c2(delta, 1))
    return np.array(
        [
            mscale_fixed_point(proj[:, j] ** 2, rho1, delta)
            for j in range(basis.shape[1])
        ]
    )


@dataclass(frozen=True)
class BasisScore:
    """Robust-variance scorecard of one candidate basis."""

    name: str
    robust_eigenvalues: np.ndarray
    total_robust_variance: float


@dataclass
class BasisComparison:
    """Scores of all candidates plus the winner."""

    scores: list[BasisScore] = field(default_factory=list)

    @property
    def best(self) -> BasisScore:
        """The basis capturing the most robust variance."""
        return max(self.scores, key=lambda s: s.total_robust_variance)

    def score_of(self, name: str) -> BasisScore:
        """Scorecard of one named candidate."""
        for s in self.scores:
            if s.name == name:
                return s
        raise KeyError(name)


def compare_bases(
    x: np.ndarray,
    bases: Mapping[str, np.ndarray],
    *,
    delta: float = 0.5,
) -> BasisComparison:
    """Score candidate bases by captured robust variance on ``x``.

    Example::

        comparison = compare_bases(
            block, {"classic": c.components_.T, "robust": r.components_.T}
        )
        comparison.best.name     # "robust" when outliers poisoned classic
    """
    if not bases:
        raise ValueError("need at least one candidate basis")
    result = BasisComparison()
    for name, basis in bases.items():
        lam = robust_eigenvalues_along(x, basis, delta=delta)
        result.scores.append(
            BasisScore(
                name=name,
                robust_eigenvalues=lam,
                total_robust_variance=float(lam.sum()),
            )
        )
    return result
