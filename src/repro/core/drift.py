"""Eigensystem drift detection — the monitoring primitive.

The paper's conclusion: "our streaming PCA algorithm can indicate latent
features and correlations in cluster health, where a significant
eigensystem deviation could indicate a hardware failure."  Per-tuple
outlier flags catch *individual* anomalous readings;
:class:`SubspaceDriftDetector` catches the slower failure mode — the
*correlation structure itself* changing — by comparing periodic
eigensystem snapshots.

Drift between two snapshots is scored on three axes:

* ``angle`` — largest principal angle between the retained subspaces;
* ``eigenvalue_shift`` — largest relative change among matched
  eigenvalues (variance re-allocation without rotation);
* ``scale_shift`` — relative change of the residual scale σ² (the noise
  floor rising, e.g. a sensor going ratty).

An alarm fires when any axis exceeds its threshold.  A baseline window
of the first ``warmup_snapshots`` snapshots absorbs ordinary convergence
movement so early learning does not alarm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .eigensystem import Eigensystem
from .metrics import largest_principal_angle

__all__ = ["DriftReport", "SubspaceDriftDetector"]


@dataclass(frozen=True)
class DriftReport:
    """Drift scores for one snapshot against the previous one.

    ``alarmed`` is True when any score exceeded its threshold.
    """

    n_seen: int
    angle: float
    eigenvalue_shift: float
    scale_shift: float
    alarmed: bool

    def worst_axis(self) -> str:
        """Which score dominated (for alarm messages)."""
        scores = {
            "angle": self.angle,
            "eigenvalue_shift": self.eigenvalue_shift,
            "scale_shift": self.scale_shift,
        }
        return max(scores, key=scores.get)  # type: ignore[arg-type]


class SubspaceDriftDetector:
    """Alarm on abrupt eigensystem changes between snapshots.

    Parameters
    ----------
    angle_threshold:
        Radians of subspace rotation per snapshot interval considered
        anomalous.
    eigenvalue_rtol / scale_rtol:
        Relative eigenvalue / σ² changes considered anomalous.
    warmup_snapshots:
        Initial snapshots exempt from alarming (convergence movement).

    Usage::

        detector = SubspaceDriftDetector()
        ...
        if est.n_seen % 500 == 0:
            report = detector.observe(est.public_state())
            if report and report.alarmed:
                page_the_operator(report.worst_axis())
    """

    def __init__(
        self,
        *,
        angle_threshold: float = 0.3,
        eigenvalue_rtol: float = 0.5,
        scale_rtol: float = 0.5,
        warmup_snapshots: int = 3,
    ) -> None:
        if angle_threshold <= 0:
            raise ValueError("angle_threshold must be positive")
        if eigenvalue_rtol <= 0 or scale_rtol <= 0:
            raise ValueError("relative tolerances must be positive")
        if warmup_snapshots < 0:
            raise ValueError("warmup_snapshots must be >= 0")
        self.angle_threshold = float(angle_threshold)
        self.eigenvalue_rtol = float(eigenvalue_rtol)
        self.scale_rtol = float(scale_rtol)
        self.warmup_snapshots = int(warmup_snapshots)
        self._previous: Eigensystem | None = None
        self._n_observed = 0
        self.reports: list[DriftReport] = []

    def observe(self, state: Eigensystem) -> DriftReport | None:
        """Score ``state`` against the previous snapshot.

        Returns ``None`` for the very first snapshot (nothing to compare).
        The snapshot is copied; callers may keep mutating their state.
        """
        self._n_observed += 1
        previous, self._previous = self._previous, state.copy()
        if previous is None:
            return None

        angle = (
            largest_principal_angle(previous.basis, state.basis)
            if previous.n_components and state.n_components
            else 0.0
        )
        k = min(previous.eigenvalues.size, state.eigenvalues.size)
        if k:
            prev_lam = previous.eigenvalues[:k]
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.abs(state.eigenvalues[:k] - prev_lam) / np.where(
                    prev_lam > 0, prev_lam, np.inf
                )
            eig_shift = float(np.max(rel))
        else:
            eig_shift = 0.0
        lo = min(previous.scale, state.scale)
        hi = max(previous.scale, state.scale)
        scale_shift = (hi - lo) / lo if lo > 0 else 0.0

        in_warmup = self._n_observed <= self.warmup_snapshots
        alarmed = not in_warmup and (
            angle > self.angle_threshold
            or eig_shift > self.eigenvalue_rtol
            or scale_shift > self.scale_rtol
        )
        report = DriftReport(
            n_seen=state.n_seen,
            angle=angle,
            eigenvalue_shift=eig_shift,
            scale_shift=scale_shift,
            alarmed=alarmed,
        )
        self.reports.append(report)
        return report

    @property
    def alarms(self) -> list[DriftReport]:
        """All alarmed reports so far."""
        return [r for r in self.reports if r.alarmed]
