"""Missing-entry ("gappy") handling — paper Section II-D.

Real survey spectra have gaps: random dropped snippets, and systematic
holes that correlate with physics (a fixed observed wavelength range maps
to different rest-frame ranges at different redshifts).  Two problems
follow:

1.  Incomplete vectors cannot be normalized or projected directly.  The
    fix (after Everson & Sirovich 1995; Connolly & Szalay 1999) is to
    *patch* the gaps with an unbiased reconstruction from the current best
    eigenbasis — which the streaming algorithm has on hand at all times, so
    no extra passes over the data are needed.
2.  Patching artificially zeroes the residual in the patched bins, so
    gappy vectors would receive inflated robust weights.  The paper's fix
    is to carry ``q`` extra eigenvectors beyond the ``p`` retained ones and
    estimate the missing-bin residual from the difference between the
    ``p``- and ``(p+q)``-term reconstructions.

Gaps are represented as NaN entries throughout this package.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernels as _kernels
from .eigensystem import Eigensystem

__all__ = [
    "observed_mask",
    "has_gaps",
    "fill_from_basis",
    "fill_block_from_basis",
    "GapFillResult",
    "BlockGapFillResult",
    "GapFiller",
    "corrected_residual_norm2",
    "estimate_residual_norm2",
    "iterative_gap_fill",
    "GAP_RESIDUAL_MODES",
]


def observed_mask(x: np.ndarray) -> np.ndarray:
    """Boolean mask of observed (finite) entries of ``x``."""
    return np.isfinite(np.asarray(x))


def has_gaps(x: np.ndarray) -> bool:
    """Whether ``x`` contains any missing (non-finite) entries."""
    return not bool(np.all(np.isfinite(np.asarray(x))))


@dataclass(frozen=True)
class GapFillResult:
    """Outcome of patching one observation.

    Attributes
    ----------
    filled:
        The completed vector (a fresh array; the input is not modified).
    mask:
        Boolean mask of the *originally observed* entries.
    n_filled:
        Number of entries that were patched.
    coefficients:
        Expansion coefficients ``z`` used for the reconstruction (empty
        when the basis had no vectors and the mean alone was used).
    """

    filled: np.ndarray
    mask: np.ndarray
    n_filled: int
    coefficients: np.ndarray


def fill_from_basis(
    x: np.ndarray,
    mean: np.ndarray,
    basis: np.ndarray,
    *,
    ridge: float = 1e-8,
) -> GapFillResult:
    """Patch missing entries of ``x`` using ``mean`` and an eigenbasis.

    Solves the masked least-squares problem

    .. math::

        z^\\star = \\arg\\min_z \\lVert E_{obs} z - (x - \\mu)_{obs}
        \\rVert^2 + \\text{ridge}\\,\\lVert z\\rVert^2

    and fills ``x_miss ← (µ + E z*)_miss``.  The ridge term keeps the
    normal equations well-posed when a gap removes most of the support of
    some eigenvector (``E_obs`` nearly rank-deficient), which happens for
    heavily redshift-shifted spectra.

    Vectors with *no* observed entries are filled entirely with the mean.
    """
    x = np.asarray(x, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    basis = np.asarray(basis, dtype=np.float64)
    if x.shape != mean.shape:
        raise ValueError(f"x shape {x.shape} != mean shape {mean.shape}")
    mask = np.isfinite(x)
    n_miss = int(np.count_nonzero(~mask))
    if n_miss == 0:
        return GapFillResult(x.copy(), mask, 0, np.zeros(basis.shape[1]))

    filled = x.copy()
    k = basis.shape[1]
    if k == 0 or not np.any(mask):
        filled[~mask] = mean[~mask]
        return GapFillResult(filled, mask, n_miss, np.zeros(k))

    e_obs = basis[mask]
    y_obs = x[mask] - mean[mask]
    # Normal equations on the small k x k system; ridge-regularized.
    gram = e_obs.T @ e_obs
    gram[np.diag_indices_from(gram)] += ridge
    z = np.linalg.solve(gram, e_obs.T @ y_obs)
    filled[~mask] = mean[~mask] + basis[~mask] @ z
    return GapFillResult(filled, mask, n_miss, z)


@dataclass(frozen=True)
class BlockGapFillResult:
    """Outcome of patching a ``(k, d)`` block.

    Attributes
    ----------
    filled:
        The completed block (fresh array; the input is untouched).
    mask:
        ``(k, d)`` boolean mask of originally observed entries.
    n_filled_per_row:
        Number of patched entries per row, shape ``(k,)``.
    gappy_rows:
        Indices of rows that had at least one gap.
    """

    filled: np.ndarray
    mask: np.ndarray
    n_filled_per_row: np.ndarray
    gappy_rows: np.ndarray

    @property
    def n_filled(self) -> int:
        """Total entries patched across the block."""
        return int(self.n_filled_per_row.sum())


def fill_block_from_basis(
    x: np.ndarray,
    mean: np.ndarray,
    basis: np.ndarray,
    *,
    ridge: float = 1e-8,
) -> BlockGapFillResult:
    """Patch missing entries of a ``(k, d)`` block with the eigenbasis.

    Complete rows are passed through untouched (one vectorized copy);
    each gappy row solves its own masked ridge least-squares problem —
    the same normal equations as :func:`fill_from_basis` — via the
    :func:`repro.core.kernels.fill_gappy_rows` kernel.  The masked
    systems differ per row, so the inner loop runs only over the gappy
    subset, which for astrophysical streams is typically a small
    fraction of the block.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (k, d) block, got shape {x.shape}")
    mean = np.ascontiguousarray(mean, dtype=np.float64)
    basis = np.ascontiguousarray(basis, dtype=np.float64)
    if mean.shape != (x.shape[1],):
        raise ValueError(
            f"mean shape {mean.shape} does not match block dimension "
            f"{x.shape[1]}"
        )
    if basis.ndim != 2 or basis.shape[0] != x.shape[1]:
        raise ValueError(
            f"basis shape {basis.shape} does not match block dimension "
            f"{x.shape[1]}"
        )
    mask = np.isfinite(x)
    gappy = np.ascontiguousarray(
        np.nonzero(~mask.all(axis=1))[0], dtype=np.int64
    )
    filled = x.copy()
    n_filled_per_row = np.zeros(x.shape[0], dtype=np.int64)
    if gappy.size:
        counts = _kernels.fill_gappy_rows(
            filled,
            np.ascontiguousarray(mask),
            mean,
            basis,
            float(ridge),
            gappy,
        )
        n_filled_per_row[gappy] = counts
    return BlockGapFillResult(
        filled=filled,
        mask=mask,
        n_filled_per_row=n_filled_per_row,
        gappy_rows=gappy,
    )


class GapFiller:
    """Stateful patcher bound to a live (mutating) :class:`Eigensystem`.

    The streaming algorithm fills each gappy vector with the *current*
    eigenbasis as it arrives ("avoiding the need for multiple iterations
    through the entire dataset", Section II-D), so the filler holds a
    reference — not a copy — of the engine's state.
    """

    def __init__(self, state: Eigensystem, *, ridge: float = 1e-8) -> None:
        self._state = state
        self.ridge = float(ridge)
        self.n_vectors_filled = 0
        self.n_entries_filled = 0

    def rebind(self, state: Eigensystem) -> None:
        """Point the filler at a new state object (e.g. after a sync)."""
        self._state = state

    def fill(self, x: np.ndarray) -> GapFillResult:
        """Patch one observation with the bound eigensystem."""
        result = fill_from_basis(
            x, self._state.mean, self._state.basis, ridge=self.ridge
        )
        if result.n_filled:
            self.n_vectors_filled += 1
            self.n_entries_filled += result.n_filled
        return result


def corrected_residual_norm2(
    y: np.ndarray,
    mask: np.ndarray,
    basis_p: np.ndarray,
    basis_extra: np.ndarray,
) -> float:
    """Residual ``r²`` of a patched vector, corrected for zeroed gap bins.

    ``y`` is the *centered, patched* observation.  The residual over the
    observed bins is computed directly against the ``p``-term basis; the
    residual in the missing bins — which patching forced to ~0 — is
    estimated as the difference between the ``(p+q)``- and ``p``-term
    reconstructions there (Section II-D, last paragraph):

    .. math::

        r^2 \\approx \\lVert (I - E_p E_p^T) y \\rVert^2_{obs}
        + \\lVert E_{+q} E_{+q}^T y - E_p E_p^T y \\rVert^2_{miss} .

    Parameters
    ----------
    y:
        Centered patched vector, shape ``(d,)``.
    mask:
        Boolean mask of originally observed entries.
    basis_p:
        The retained basis ``E_p``, shape ``(d, p)``.
    basis_extra:
        The extra higher-order vectors (columns ``p+1 … p+q``), shape
        ``(d, q)``; may be empty, in which case only the observed-bin
        residual is returned.
    """
    y = np.asarray(y, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if y.shape != mask.shape:
        raise ValueError(f"y shape {y.shape} != mask shape {mask.shape}")
    recon_p = basis_p @ (basis_p.T @ y)
    resid_obs = y[mask] - recon_p[mask]
    r2 = float(resid_obs @ resid_obs)
    if basis_extra.size and np.any(~mask):
        # Higher-order reconstruction differs from the p-term one exactly by
        # the extra components' contribution.
        extra = basis_extra @ (basis_extra.T @ y)
        diff_miss = extra[~mask]
        r2 += float(diff_miss @ diff_miss)
    return r2


#: Residual-estimation modes for gap-filled observations.
#:
#: * ``"observed"`` — no correction: residual over observed bins only
#:   (what the paper warns against — gappier spectra get inflated
#:   weights).
#: * ``"higher-order"`` — the paper's §II-D fix: add the missing-bin
#:   difference between the ``(p+q)``- and ``p``-term reconstructions.
#: * ``"extrapolate"`` — scale the observed residual by ``d / n_obs``,
#:   the unbiased missing-at-random extrapolation of the noise floor.
#: * ``"hybrid"`` — both: extrapolated noise floor plus the structured
#:   higher-order term (our extension; strictly dominates each alone
#:   when both structure and noise are present).
GAP_RESIDUAL_MODES = ("observed", "higher-order", "extrapolate", "hybrid")


def estimate_residual_norm2(
    y: np.ndarray,
    mask: np.ndarray,
    basis_p: np.ndarray,
    basis_extra: np.ndarray,
    mode: str = "higher-order",
) -> float:
    """Residual ``r²`` of a patched, centered vector under a gap mode.

    See :data:`GAP_RESIDUAL_MODES` for the semantics.  ``basis_extra``
    may be empty, in which case the higher-order term is zero.
    """
    if mode not in GAP_RESIDUAL_MODES:
        raise ValueError(
            f"unknown gap residual mode {mode!r}; "
            f"choose from {GAP_RESIDUAL_MODES}"
        )
    y = np.asarray(y, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if y.shape != mask.shape:
        raise ValueError(f"y shape {y.shape} != mask shape {mask.shape}")
    recon_p = basis_p @ (basis_p.T @ y)
    resid_obs = y[mask] - recon_p[mask]
    r2_obs = float(resid_obs @ resid_obs)
    n_obs = int(np.count_nonzero(mask))
    if n_obs == 0:
        return 0.0

    if mode == "observed":
        return r2_obs
    if mode == "extrapolate":
        return r2_obs * (y.size / n_obs)

    structured = 0.0
    if basis_extra.size and np.any(~mask):
        extra = basis_extra @ (basis_extra.T @ y)
        diff_miss = extra[~mask]
        structured = float(diff_miss @ diff_miss)
    if mode == "higher-order":
        return r2_obs + structured
    # hybrid
    return r2_obs * (y.size / n_obs) + structured


def iterative_gap_fill(
    x: np.ndarray,
    n_components: int,
    *,
    max_iter: int = 50,
    tol: float = 1e-8,
    ridge: float = 1e-8,
) -> tuple[np.ndarray, Eigensystem, int]:
    """Offline iterative gap filling (Connolly & Szalay 1999; Yip 2004).

    The pre-streaming state of the art §II-D cites: "a final eigenbasis
    may be calculated iteratively by continuously filling the gaps with
    the previous eigenbasis until convergence is reached".  Alternate

    1. fill every gap from the current mean/eigenbasis
       (:func:`fill_from_basis` per row);
    2. batch PCA on the completed matrix;

    until the filled values stop moving.  This needs *multiple passes
    over the entire dataset* — exactly the cost the paper's streaming
    algorithm avoids by filling each vector once, on arrival, with the
    running basis.  Provided as the offline reference for the gap
    experiments.

    Parameters
    ----------
    x:
        ``(n, d)`` data with NaN gaps.
    n_components:
        Rank of the iterated eigenbasis.

    Returns
    -------
    (filled, eigensystem, n_iter):
        The completed matrix, the converged batch eigensystem, and the
        number of passes performed.
    """
    from .batch import BatchPCA  # local: avoid import cycle

    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    mask = np.isfinite(x)
    if not mask.any(axis=1).all():
        raise ValueError("every row needs at least one observed entry")

    # Pass 0: fill with column means of the observed entries.
    col_mean = np.where(
        mask.any(axis=0),
        np.nansum(np.where(mask, x, 0.0), axis=0)
        / np.maximum(mask.sum(axis=0), 1),
        0.0,
    )
    filled = np.where(mask, x, col_mean)

    pca = BatchPCA(n_components).fit(filled)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        previous = filled[~mask].copy() if (~mask).any() else None
        basis = pca.components_.T
        new_filled = filled.copy()
        for i in np.nonzero(~mask.all(axis=1))[0]:
            row = np.where(mask[i], x[i], np.nan)
            new_filled[i] = fill_from_basis(
                row, pca.mean_, basis, ridge=ridge
            ).filled
        filled = new_filled
        pca = BatchPCA(n_components).fit(filled)
        if previous is None:
            break
        drift = float(np.max(np.abs(filled[~mask] - previous)))
        scale = float(np.max(np.abs(filled))) or 1.0
        if drift <= tol * scale:
            break
    return filled, pca.to_eigensystem(), n_iter
