"""Sliding-window PCA — the §II-B alternative to exponential damping.

"When dealing with the online arrival of data, there are several options
to maintain the eigensystem over varying temporal extents, including a
damping factor or time-based windows ... Both approaches can be
implemented, exploiting sharing strategies for sliding window scenarios."

:class:`RobustIncrementalPCA` implements the damping (α) option; this
module implements the *window* option with the classic block-sharing
strategy: the stream is cut into fixed-size blocks, each block is
summarized by its own truncated eigensystem (cheap, low-rank), and the
window estimate is the merge of the last ``window_blocks`` summaries —
the same merge algebra the parallel synchronization uses (eqs. 15–16),
reused across time instead of across engines.

Compared to the damping estimator:

* expiry is *hard*: an observation older than the window contributes
  exactly nothing (damping only down-weights);
* the per-block summaries are shared: sliding by one block costs one
  merge of ``window_blocks`` factors, not a recompute over the window;
* robustness is inherited by building each block summary with the robust
  streaming estimator.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .eigensystem import Eigensystem
from .merge import merge_eigensystems
from .robust import RobustIncrementalPCA

__all__ = ["SlidingWindowPCA"]


class SlidingWindowPCA:
    """Tuple-based sliding-window PCA from mergeable block summaries.

    Parameters
    ----------
    n_components:
        Eigenpairs reported for the window estimate.
    block_size:
        Observations per block (the slide granularity).
    window_blocks:
        Number of most-recent blocks forming the window; the effective
        window is ``block_size · window_blocks`` observations.
    robust:
        Summarize blocks with the robust streaming estimator (default) or
        the classical one.
    block_components:
        Eigenpairs kept per block summary; more = a more faithful window
        estimate at slightly higher merge cost.  Defaults to
        ``n_components + 2``.
    estimator_kwargs:
        Extra arguments for the per-block estimator.

    Notes
    -----
    The current block contributes to queries too (pro-rated by its fill),
    so :meth:`state` never lags more than one observation.
    """

    def __init__(
        self,
        n_components: int,
        *,
        block_size: int = 500,
        window_blocks: int = 8,
        robust: bool = True,
        block_components: int | None = None,
        estimator_kwargs: dict | None = None,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if block_size < 4:
            raise ValueError(f"block_size must be >= 4, got {block_size}")
        if window_blocks < 1:
            raise ValueError(
                f"window_blocks must be >= 1, got {window_blocks}"
            )
        self.n_components = int(n_components)
        self.block_size = int(block_size)
        self.window_blocks = int(window_blocks)
        self.robust = bool(robust)
        self.block_components = int(
            block_components
            if block_components is not None
            else n_components + 2
        )
        self.estimator_kwargs = dict(estimator_kwargs or {})
        self._blocks: deque[Eigensystem] = deque(maxlen=window_blocks)
        self._current = self._new_block_estimator()
        self._current_count = 0
        self.n_seen = 0

    def _new_block_estimator(self):
        kwargs = dict(self.estimator_kwargs)
        # Robust init needs enough points that a k-plane cannot
        # interpolate half of them (M-scale exact-fit degeneracy).
        kwargs.setdefault(
            "init_size",
            min(max(4 * self.block_components, 24), self.block_size),
        )
        if self.robust:
            # Within a block, forget with an effective window of half the
            # block: the non-robust warm-up transient (§II-B) washes out
            # before the block is sealed, so a contaminated init cannot
            # poison the summary.
            kwargs.setdefault("alpha", 1.0 - 2.0 / self.block_size)
            # A short block cannot afford the non-robust init transient;
            # warm-start each block robustly.
            kwargs.setdefault("robust_init", True)
            return RobustIncrementalPCA(
                self.block_components, **kwargs
            )
        from .incremental import IncrementalPCA

        kwargs.pop("extra_components", None)
        return IncrementalPCA(self.block_components, **kwargs)

    @property
    def window_size(self) -> int:
        """Nominal window extent in observations."""
        return self.block_size * self.window_blocks

    def update(self, x: np.ndarray) -> None:
        """Consume one observation."""
        self._current.update(np.asarray(x, dtype=np.float64))
        self._current_count += 1
        self.n_seen += 1
        if self._current_count >= self.block_size:
            self._seal_block()

    def partial_fit(self, x: np.ndarray) -> "SlidingWindowPCA":
        """Consume a block of observations of shape ``(n, d)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for row in x:
            self.update(row)
        return self

    def _seal_block(self) -> None:
        if self._current.is_initialized:
            self._blocks.append(self._current.state.copy())
        self._current = self._new_block_estimator()
        self._current_count = 0

    def state(self) -> Eigensystem:
        """The merged window eigensystem (sealed blocks + current fill)."""
        summaries = list(self._blocks)
        if (
            self._current_count > 0
            and self._current.is_initialized
        ):
            summaries.append(self._current.state)
        if not summaries:
            raise RuntimeError(
                "window is empty: fewer than one initialized block seen"
            )
        return merge_eigensystems(summaries, self.n_components)

    @property
    def components_(self) -> np.ndarray:
        """Window eigenvectors as rows, ``(p, d)``."""
        return self.state().basis.T

    @property
    def eigenvalues_(self) -> np.ndarray:
        """Window eigenvalues (descending)."""
        return self.state().eigenvalues

    @property
    def mean_(self) -> np.ndarray:
        """Window location estimate."""
        return self.state().mean
