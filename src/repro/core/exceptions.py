"""Shared exception types for the core estimators.

:class:`NotFittedError` subclasses ``RuntimeError`` so existing callers
(and tests) that catch ``RuntimeError`` keep working, while new code can
catch the precise condition — an inference call (``transform``,
``inverse_transform``, ``reconstruction_error``, ``components_``, …)
issued before the estimator finished its warm-up batch solve.
"""

from __future__ import annotations

__all__ = ["NotFittedError"]


class NotFittedError(RuntimeError):
    """An estimator was queried before it was fitted / initialized.

    Raised instead of an opaque ``AttributeError`` (reading a ``None``
    field) or a bare assert when ``transform``-style methods run before
    the warm-up buffer has filled and the eigensystem exists.
    """
