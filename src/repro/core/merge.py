"""Combining eigensystems from parallel PCA engines (paper Section II-C).

When the stream is split over independent engines, their eigensystems are
periodically combined so that "the resulting eigensystem can be obtained
from any node".  The combination weights follow the robust running weight
sums: for two systems ``γ₁ = v₁/(v₁+v₂)``.

The exact pooled second moment is the law of total covariance:

.. math::

    \\mu = \\sum_i \\gamma_i \\mu_i, \\qquad
    C = \\sum_i \\gamma_i C_i
      + \\sum_i \\gamma_i (\\mu_i - \\mu)(\\mu_i - \\mu)^T .

(The paper's eq. 15 prints the µᵢµᵢᵀ terms without their γ weights; the
γ-weighted form above is the algebraically correct one — with the weights
in place the two-system mean terms collapse to the familiar
``γ₁γ₂ (µ₁-µ₂)(µ₁-µ₂)ᵀ``.)

As with the streaming update, the merged covariance is a product ``A Aᵀ``
of a skinny factor — columns ``Eᵢ√(γᵢΛᵢ)`` plus one mean-difference column
per system — so the merged eigensystem again comes from a tiny Gram
matrix (paper eq. 16 is the special case that drops the mean columns when
the locations already agree).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .eigensystem import Eigensystem
from .lowrank import eigensystem_of_factor

__all__ = [
    "merge_weights",
    "merge_eigensystems",
    "merge_pair",
    "eigensystems_consistent",
]


def merge_weights(systems: Sequence[Eigensystem]) -> np.ndarray:
    """Normalized combination weights ``γᵢ = vᵢ / Σ vⱼ``.

    Falls back to the unweighted counts ``uᵢ`` when the robust weight sums
    are all zero (e.g. classical engines), and to uniform weights when
    even those are zero.
    """
    v = np.array([s.sum_weight for s in systems], dtype=np.float64)
    if np.any(v < 0):
        raise ValueError("weight sums must be non-negative")
    if v.sum() <= 0:
        v = np.array([s.sum_count for s in systems], dtype=np.float64)
    if v.sum() <= 0:
        v = np.ones(len(systems))
    return v / v.sum()


def merge_eigensystems(
    systems: Sequence[Eigensystem],
    n_components: int,
    *,
    weights: Sequence[float] | None = None,
    exact: bool = True,
) -> Eigensystem:
    """Merge any number of eigensystems into one.

    Parameters
    ----------
    systems:
        Eigensystems of identical dimension.
    n_components:
        Number of leading eigenpairs to retain in the merged system.
    weights:
        Combination weights ``γᵢ`` (normalized internally); default from
        :func:`merge_weights`.
    exact:
        Include the mean-difference columns (exact pooled covariance).
        ``False`` reproduces the paper's eq. 16 approximation, valid when
        the locations are already close — cheaper by ``len(systems)``
        factor columns.

    Returns
    -------
    Eigensystem
        Pooled state.  Running sums are added across inputs (the engines
        are assumed statistically independent at merge time — the point of
        the 1.5·N sync gate); ``n_since_sync`` is reset to zero.
    """
    if not systems:
        raise ValueError("need at least one eigensystem to merge")
    dim = systems[0].dim
    for s in systems[1:]:
        if s.dim != dim:
            raise ValueError(f"dimension mismatch: {s.dim} != {dim}")
    if len(systems) == 1:
        out = systems[0].copy()
        out.mark_synced()
        return out

    if weights is None:
        gammas = merge_weights(systems)
    else:
        gammas = np.asarray(weights, dtype=np.float64)
        if gammas.shape != (len(systems),) or np.any(gammas < 0):
            raise ValueError("weights must be non-negative, one per system")
        total = gammas.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        gammas = gammas / total

    mean = np.zeros(dim)
    for g, s in zip(gammas, systems):
        mean += g * s.mean

    cols = []
    for g, s in zip(gammas, systems):
        if s.n_components:
            cols.append(s.basis * np.sqrt(g * np.clip(s.eigenvalues, 0, None)))
        if exact:
            cols.append((np.sqrt(g) * (s.mean - mean))[:, None])
    if cols:
        factor = np.concatenate(cols, axis=1)
        basis, eigenvalues = eigensystem_of_factor(factor, n_components)
    else:  # pragma: no cover - all-empty systems
        basis, eigenvalues = np.zeros((dim, 0)), np.zeros(0)

    u = sum(s.sum_count for s in systems)
    v = sum(s.sum_weight for s in systems)
    q = sum(s.sum_weighted_r2 for s in systems)
    # Pool the scales with the same γ weights used for the covariance.
    scale = float(sum(g * s.scale for g, s in zip(gammas, systems)))
    return Eigensystem(
        mean=mean,
        basis=basis,
        eigenvalues=eigenvalues,
        scale=scale,
        sum_count=u,
        sum_weight=v,
        sum_weighted_r2=q,
        n_seen=sum(s.n_seen for s in systems),
        n_since_sync=0,
    )


def merge_pair(
    sys1: Eigensystem,
    sys2: Eigensystem,
    n_components: int,
    *,
    exact: bool = True,
) -> Eigensystem:
    """Two-system merge — the operation performed per ring-sync message."""
    return merge_eigensystems([sys1, sys2], n_components, exact=exact)


def eigensystems_consistent(
    systems: Sequence[Eigensystem],
    *,
    angle_tol: float = 0.5,
    scale_rtol: float = 1.0,
) -> bool:
    """Cheap consistency check across engines (Section III-B motivation).

    Returns True when every pair of systems (a) spans subspaces whose
    largest principal angle is below ``angle_tol`` radians and (b) has
    scales within a relative factor ``scale_rtol`` of each other.  Used by
    the sync controller to detect an engine whose state has wandered (bad
    initialization, an outlier burst, …).
    """
    from .metrics import largest_principal_angle  # local: avoid cycle

    for i, a in enumerate(systems):
        for b in systems[i + 1 :]:
            if a.n_components and b.n_components:
                if largest_principal_angle(a.basis, b.basis) > angle_tol:
                    return False
            hi, lo = max(a.scale, b.scale), min(a.scale, b.scale)
            if lo > 0 and (hi - lo) / lo > scale_rtol:
                return False
    return True
