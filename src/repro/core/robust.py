"""Robust incremental PCA — the paper's core algorithm (Sections II-A/B/D).

Combines three ingredients:

* the **low-rank streaming covariance update** of eqs. 1–3 (classical
  incremental PCA, :mod:`repro.core.incremental`);
* the **M-scale robustification** of Maronna (2005): each observation's
  contribution to the mean and covariance is weighted by
  ``w = W(r²/σ²)`` where ``σ²`` is itself maintained as a streaming
  M-scale — gross outliers receive (near-)zero weight and cannot capture
  the eigenvectors;
* the **exponentially-weighted recursions** of eqs. 9–14: running sums
  ``u, v, q`` with forgetting factor ``α`` define the blending
  coefficients ``γ₁, γ₂, γ₃`` for the mean, covariance, and scale.  ``α``
  sets the effective sample size ``N = 1/(1-α)`` and lets the solution
  both track drift and wash out the non-robust initial transient.

Gappy observations (NaN entries) are patched on the fly with the current
eigenbasis, and their residuals corrected with ``q`` higher-order
components so patched bins don't inflate the weights (Section II-D).

A numerically important detail: the paper's covariance recursion (eq. 10)
contains ``(1-γ₂)·σ²·y yᵀ/r²``, which looks singular as ``r² → 0``.  But
``1-γ₂ = w·r²/q_new`` exactly, so the update coefficient is
``w·σ²/q_new`` — finite always — and that is what we compute.  A zero
weight therefore skips the (only expensive) eigensolve entirely: rejected
outliers are nearly free.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from . import kernels as _kernels
from .calibration import calibrate_c2
from .eigensystem import Eigensystem
from .exceptions import NotFittedError
from .gaps import (
    GAP_RESIDUAL_MODES,
    GapFillResult,
    estimate_residual_norm2,
    fill_block_from_basis,
    fill_from_basis,
)
from .incremental import BlockUpdateResult, UpdateResult, _WarmupBuffer
from .lowrank import rank_k_update, rank_one_update
from .rho import RhoFunction, make_rho

__all__ = ["RobustIncrementalPCA", "RobustEigenvalueEstimator"]


class RobustIncrementalPCA:
    """Streaming robust PCA with M-scale weighting and forgetting.

    Parameters
    ----------
    n_components:
        Number of reported eigenpairs ``p``.
    extra_components:
        Number ``q`` of additional higher-order eigenpairs maintained
        internally, used to estimate residuals in gap-filled bins
        (Section II-D).  ``0`` disables the correction.
    alpha:
        Forgetting factor ``α ∈ (0, 1]``; the effective window is
        ``N = 1/(1-α)`` observations.  ``α = 1`` is the infinite-memory
        classical limit.
    delta:
        M-scale breakdown parameter ``δ ∈ (0, 1)``.  The estimator resists
        a contaminated fraction up to ``min(δ, 1-δ)``.
    rho:
        A :class:`~repro.core.rho.RhoFunction`, a family name, or ``None``.
        When the tuning constant is not given explicitly it is calibrated
        at initialization time so the M-scale is Fisher-consistent at the
        Gaussian model with ``dof = d - p`` (see
        :mod:`repro.core.calibration`).
    init_size:
        Warm-up buffer size for the batch initialization.
    robust_init:
        Initialize from a Maronna batch-robust fit of the warm-up buffer
        instead of the paper's plain SVD ("our iteration starts from a
        non-robust set of eigenspectra").  Costs a few extra SVDs once,
        and removes the initial transient that otherwise lets early
        outliers into the eigensystem — valuable when the effective
        window is short (e.g. per-block summaries).
    handle_gaps:
        Patch NaN entries with the running eigenbasis before updating.
    gap_residual_mode:
        How to estimate ``r²`` for patched observations — one of
        :data:`repro.core.gaps.GAP_RESIDUAL_MODES` (default
        ``"higher-order"``, the paper's §II-D correction; it only has an
        effect when ``extra_components > 0``).
    min_observed_fraction:
        Gappy vectors with fewer observed entries than this fraction are
        skipped outright (an all-NaN vector carries no information).

    Notes
    -----
    Per-update cost is ``O(d·(p+q)²)`` for inliers and ``O(d·(p+q))`` for
    rejected outliers (no eigensolve).  No ``d × d`` matrix is formed.
    """

    def __init__(
        self,
        n_components: int,
        *,
        extra_components: int = 0,
        alpha: float = 0.999,
        delta: float = 0.5,
        rho: RhoFunction | str | None = None,
        rho_c2: float | None = None,
        init_size: int = 20,
        robust_init: bool = False,
        handle_gaps: bool = True,
        gap_residual_mode: str = "higher-order",
        min_observed_fraction: float = 0.05,
        outlier_t: float | None = None,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if extra_components < 0:
            raise ValueError(
                f"extra_components must be >= 0, got {extra_components}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        if init_size < 2:
            raise ValueError(f"init_size must be >= 2, got {init_size}")
        if not 0.0 <= min_observed_fraction <= 1.0:
            raise ValueError("min_observed_fraction must lie in [0, 1]")
        if gap_residual_mode not in GAP_RESIDUAL_MODES:
            raise ValueError(
                f"unknown gap_residual_mode {gap_residual_mode!r}; "
                f"choose from {GAP_RESIDUAL_MODES}"
            )

        self.n_components = int(n_components)
        self.extra_components = int(extra_components)
        self.alpha = float(alpha)
        self.delta = float(delta)
        self.init_size = int(init_size)
        self.robust_init = bool(robust_init)
        self.handle_gaps = bool(handle_gaps)
        self.gap_residual_mode = gap_residual_mode
        self.min_observed_fraction = float(min_observed_fraction)
        self._rho_spec: RhoFunction | str | None = rho
        self._rho_c2 = rho_c2
        self._rho: RhoFunction | None = (
            rho if isinstance(rho, RhoFunction) else None
        )
        self._outlier_t = outlier_t

        self._buffer = _WarmupBuffer(self.init_size)
        self._state: Eigensystem | None = None
        self.n_outliers = 0
        self.n_skipped = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def state(self) -> Eigensystem:
        """Full internal eigensystem (``p + q`` components)."""
        if self._state is None:
            raise NotFittedError(
                "eigensystem not initialized yet: "
                f"{self._buffer.count}/{self.init_size} warm-up vectors "
                "seen — feed more observations before querying the fit"
            )
        return self._state

    @property
    def is_initialized(self) -> bool:
        """Whether the warm-up batch solve has happened."""
        return self._state is not None

    @property
    def rho(self) -> RhoFunction:
        """The rho-function in use (calibrated lazily at initialization)."""
        if self._rho is None:
            raise NotFittedError(
                "rho is not calibrated yet: it is fixed at initialization "
                "time (after the warm-up buffer fills)"
            )
        return self._rho

    @property
    def n_seen(self) -> int:
        """Total observations consumed (including warm-up and outliers)."""
        if self._state is not None:
            return self._state.n_seen
        return self._buffer.count

    @property
    def effective_window(self) -> float:
        """``N = 1/(1-α)`` — the effective sample size (∞ for α=1)."""
        return float("inf") if self.alpha >= 1.0 else 1.0 / (1.0 - self.alpha)

    @property
    def components_(self) -> np.ndarray:
        """The reported ``p`` leading eigenvectors as rows, ``(p, d)``."""
        return self.state.basis[:, : self.n_components].T

    @property
    def eigenvalues_(self) -> np.ndarray:
        """The reported ``p`` leading eigenvalues."""
        return self.state.eigenvalues[: self.n_components]

    @property
    def mean_(self) -> np.ndarray:
        """Current robust location estimate."""
        return self.state.mean

    @property
    def scale_(self) -> float:
        """Current robust residual scale ``σ²``."""
        return self.state.scale

    def public_state(self) -> Eigensystem:
        """A copy of the state truncated to the reported ``p`` components.

        This is the unit shipped to other engines during synchronization.
        """
        st = self.state
        p = self.n_components
        out = st.copy()
        out.basis = out.basis[:, :p].copy()
        out.eigenvalues = out.eigenvalues[:p].copy()
        return out

    def replace_state(self, new_state: Eigensystem) -> None:
        """Install a merged eigensystem (used after synchronization).

        The incoming state may carry fewer components than the internal
        ``p + q``; missing higher-order directions regrow from subsequent
        updates.
        """
        if self._state is None:
            raise RuntimeError("cannot replace state before initialization")
        if new_state.dim != self._state.dim:
            raise ValueError(
                f"dimension mismatch: {new_state.dim} != {self._state.dim}"
            )
        self._state = new_state.copy()

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def update(self, x: np.ndarray) -> UpdateResult | None:
        """Consume one observation; ``None`` while warming up or skipped."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"update expects a single vector, got {x.shape}")
        if self._state is None:
            self._buffer_warmup(x)
            return None
        return self._update_initialized(x)

    def update_block(self, x: np.ndarray) -> BlockUpdateResult:
        """Consume a ``(k, d)`` block through the vectorized block kernel.

        Warm-up rows are buffered per row (gap patching needs the running
        column medians); every post-initialization row is processed by
        rank-``k`` block updates — vectorized gap filling, residuals,
        robust weighting, and a single eigensolve per block.  For
        ``α < 1`` very large blocks are chunked so the per-block
        forgetting approximation stays within the documented contract
        (see docs/performance.md).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2:
            raise ValueError(f"update_block expects (k, d), got {x.shape}")
        n_buffered = 0
        i = 0
        while self._state is None and i < x.shape[0]:
            skipped_before = self.n_skipped
            self._buffer_warmup(x[i])
            i += 1
            if self.n_skipped == skipped_before:
                n_buffered += 1
        warm_skipped = i - n_buffered
        x = x[i:]
        if x.shape[0] == 0 or self._state is None:
            return BlockUpdateResult.empty(
                n_buffered=n_buffered, n_skipped=warm_skipped
            )
        parts = []
        offset = i
        for chunk in self._iter_chunks(x):
            part = self._update_block_initialized(chunk)
            if part.indices is not None:
                part = replace(part, indices=part.indices + offset)
            offset += chunk.shape[0]
            parts.append(part)
        result = BlockUpdateResult.concat(parts)
        if n_buffered or warm_skipped:
            result = replace(
                result,
                n_buffered=result.n_buffered + n_buffered,
                n_skipped=result.n_skipped + warm_skipped,
            )
        return result

    def partial_fit(self, x: np.ndarray) -> "RobustIncrementalPCA":
        """Consume a block of observations of shape ``(n, d)``.

        Routes through :meth:`update_block` — one vectorized rank-``k``
        eigensolve per block instead of a Python loop of rank-one
        updates per row.
        """
        self.update_block(x)
        return self

    fit = partial_fit

    def _chunk_limit(self) -> int:
        """Cap on rows per rank-``k`` eigensolve.

        The block path evaluates residuals/weights against the
        block-start state and applies forgetting per block rather than
        per row; chunking to a fraction of the effective window
        ``N = 1/(1-α)`` (and to an absolute cap that keeps the basis
        fresh) keeps that approximation mild regardless of upstream
        batch size.
        """
        from .incremental import _MAX_BLOCK_ROWS

        if self.alpha >= 1.0:
            return _MAX_BLOCK_ROWS
        window_cap = max(1, int(0.25 / (1.0 - self.alpha)))
        return min(_MAX_BLOCK_ROWS, window_cap)

    def _iter_chunks(self, x: np.ndarray):
        limit = self._chunk_limit()
        if x.shape[0] <= limit:
            yield x
            return
        for start in range(0, x.shape[0], limit):
            yield x[start : start + limit]

    def _buffer_warmup(self, x: np.ndarray) -> None:
        mask = np.isfinite(x)
        frac = float(np.count_nonzero(mask)) / max(x.size, 1)
        if frac < max(self.min_observed_fraction, 1e-12):
            self.n_skipped += 1
            return
        if not np.all(mask):
            # No basis yet: patch warm-up gaps with the column median of
            # the buffered observed values (falls back to 0).  Buffered
            # rows are themselves already patched, hence finite.
            x = x.copy()
            if self._buffer.count:
                col_med = np.median(self._buffer.view(), axis=0)
            else:
                col_med = np.zeros_like(x)
            x[~mask] = col_med[~mask]
        self._buffer.append(np.asarray(x, dtype=np.float64))
        if self._buffer.is_full:
            self._initialize()

    def _initialize(self) -> None:
        batch = self._buffer.view()
        k = self.n_components + self.extra_components
        if self.robust_init:
            self._state = self._robust_batch_state(batch, k)
        else:
            self._state = Eigensystem.from_batch(batch, k)
        self._buffer.clear()
        self._calibrate_rho(self._state.dim)

    def _calibrate_rho(self, dim: int) -> None:
        """Fix the rho-function for dimensionality ``dim`` (idempotent)."""
        if self._rho is not None:
            return
        dof = max(dim - self.n_components, 1)
        family = (
            self._rho_spec if isinstance(self._rho_spec, str) else "bisquare"
        )
        c2 = (
            self._rho_c2
            if self._rho_c2 is not None
            else calibrate_c2(self.delta, dof, family)
        )
        self._rho = make_rho(family, c2=c2)

    def adopt_state(self, state: Eigensystem) -> None:
        """Install ``state`` on a *fresh* (uninitialized) estimator.

        The cross-process restart path: a respawned worker holds a brand
        new estimator and a checkpointed eigensystem.  Unlike
        :meth:`replace_state` (which requires prior initialization), this
        performs the initialization side effects itself — calibrating the
        rho-function for the state's dimensionality and discarding any
        partial warm-up buffer — so streaming resumes exactly where the
        snapshot left off.
        """
        if self._state is not None:
            self.replace_state(state)
            return
        self._state = state.copy()
        self._buffer.clear()
        self._calibrate_rho(self._state.dim)

    def _robust_batch_state(self, batch: np.ndarray, k: int) -> Eigensystem:
        """Maronna batch-robust warm start (see ``robust_init``)."""
        from .batch import BatchRobustPCA  # local: avoid import cycle

        n = batch.shape[0]
        fit = BatchRobustPCA(k, delta=self.delta).fit(batch)
        # Exact-fit degeneracy guard: with n ≲ 2k a k-plane can
        # interpolate ≥ (1-δ) of the points, collapsing the M-scale to 0
        # (no positive solution of eq. 5).  The plain SVD init is the
        # safe fallback there.
        plain = Eigensystem.from_batch(batch, k)
        if fit.scale_ <= 1e-9 * max(plain.scale, 1e-300):
            return plain
        state = fit.to_eigensystem()
        # A warm-up outlier can hide *inside* the k-plane (zero residual,
        # full weight) when k exceeds the true rank, poisoning one
        # component with a huge eigenvalue.  Re-estimate each eigenvalue
        # as the paper's §II-B robust scatter — the M-scale of the data's
        # projections onto that eigenvector — which collapses a direction
        # supported by a lone outlier down to the inlier variance there.
        from .batch import mscale_fixed_point

        rho1 = make_rho("bisquare", c2=calibrate_c2(self.delta, 1))
        proj = (batch - state.mean) @ state.basis
        # The hidden outlier also drags the weighted mean along its
        # direction; re-center each direction at the projection median
        # (and fold the correction back into the location estimate).
        med = np.median(proj, axis=0)
        state.mean = state.mean + state.basis @ med
        centered2 = (proj - med) ** 2
        lam = np.array(
            [
                mscale_fixed_point(centered2[:, j], rho1, self.delta)
                for j in range(state.n_components)
            ]
        )
        order = np.argsort(lam)[::-1]
        state.basis = state.basis[:, order]
        state.eigenvalues = np.clip(lam[order], 1e-12, None)
        # Seed the running sums in the recursion's own units: v and q
        # accumulate W-scale weights and weighted squared residuals.
        y = batch - fit.mean_
        resid = y - (y @ fit.components_.T) @ fit.components_
        r2 = np.sum(resid * resid, axis=1)
        state.sum_count = float(n)
        state.sum_weight = float(np.sum(fit.weights_))
        state.sum_weighted_r2 = float(np.sum(fit.weights_ * r2))
        state.n_seen = n
        state.n_since_sync = n
        return state

    def _update_initialized(self, x: np.ndarray) -> UpdateResult | None:
        st = self._state
        rho = self._rho
        assert st is not None and rho is not None
        if x.shape != (st.dim,):
            raise ValueError(f"expected vector of dim {st.dim}, got {x.shape}")

        p = self.n_components
        basis_p = st.basis[:, :p]
        basis_extra = st.basis[:, p:]

        # --- gap handling -------------------------------------------------
        n_filled = 0
        mask = np.isfinite(x)
        if not np.all(mask):
            if not self.handle_gaps:
                raise ValueError(
                    "observation contains NaN but handle_gaps=False"
                )
            frac = float(np.count_nonzero(mask)) / x.size
            if frac < max(self.min_observed_fraction, 1e-12):
                self.n_skipped += 1
                return None
            fill: GapFillResult = fill_from_basis(x, st.mean, basis_p)
            x = fill.filled
            n_filled = fill.n_filled

        # --- residual and robust weights (against the previous state) ----
        y_prev = x - st.mean
        if n_filled:
            r2 = estimate_residual_norm2(
                y_prev, mask, basis_p, basis_extra, self.gap_residual_mode
            )
        else:
            r = y_prev - basis_p @ (basis_p.T @ y_prev)
            r2 = float(r @ r)
        scale_prev = st.scale if st.scale > 0 else 1.0
        t = r2 / scale_prev
        w = float(rho.weight(t))
        wstar = float(rho.wstar(t))
        is_outlier = t >= self._outlier_threshold()
        if is_outlier:
            self.n_outliers += 1

        # --- running sums and blending coefficients (eqs. 12-14) ---------
        u_new = self.alpha * st.sum_count + 1.0
        v_new = self.alpha * st.sum_weight + w
        q_new = self.alpha * st.sum_weighted_r2 + w * r2
        gamma3 = self.alpha * st.sum_count / u_new

        # --- location (eq. 9) ---------------------------------------------
        if v_new > 0.0:
            one_minus_gamma1 = w / v_new
            st.mean = st.mean + one_minus_gamma1 * (x - st.mean)

        # --- covariance (eq. 10, rewritten without the 1/r² singularity) --
        if q_new > 0.0 and w > 0.0 and r2 > 0.0:
            gamma2 = self.alpha * st.sum_weighted_r2 / q_new
            coeff = w * scale_prev / q_new
            y = x - st.mean
            k = p + self.extra_components
            st.basis, st.eigenvalues = rank_one_update(
                st.basis, st.eigenvalues, y, gamma2, coeff, k
            )

        # --- scale (eq. 11) -------------------------------------------------
        st.scale = gamma3 * st.scale + (1.0 - gamma3) * wstar * r2 / self.delta

        st.sum_count = u_new
        st.sum_weight = v_new
        st.sum_weighted_r2 = q_new
        st.n_seen += 1
        st.n_since_sync += 1
        return UpdateResult(
            weight=w,
            scaled_residual=t,
            residual_norm2=r2,
            is_outlier=is_outlier,
            n_filled=n_filled,
        )

    def _update_block_initialized(self, x: np.ndarray) -> BlockUpdateResult:
        """One rank-``k`` robust update over a block.

        Unrolls the running sums of eqs. 12–14 in closed form (per-row
        decay weights ``α^{k-j}``), vectorizes gap filling, residual
        computation, and the ρ-weighting, and performs a single
        rank-``k`` eigensolve.  Residuals/weights are evaluated against
        the block-*start* state and the mean/covariance are blended once
        per block — the per-block forgetting approximation documented in
        docs/performance.md (exact in the α=1, no-truncation-loss limit).
        """
        st = self._state
        rho = self._rho
        assert st is not None and rho is not None
        if x.shape[1] != st.dim:
            raise ValueError(
                f"expected vectors of dim {st.dim}, got dim {x.shape[1]}"
            )

        p = self.n_components
        basis_p = st.basis[:, :p]
        basis_extra = st.basis[:, p:]

        # --- gap handling (vectorized; per-row solve only for gappy rows)
        mask = np.isfinite(x)
        n_skipped = 0
        n_filled_per_row = np.zeros(x.shape[0], dtype=np.int64)
        gappy_rows = np.zeros(0, dtype=np.int64)
        kept_idx = np.arange(x.shape[0], dtype=np.int64)
        if not mask.all():
            if not self.handle_gaps:
                raise ValueError(
                    "observation contains NaN but handle_gaps=False"
                )
            frac = mask.sum(axis=1) / x.shape[1]
            keep = frac >= max(self.min_observed_fraction, 1e-12)
            n_skipped = int(np.count_nonzero(~keep))
            if n_skipped:
                self.n_skipped += n_skipped
                x = x[keep]
                mask = mask[keep]
                kept_idx = kept_idx[keep]
                if x.shape[0] == 0:
                    return BlockUpdateResult.empty(n_skipped=n_skipped)
            fill = fill_block_from_basis(x, st.mean, basis_p)
            x = fill.filled
            n_filled_per_row = fill.n_filled_per_row
            gappy_rows = fill.gappy_rows
        k = x.shape[0]

        # --- residuals and robust weights (against the block-start state)
        y_prev = x - st.mean
        r2 = _kernels.residual_norm2_block(
            np.ascontiguousarray(y_prev), np.ascontiguousarray(basis_p)
        )
        for i in gappy_rows:
            r2[i] = estimate_residual_norm2(
                y_prev[i], mask[i], basis_p, basis_extra,
                self.gap_residual_mode,
            )
        scale_prev = st.scale if st.scale > 0 else 1.0
        t = r2 / scale_prev
        w, wstar = rho.block_weights(t)
        is_outlier = t >= self._outlier_threshold()
        self.n_outliers += int(np.count_nonzero(is_outlier))

        # --- running sums, unrolled in closed form (eqs. 12-14) -----------
        a = self.alpha
        j = np.arange(1, k + 1, dtype=np.float64)
        if a >= 1.0:
            pw = np.ones(k)
            decay_k = 1.0
        else:
            pw = a ** (k - j)
            decay_k = float(a ** k)
        u_new = decay_k * st.sum_count + float(pw.sum())
        v_new = decay_k * st.sum_weight + float(pw @ w)
        q_new = decay_k * st.sum_weighted_r2 + float(pw @ (w * r2))
        gamma3 = decay_k * st.sum_count / u_new

        # --- location (block form of eq. 9) -------------------------------
        if v_new > 0.0:
            st.mean = st.mean + ((pw * w) @ (x - st.mean)) / v_new

        # --- covariance (eq. 10, one rank-k eigensolve) --------------------
        if q_new > 0.0 and np.any(w * r2 > 0.0):
            gamma2 = decay_k * st.sum_weighted_r2 / q_new
            coeff = pw * w * scale_prev / q_new
            y = x - st.mean
            k_tot = p + self.extra_components
            st.basis, st.eigenvalues = rank_k_update(
                st.basis, st.eigenvalues, y, gamma2, coeff, k_tot
            )

        # --- scale (eq. 11, unrolled) --------------------------------------
        st.scale = gamma3 * st.scale + float(pw @ (wstar * r2)) / (
            u_new * self.delta
        )

        st.sum_count = u_new
        st.sum_weight = v_new
        st.sum_weighted_r2 = q_new
        st.n_seen += k
        st.n_since_sync += k
        return BlockUpdateResult(
            weights=w,
            scaled_residuals=t,
            residual_norm2=r2,
            is_outlier=is_outlier,
            n_processed=k,
            n_skipped=n_skipped,
            n_filled=int(n_filled_per_row.sum()),
            indices=kept_idx,
        )

    def _outlier_threshold(self) -> float:
        if self._outlier_t is not None:
            return self._outlier_t
        rej = self.rho.rejection_point()
        return rej if np.isfinite(rej) else 4.0 * self.rho.c2

    # ------------------------------------------------------------------
    # Synchronization support (Section II-C gate)
    # ------------------------------------------------------------------

    def ready_to_sync(self, factor: float = 1.5) -> bool:
        """The data-driven gate: sync only once the local solution has
        decorrelated from the last shared state, i.e. after more than
        ``factor · N`` new observations with ``N = 1/(1-α)``.

        The paper uses ``factor = 1.5`` as "a good compromise between the
        speed and consistency of eigensystems".  Always ``False`` for
        ``α = 1`` (infinite window never decorrelates).
        """
        if self._state is None:
            return False
        n = self.effective_window
        if not np.isfinite(n):
            return False
        return self._state.n_since_sync > factor * n

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Expansion coefficients on the reported ``p`` components."""
        st = self.state
        y = st.center(x)
        return np.asarray(y) @ st.basis[:, : self.n_components]

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map ``p``-dim coefficients back to the ambient space."""
        st = self.state
        return (
            np.asarray(z, dtype=np.float64)
            @ st.basis[:, : self.n_components].T
            + st.mean
        )

    def weight_of(self, x: np.ndarray) -> float:
        """Robust weight the current state would assign to ``x``."""
        st = self.state
        y = x - st.mean
        basis_p = st.basis[:, : self.n_components]
        r = y - basis_p @ (basis_p.T @ y)
        t = float(r @ r) / (st.scale if st.scale > 0 else 1.0)
        return float(self.rho.weight(t))


class RobustEigenvalueEstimator:
    """Streaming robust eigenvalue along a *fixed* basis vector.

    Section II-B: "robust eigenvalues can be computed for any basis
    vectors in a consistent way" by solving the M-scale equation with the
    residual replaced by the projection ``r_n = eᵀ y_n``.  The resulting
    ``σ²`` is a robust estimate of the variance ``λ`` along ``e``, which
    makes scatter comparable across *different* bases (e.g. robust vs
    classical eigenspectra).

    The recursion mirrors eqs. 11 & 14 with ``dof = 1`` calibration.
    """

    def __init__(
        self,
        direction: np.ndarray,
        mean: np.ndarray,
        *,
        alpha: float = 0.999,
        delta: float = 0.5,
        rho: RhoFunction | None = None,
    ) -> None:
        self.direction = np.asarray(direction, dtype=np.float64)
        norm = float(np.linalg.norm(self.direction))
        if norm <= 0:
            raise ValueError("direction must be a nonzero vector")
        self.direction = self.direction / norm
        self.mean = np.asarray(mean, dtype=np.float64)
        if self.mean.shape != self.direction.shape:
            raise ValueError("mean and direction must have the same shape")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must lie in (0, 1), got {delta}")
        self.alpha = float(alpha)
        self.delta = float(delta)
        self.rho = rho if rho is not None else make_rho(
            "bisquare", c2=calibrate_c2(delta, dof=1)
        )
        self.scale = 0.0
        self.sum_count = 0.0
        self.n_seen = 0

    @property
    def eigenvalue(self) -> float:
        """The current robust λ estimate along the direction."""
        return self.scale

    def update(self, x: np.ndarray) -> float:
        """Consume one observation, return the projection used."""
        proj = float(self.direction @ (np.asarray(x, np.float64) - self.mean))
        r2 = proj * proj
        if self.n_seen == 0:
            # Seed the scale with the first squared projection (any
            # positive seed works; the fixed point forgets it).
            self.scale = max(r2, 1e-12)
        t = r2 / self.scale if self.scale > 0 else 0.0
        wstar = float(self.rho.wstar(t))
        u_new = self.alpha * self.sum_count + 1.0
        gamma3 = self.alpha * self.sum_count / u_new
        self.scale = gamma3 * self.scale + (1 - gamma3) * wstar * r2 / self.delta
        self.sum_count = u_new
        self.n_seen += 1
        return proj
