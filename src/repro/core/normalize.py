"""Spectrum normalization — the Euclidean-metric precondition of §II-D.

PCA assumes the Euclidean metric measures similarity.  Two identical
spectra whose sources differ only in brightness/distance are far apart in
raw flux, so *every* spectrum must be normalized before entering the
streaming algorithm.  With gaps this is subtle: a naive norm over observed
bins is biased low for gappier spectra, so the gappy variants rescale by
the observed fraction (equivalently: they normalize the *mean* flux per
observed bin, which is unbiased under a missing-at-random gap pattern).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "unit_norm",
    "unit_mean_flux",
    "normalize_block",
    "NormalizationError",
]


class NormalizationError(ValueError):
    """Raised when a vector cannot be normalized (zero/negative scale)."""


def _observed(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    return x, np.isfinite(x)


def unit_norm(x: np.ndarray) -> np.ndarray:
    """Scale ``x`` to unit L2 norm, gap-aware.

    For gappy vectors the norm over observed bins is extrapolated by
    ``sqrt(d / n_obs)`` so that fully- and partially-observed versions of
    the same spectrum receive (in expectation) the same scale.
    Missing entries stay NaN.
    """
    x, mask = _observed(x)
    n_obs = int(np.count_nonzero(mask))
    if n_obs == 0:
        raise NormalizationError("cannot normalize a fully-missing vector")
    norm_obs = float(np.sqrt(np.sum(x[mask] ** 2)))
    if norm_obs <= 0.0:
        raise NormalizationError("cannot normalize a zero vector")
    scale = norm_obs * np.sqrt(x.size / n_obs)
    return x / scale


def unit_mean_flux(x: np.ndarray) -> np.ndarray:
    """Scale ``x`` so its mean observed flux is 1 (astronomy convention).

    Robust to gaps by construction (the mean is taken over observed bins).
    Requires a positive mean flux, as is the case for continuum-dominated
    galaxy spectra.
    """
    x, mask = _observed(x)
    if not np.any(mask):
        raise NormalizationError("cannot normalize a fully-missing vector")
    mean_flux = float(np.mean(x[mask]))
    if mean_flux <= 0.0:
        raise NormalizationError(
            f"mean flux must be positive to normalize, got {mean_flux}"
        )
    return x / mean_flux


_METHODS = {"norm": unit_norm, "mean-flux": unit_mean_flux}


def normalize_block(
    x: np.ndarray, method: str = "mean-flux"
) -> np.ndarray:
    """Normalize each row of an ``(n, d)`` block; returns a new array.

    Rows that cannot be normalized raise :class:`NormalizationError` —
    callers that want to *drop* such rows should filter first.
    """
    try:
        fn = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown normalization {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        return fn(x)
    return np.vstack([fn(row) for row in x])
