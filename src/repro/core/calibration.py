"""Calibration of the M-scale tuning constant and breakdown parameter.

The M-scale equation (paper eq. 5) has two free knobs: the breakdown
parameter :math:`\\delta` and the tuning constant of the
:math:`\\rho`-function.  They must be chosen *jointly* so that, at the
nominal (outlier-free) model, the M-scale :math:`\\sigma^2` coincides with
the classical expected squared residual — otherwise the robust eigenvalues
are biased even without contamination.

Under the nominal model the residual vector of a ``p``-dimensional PCA fit
to ``d``-dimensional Gaussian data lives in the ``k = d - p`` dimensional
orthogonal complement, so ``r² = s²·X`` with ``X ~ χ²_k`` and per-component
noise variance ``s²``.  Requiring the M-scale to equal the classical scale
``σ² = E[r²] = s²·k`` turns eq. 5 into the calibration condition

.. math::

    \\mathbb{E}\\left[\\rho\\!\\left(X/k\\right)\\right] = \\delta,
    \\qquad X \\sim \\chi^2_k ,

which we solve for the tuning constant ``c2`` at a given ``delta`` (or for
``delta`` at a given ``c2``).  The breakdown point of the resulting scale
estimate is ``min(delta, 1 - delta)`` (Maronna 2005), so ``delta = 0.5``
maximizes resistance to contamination.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, stats

from .rho import RhoFunction, make_rho

__all__ = [
    "expected_rho",
    "calibrate_c2",
    "calibrate_delta",
    "breakdown_point",
    "consistent_rho",
]

# Fixed-order quadrature over the probability axis: E[g(X)] for X ~ chi2_k is
# evaluated as the average of g over equal-probability quantile nodes.  256
# midpoint nodes are ample for the smooth bounded integrands used here.
_N_QUAD = 256
_PROB_NODES = (np.arange(_N_QUAD) + 0.5) / _N_QUAD


def expected_rho(rho: RhoFunction, dof: int) -> float:
    """``E[rho(X / dof)]`` for ``X ~ chi2(dof)``.

    This is the left-hand side of the M-scale equation evaluated at the
    nominal Gaussian model with the scale fixed to its classical value.
    """
    if dof < 1:
        raise ValueError(f"dof must be >= 1, got {dof}")
    x = stats.chi2.ppf(_PROB_NODES, df=dof)
    return float(np.mean(rho.rho(x / dof)))


def calibrate_c2(
    delta: float,
    dof: int,
    family: str = "bisquare",
    *,
    bracket: tuple[float, float] = (1e-3, 1e6),
) -> float:
    """Solve ``E[rho_{c2}(X/dof)] = delta`` for the tuning constant ``c2``.

    Parameters
    ----------
    delta:
        Target breakdown parameter, ``0 < delta < 1``.  ``E[rho]`` decreases
        monotonically in ``c2`` (a wider acceptance region rejects less), so
        the root is unique.
    dof:
        Effective residual degrees of freedom ``d - p``.
    family:
        Rho family name understood by :func:`repro.core.rho.make_rho`.

    Returns
    -------
    float
        The calibrated ``c2``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")

    def objective(log_c2: float) -> float:
        return expected_rho(make_rho(family, c2=float(np.exp(log_c2))), dof) - delta

    lo, hi = np.log(bracket[0]), np.log(bracket[1])
    f_lo, f_hi = objective(lo), objective(hi)
    if f_lo * f_hi > 0:
        raise ValueError(
            f"calibration bracket {bracket} does not straddle delta={delta} "
            f"for family={family!r}, dof={dof}"
        )
    log_c2 = optimize.brentq(objective, lo, hi, xtol=1e-12, rtol=1e-12)
    return float(np.exp(log_c2))


def calibrate_delta(rho: RhoFunction, dof: int) -> float:
    """The ``delta`` consistent with a *given* rho at the nominal model.

    Inverse convenience of :func:`calibrate_c2`: if you fixed ``c2`` by some
    other criterion, this is the breakdown parameter to feed the streaming
    estimator so it stays unbiased on clean data.
    """
    return expected_rho(rho, dof)


def breakdown_point(delta: float) -> float:
    """Asymptotic breakdown point of an M-scale with parameter ``delta``."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    return min(delta, 1.0 - delta)


def consistent_rho(
    delta: float, dof: int, family: str = "bisquare"
) -> RhoFunction:
    """A rho-function calibrated so the M-scale is Fisher-consistent.

    Shorthand for ``make_rho(family, calibrate_c2(delta, dof, family))``.
    """
    return make_rho(family, c2=calibrate_c2(delta, dof, family))
