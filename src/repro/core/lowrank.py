"""Low-rank eigensystem updates via the Gram-matrix trick.

The heart of the paper's streaming PCA (eqs. 1–3) is the observation that
the updated covariance estimate is always the outer product ``A Aᵀ`` of a
tall, skinny factor ``A`` with only ``p + 1`` columns (or ``2p`` when two
eigensystems are merged).  Its eigensystem can therefore be obtained from
the tiny ``m × m`` Gram matrix ``G = Aᵀ A`` instead of any ``d × d`` object:

.. math::

    G = V W^2 V^T \\;\\Rightarrow\\; A A^T = U W^2 U^T, \\quad
    U = A V W^{-1} .

Per update this costs ``O(d·m² + m³)`` with ``m = p + 1 ≪ d`` — the
"computationally inexpensive algebraic operations" of Section III-A.2.  No
``d × d`` matrix is ever materialized anywhere in the streaming path.
"""

from __future__ import annotations

import numpy as np

from . import kernels as _kernels

__all__ = [
    "eigensystem_of_factor",
    "build_update_factor",
    "build_merge_factor",
    "rank_one_update",
    "rank_k_update",
]

#: Relative threshold below which factor singular values are treated as 0.
_RELATIVE_RANK_TOL = 1e-12


def eigensystem_of_factor(
    a: np.ndarray, p: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-``p`` eigensystem of ``A Aᵀ`` from the skinny factor ``A``.

    Parameters
    ----------
    a:
        Factor of shape ``(d, m)`` with ``m`` small (typically ``p + 1``).
    p:
        Number of leading eigenpairs to return; capped at the numerical
        rank of ``A``.

    Returns
    -------
    (E, lam):
        ``E`` of shape ``(d, p_eff)`` with orthonormal columns (leading
        eigenvectors of ``A Aᵀ``, descending), ``lam`` of shape
        ``(p_eff,)`` with the corresponding non-negative eigenvalues.
        ``p_eff <= p`` when ``A`` is rank-deficient.

    Notes
    -----
    Uses the symmetric eigendecomposition of the ``m × m`` Gram matrix,
    which is cheaper and no less accurate than an SVD of ``A`` for the
    well-separated spectra encountered here.  Columns associated with
    eigenvalues below ``max(lam) * 1e-12`` are dropped rather than divided
    by a near-zero normalizer.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"factor must be 2-D, got shape {a.shape}")
    d, m = a.shape
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if m == 0:
        return np.zeros((d, 0)), np.zeros(0)

    gram = a.T @ a
    # eigh returns ascending order; flip to descending.
    w, v = np.linalg.eigh(gram)
    w = w[::-1]
    v = v[:, ::-1]

    # Numerical rank cut: eigenvalues of G are squared singular values.
    w = np.clip(w, 0.0, None)
    if w.size and w[0] > 0.0:
        keep = w > w[0] * _RELATIVE_RANK_TOL
    else:
        keep = np.zeros_like(w, dtype=bool)
    k = min(p, int(np.count_nonzero(keep)))
    if k == 0:
        return np.zeros((d, 0)), np.zeros(0)

    w_top = w[:k]
    v_top = v[:, :k]
    # U = A V W^{-1}; W = sqrt of Gram eigenvalues.
    e = (a @ v_top) / np.sqrt(w_top)
    # Re-orthonormalize defensively: rounding in the Gram route can leave
    # columns ~1e-8 off orthonormal after many thousands of updates.
    e, r = np.linalg.qr(e)
    # QR may flip signs; eigenvalues are invariant so only E's signs change,
    # which is immaterial (eigenvectors are defined up to sign).
    # Diagonal of R should be ~±1; fold its magnitude drift into nothing.
    return e, w_top


def build_update_factor(
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    y: np.ndarray,
    gamma: float,
    new_weight: float,
) -> np.ndarray:
    """Factor ``A`` for the rank-one covariance update (paper eqs. 2–3).

    Encodes ``C ≈ γ·E Λ Eᵀ + new_weight·y yᵀ = A Aᵀ`` with columns

    .. math::

        a_k = e_k \\sqrt{\\gamma \\lambda_k}, \\qquad
        a_{p+1} = y \\sqrt{\\text{new\\_weight}} .

    ``new_weight`` is ``(1 - γ)`` in the classical recursion (eq. 1) and
    ``(1 - γ₂)·σ²/r²`` in the robust recursion (eq. 10).
    """
    basis = np.asarray(basis, dtype=np.float64)
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if basis.ndim != 2:
        raise ValueError(f"basis must be 2-D, got shape {basis.shape}")
    if eigenvalues.shape != (basis.shape[1],):
        raise ValueError(
            f"eigenvalues shape {eigenvalues.shape} does not match basis "
            f"with {basis.shape[1]} columns"
        )
    if y.shape != (basis.shape[0],):
        raise ValueError(
            f"y shape {y.shape} does not match dimension {basis.shape[0]}"
        )
    if gamma < 0.0 or new_weight < 0.0:
        raise ValueError("gamma and new_weight must be non-negative")

    scaled = basis * np.sqrt(gamma * np.clip(eigenvalues, 0.0, None))
    new_col = (y * np.sqrt(new_weight))[:, None]
    return np.concatenate([scaled, new_col], axis=1)


def build_merge_factor(
    basis1: np.ndarray,
    eigenvalues1: np.ndarray,
    basis2: np.ndarray,
    eigenvalues2: np.ndarray,
    gamma1: float,
    gamma2: float,
    mean_columns: np.ndarray | None = None,
) -> np.ndarray:
    """Factor ``A`` for merging two eigensystems (paper eq. 16).

    Encodes ``C ≈ γ₁ E₁Λ₁E₁ᵀ + γ₂ E₂Λ₂E₂ᵀ (+ Σᵢ mᵢmᵢᵀ) = A Aᵀ``.

    ``mean_columns`` (shape ``(d, k)``), when given, appends extra columns
    that carry the mean-shift terms of the *exact* merge (see
    :mod:`repro.core.merge`); the paper's approximation for nearly-equal
    means omits them.
    """
    basis1 = np.asarray(basis1, dtype=np.float64)
    basis2 = np.asarray(basis2, dtype=np.float64)
    if basis1.shape[0] != basis2.shape[0]:
        raise ValueError(
            f"dimension mismatch: {basis1.shape[0]} vs {basis2.shape[0]}"
        )
    if gamma1 < 0.0 or gamma2 < 0.0:
        raise ValueError("merge weights must be non-negative")
    lam1 = np.clip(np.asarray(eigenvalues1, dtype=np.float64), 0.0, None)
    lam2 = np.clip(np.asarray(eigenvalues2, dtype=np.float64), 0.0, None)
    cols = [basis1 * np.sqrt(gamma1 * lam1), basis2 * np.sqrt(gamma2 * lam2)]
    if mean_columns is not None:
        mean_columns = np.asarray(mean_columns, dtype=np.float64)
        if mean_columns.ndim == 1:
            mean_columns = mean_columns[:, None]
        if mean_columns.shape[0] != basis1.shape[0]:
            raise ValueError("mean_columns dimension mismatch")
        cols.append(mean_columns)
    return np.concatenate(cols, axis=1)


def rank_k_update(
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    block: np.ndarray,
    gamma: float,
    weights: np.ndarray,
    p: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Block (mini-batch) covariance update: ``k`` observations at once.

    Computes the top-``p`` eigensystem of

    .. math::

        C = \\gamma\\, E \\Lambda E^T + \\sum_{i=1}^{k} c_i\\, y_i y_i^T ,

    where the rows of ``block`` are the (centered) observations ``y_i``
    and ``weights`` carries the non-negative coefficients ``c_i``.  This
    is the sequential Karhunen–Loève block recursion (Ross et al. 2008;
    sklearn's ``IncrementalPCA`` uses the same structure): the eigensolve
    is amortized over the whole block instead of paid per observation.

    Algorithm — QR-augmentation via the Gram trick:

    1. split the weighted block ``Y_w`` into its component inside the
       current basis, ``Z = E^T Y_w``, and the residual ``R = Y_w - E Z``;
    2. compress the residual subspace with the eigensystem of the small
       Gram matrix ``R^T R`` (rank ``q <= k``), giving an orthonormal
       augmentation ``Q`` with ``R = Q S``;
    3. assemble the ``(p+q) x (p+q)`` projection of ``C`` onto the
       augmented frame ``[E, Q]`` — since ``S S^T`` is diagonal by
       construction this is two small products — and solve the small
       symmetric eigenproblem;
    4. rotate back, truncate to ``p``, and defensively re-orthonormalize.

    Per block this costs ``O(d·k·(p+k) + (p+k)^3)`` — the same flop
    order as ``k`` rank-one updates, but spent in a handful of large
    GEMMs instead of ``O(k)`` skinny operations, which is where the
    measured speedup comes from (see ``benchmarks/bench_core_update.py``).

    Rows with zero weight are dropped before any algebra (rejected
    outliers are free, as in the rank-one path).

    Returns
    -------
    (E, lam):
        As :func:`eigensystem_of_factor`: basis ``(d, p_eff)`` and
        eigenvalues ``(p_eff,)``, descending.
    """
    basis = np.asarray(basis, dtype=np.float64)
    eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
    block = np.asarray(block, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if block.ndim != 2:
        raise ValueError(f"block must be 2-D (k, d), got shape {block.shape}")
    if basis.ndim != 2 or basis.shape[0] != block.shape[1]:
        raise ValueError(
            f"basis shape {basis.shape} does not match block dimension "
            f"{block.shape[1]}"
        )
    if eigenvalues.shape != (basis.shape[1],):
        raise ValueError(
            f"eigenvalues shape {eigenvalues.shape} does not match basis "
            f"with {basis.shape[1]} columns"
        )
    if weights.shape != (block.shape[0],):
        raise ValueError(
            f"weights shape {weights.shape} does not match block with "
            f"{block.shape[0]} rows"
        )
    if gamma < 0.0:
        raise ValueError("gamma must be non-negative")
    if np.any(weights < 0.0):
        raise ValueError("block weights must be non-negative")

    live = weights > 0.0
    if not np.all(live):
        block = block[live]
        weights = weights[live]
    if block.shape[0] == 0:
        # Pure decay: eigenvectors unchanged, eigenvalues scaled.
        return basis.copy(), gamma * np.clip(eigenvalues, 0.0, None)

    lam = np.clip(eigenvalues, 0.0, None)
    yw = np.ascontiguousarray(block.T * np.sqrt(weights))  # (d, k)
    m = basis.shape[1]
    if m == 0 or gamma == 0.0:
        return eigensystem_of_factor(yw, p)

    # Main path: one GIL-releasing kernel covering the weighted split,
    # residual Gram compression, small-eigenproblem assembly/solve and
    # the rotation back (compiled when numba is available — see
    # repro.core.kernels).
    return _kernels.rank_k_core(
        np.ascontiguousarray(basis), lam, yw, float(gamma), int(p)
    )


def rank_one_update(
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    y: np.ndarray,
    gamma: float,
    new_weight: float,
    p: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One streaming covariance update: factor build + truncated eigensolve.

    Convenience composition of :func:`build_update_factor` and
    :func:`eigensystem_of_factor`; this is the exact operation performed
    per tuple by the streaming PCA operator.
    """
    a = build_update_factor(basis, eigenvalues, y, gamma, new_weight)
    return eigensystem_of_factor(a, p)
