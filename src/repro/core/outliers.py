"""Streaming outlier detection on top of the robust weights.

One of the paper's motivations for processing *every* element (Section
II-C): "often the goal is to flag outliers for further processing.
Dropped items are not even considered."  The robust machinery gives the
flags for free — an observation whose scaled squared residual ``t = r²/σ²``
falls beyond the ρ-function's rejection region carried ~zero weight and is
marked (the black points on top of Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .eigensystem import Eigensystem
from .incremental import UpdateResult
from .rho import RhoFunction

__all__ = ["OutlierEvent", "OutlierLog", "flag_outliers"]


@dataclass(frozen=True)
class OutlierEvent:
    """A single flagged observation.

    Attributes
    ----------
    step:
        1-based position in the stream at which the observation arrived.
    scaled_residual:
        ``t = r²/σ²`` at flag time — how far outside the model it was.
    weight:
        The (near-zero) robust weight it received.
    """

    step: int
    scaled_residual: float
    weight: float


@dataclass
class OutlierLog:
    """Accumulates :class:`OutlierEvent` records from update results."""

    events: list[OutlierEvent] = field(default_factory=list)
    n_processed: int = 0

    def observe(self, result: UpdateResult | None) -> None:
        """Feed one per-update result (``None`` during warm-up counts as a
        processed-but-unflaggable step)."""
        self.n_processed += 1
        if result is not None and result.is_outlier:
            self.events.append(
                OutlierEvent(
                    step=self.n_processed,
                    scaled_residual=result.scaled_residual,
                    weight=result.weight,
                )
            )

    @property
    def steps(self) -> np.ndarray:
        """Flagged stream positions (the x-coordinates of Fig. 1's marks)."""
        return np.array([e.step for e in self.events], dtype=np.int64)

    @property
    def rate(self) -> float:
        """Fraction of processed observations flagged."""
        if self.n_processed == 0:
            return 0.0
        return len(self.events) / self.n_processed

    def detection_stats(
        self, true_outlier_steps: np.ndarray
    ) -> dict[str, float]:
        """Precision/recall against known injected outlier positions."""
        truth = set(int(s) for s in np.asarray(true_outlier_steps).ravel())
        flagged = set(int(s) for s in self.steps)
        tp = len(truth & flagged)
        precision = tp / len(flagged) if flagged else 1.0
        recall = tp / len(truth) if truth else 1.0
        return {
            "true_positives": float(tp),
            "false_positives": float(len(flagged - truth)),
            "false_negatives": float(len(truth - flagged)),
            "precision": precision,
            "recall": recall,
        }


def flag_outliers(
    state: Eigensystem,
    x: np.ndarray,
    rho: RhoFunction,
    *,
    threshold: float | None = None,
) -> np.ndarray:
    """Flag rows of ``x`` as outliers under a *frozen* eigensystem.

    Vectorized batch counterpart of the streaming flags: computes every
    row's ``t = r²/σ²`` against ``state`` and marks those beyond
    ``threshold`` (default: the ρ rejection point, or ``4·c2`` for
    soft-redescending families).  Useful for re-scoring an archived block
    once the stream has converged.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    y = x - state.mean
    r = y - (y @ state.basis) @ state.basis.T
    r2 = np.sum(r * r, axis=1)
    sigma2 = state.scale if state.scale > 0 else 1.0
    t = r2 / sigma2
    if threshold is None:
        rej = rho.rejection_point()
        threshold = rej if np.isfinite(rej) else 4.0 * rho.c2
    return t >= threshold
