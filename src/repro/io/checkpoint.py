"""Eigensystem checkpointing.

Section III-C: "the intermediate calculation results are periodically
saved to the disk for future reference."  Checkpoints are ``.npz``
archives (compact, lossless float64) named by the observation count, so a
directory of them *is* the convergence history of a run.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Any

import numpy as np

from ..core.eigensystem import Eigensystem

__all__ = [
    "save_eigensystem",
    "load_eigensystem",
    "load_eigensystem_extras",
    "fsync_directory",
    "CheckpointStore",
]

_CKPT_RE = re.compile(r"^eigensystem-(\d+)\.npz$")


def fsync_directory(directory: str | pathlib.Path) -> None:
    """fsync a directory so a just-replaced entry survives power loss.

    ``os.replace`` makes the rename atomic against concurrent readers,
    but the *directory entry* itself lives in the parent directory's
    data — until that is flushed, a power cut can roll the rename back
    and leave the old (or no) file.  Best-effort: platforms that cannot
    open a directory read-only for fsync (Windows) are skipped.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_eigensystem(
    path: str | pathlib.Path,
    state: Eigensystem,
    *,
    extras: dict[str, Any] | None = None,
    fsync: bool = False,
) -> None:
    """Write one eigensystem to an ``.npz`` file, atomically.

    Written via a temp file + :func:`os.replace` so a reader (or a
    process killed mid-write — e.g. a SIGKILLed worker that restarts
    from this very store) never observes a truncated archive.

    ``extras`` is an optional JSON-able dict stored alongside the
    arrays (no pickle — it crosses restarts as text); read it back with
    :func:`load_eigensystem_extras`.  ``fsync=True`` additionally
    fsyncs the temp file before the rename and the parent directory
    after it, making the checkpoint durable against power loss, not
    just process death.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp.npz")
    arrays = dict(
        mean=state.mean,
        basis=state.basis,
        eigenvalues=state.eigenvalues,
        scalars=np.array(
            [
                state.scale,
                state.sum_count,
                state.sum_weight,
                state.sum_weighted_r2,
                float(state.n_seen),
                float(state.n_since_sync),
            ]
        ),
    )
    if extras is not None:
        # A 0-d unicode array: numpy stores it without pickle, and the
        # JSON round-trip keeps the extras type-safe across restarts.
        arrays["extras_json"] = np.array(json.dumps(extras))
    np.savez(tmp, **arrays)
    if fsync:
        with open(tmp, "rb") as fh:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_directory(path.parent)


def load_eigensystem(path: str | pathlib.Path) -> Eigensystem:
    """Read an eigensystem written by :func:`save_eigensystem`."""
    with np.load(pathlib.Path(path)) as data:
        scal = data["scalars"]
        return Eigensystem(
            mean=data["mean"],
            basis=data["basis"],
            eigenvalues=data["eigenvalues"],
            scale=float(scal[0]),
            sum_count=float(scal[1]),
            sum_weight=float(scal[2]),
            sum_weighted_r2=float(scal[3]),
            n_seen=int(scal[4]),
            n_since_sync=int(scal[5]),
        )


def load_eigensystem_extras(
    path: str | pathlib.Path,
) -> tuple[Eigensystem, dict[str, Any]]:
    """Like :func:`load_eigensystem`, plus the ``extras`` dict (or {})."""
    state = load_eigensystem(path)
    extras: dict[str, Any] = {}
    with np.load(pathlib.Path(path)) as data:
        if "extras_json" in data.files:
            loaded = json.loads(str(data["extras_json"]))
            if isinstance(loaded, dict):
                extras = loaded
    return state, extras


class CheckpointStore:
    """A directory of periodic eigensystem snapshots.

    Parameters
    ----------
    directory:
        Created if missing.
    every:
        Snapshot period in observations; :meth:`maybe_save` is a cheap
        no-op between periods, so it can be called per update.
    keep:
        Retain at most this many snapshots (oldest pruned); ``None`` keeps
        everything — useful when the snapshots themselves are the
        experiment (Figs. 4–5 convergence history).  Long-running
        services should set this (or call :meth:`gc`) so the directory
        does not grow unboundedly.
    fsync:
        Make every save durable against power loss, not just process
        death: fsync the archive before the atomic rename and the
        directory after it.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        every: int = 1000,
        keep: int | None = None,
        fsync: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = int(every)
        self.keep = keep
        self.fsync = bool(fsync)
        # Resume over an existing directory: seed the period tracker from
        # the snapshots already on disk so the first maybe_save() after a
        # restart doesn't re-write (or double-count) a persisted state.
        snaps = self.list()
        self._last_saved_at = snaps[-1][0] if snaps else -1

    def _path_for(self, n_seen: int) -> pathlib.Path:
        return self.directory / f"eigensystem-{n_seen:012d}.npz"

    def maybe_save(self, state: Eigensystem) -> bool:
        """Snapshot if a full period elapsed since the last one."""
        if state.n_seen // self.every <= self._last_saved_at // self.every:
            if self._last_saved_at >= 0:
                return False
        self.save(state)
        return True

    def save(self, state: Eigensystem) -> pathlib.Path:
        """Snapshot unconditionally."""
        path = self._path_for(state.n_seen)
        save_eigensystem(path, state, fsync=self.fsync)
        self._last_saved_at = state.n_seen
        self._prune()
        return path

    def _prune(self) -> None:
        if self.keep is None:
            return
        self.gc(self.keep)

    def gc(self, keep_last: int) -> int:
        """Delete all but the newest ``keep_last`` snapshots.

        Retention GC for long-running services; returns the number of
        snapshots removed.  A snapshot that vanished underneath us
        (concurrent GC, manual cleanup) is not an error.
        """
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        snaps = self.list()
        removed = 0
        for _n_seen, path in snaps[: max(len(snaps) - keep_last, 0)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed and self.fsync:
            fsync_directory(self.directory)
        return removed

    def list(self) -> list[tuple[int, pathlib.Path]]:
        """All snapshots as ``(n_seen, path)``, ascending."""
        out = []
        for path in self.directory.iterdir():
            m = _CKPT_RE.match(path.name)
            if m:
                out.append((int(m.group(1)), path))
        return sorted(out)

    def load_latest(self) -> Eigensystem | None:
        """The most recent *readable* snapshot (``None`` if none).

        Snapshots written by current code are atomic, but a store may
        hold a truncated archive from an older writer or a torn copy;
        fall back to the next-newest rather than fail the restart.
        """
        for _, path in reversed(self.list()):
            try:
                return load_eigensystem(path)
            except (OSError, EOFError, ValueError, KeyError):
                continue
        return None

    def load_history(self) -> list[tuple[int, Eigensystem]]:
        """Every snapshot — the convergence history."""
        return [(n, load_eigensystem(p)) for n, p in self.list()]
