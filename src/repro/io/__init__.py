"""Persistence: CSV vector IO and eigensystem checkpoints."""

from .checkpoint import CheckpointStore, load_eigensystem, save_eigensystem
from .csvio import read_vectors_csv, write_vectors_csv

__all__ = [
    "CheckpointStore",
    "load_eigensystem",
    "read_vectors_csv",
    "save_eigensystem",
    "write_vectors_csv",
]
