"""Persistence: CSV vector IO and eigensystem checkpoints."""

from .checkpoint import (
    CheckpointStore,
    fsync_directory,
    load_eigensystem,
    load_eigensystem_extras,
    save_eigensystem,
)
from .csvio import read_vectors_csv, write_vectors_csv

__all__ = [
    "CheckpointStore",
    "fsync_directory",
    "load_eigensystem",
    "load_eigensystem_extras",
    "read_vectors_csv",
    "save_eigensystem",
    "write_vectors_csv",
]
