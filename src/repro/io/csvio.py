"""CSV reading/writing of observation vectors.

The paper's file sources feed "local regular text or binary file with
CSV formatted tuples".  We keep CSV (binary adds nothing offline): one
observation vector per row, missing entries as empty cells or ``nan``.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Iterator

import numpy as np

__all__ = ["read_vectors_csv", "write_vectors_csv"]


def read_vectors_csv(path: str | pathlib.Path) -> Iterator[np.ndarray]:
    """Yield one float64 vector per CSV row; blanks/'nan' become NaN.

    Raises ``ValueError`` on ragged rows (every observation must have the
    same dimensionality) or unparsable cells.
    """
    path = pathlib.Path(path)
    dim: int | None = None
    with path.open(newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            if not row:
                continue
            try:
                vec = np.array(
                    [
                        float("nan") if cell.strip() in ("", "nan", "NaN")
                        else float(cell)
                        for cell in row
                    ],
                    dtype=np.float64,
                )
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: unparsable cell ({exc})"
                ) from None
            if dim is None:
                dim = vec.size
            elif vec.size != dim:
                raise ValueError(
                    f"{path}:{lineno}: row has {vec.size} values, "
                    f"expected {dim}"
                )
            yield vec


def write_vectors_csv(
    path: str | pathlib.Path, vectors: Iterable[np.ndarray]
) -> int:
    """Write vectors as CSV rows (NaN → empty cell); returns row count."""
    path = pathlib.Path(path)
    n = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        for vec in vectors:
            vec = np.asarray(vec, dtype=np.float64)
            writer.writerow(
                ["" if not np.isfinite(v) else repr(float(v)) for v in vec]
            )
            n += 1
    return n
