"""Workload generators: Gaussian planted streams, synthetic SDSS-like
galaxy spectra, contamination models, and cluster-health telemetry."""

from .gaussian import DriftingSubspaceModel, PlantedSubspaceModel, random_orthonormal
from .outliers import (
    GrossOutlierInjector,
    MixtureContaminator,
    SpikeInjector,
    contaminate_block,
)
from .sensors import SENSORS_PER_SERVER, ClusterTelemetryModel, FaultEvent
from .spectra import (
    ABSORPTION_LINES,
    EMISSION_LINES,
    GalaxySample,
    GalaxySpectrumModel,
    WavelengthGrid,
    archetype_spectra,
)
from .streams import VectorStream, repeat_epochs, shuffled

__all__ = [
    "ABSORPTION_LINES",
    "ClusterTelemetryModel",
    "DriftingSubspaceModel",
    "EMISSION_LINES",
    "FaultEvent",
    "GalaxySample",
    "GalaxySpectrumModel",
    "GrossOutlierInjector",
    "MixtureContaminator",
    "PlantedSubspaceModel",
    "SENSORS_PER_SERVER",
    "SpikeInjector",
    "VectorStream",
    "WavelengthGrid",
    "archetype_spectra",
    "contaminate_block",
    "random_orthonormal",
    "repeat_epochs",
    "shuffled",
]
