"""Adapters between datasets and streams.

Section II-B: "it is clearly disadvantageous to put the spectra on the
stream in a systematic order; instead they should be randomized for best
results" — :func:`shuffled` provides exactly that, and
:class:`VectorStream` is the common currency handed to stream sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["shuffled", "repeat_epochs", "VectorStream"]


def shuffled(
    x: np.ndarray, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield the rows of ``x`` in a random order (a fresh permutation)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    for i in rng.permutation(x.shape[0]):
        yield x[i]


def repeat_epochs(
    x: np.ndarray,
    n_epochs: int,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    """Stream the dataset ``n_epochs`` times, reshuffled each epoch.

    Finite archives are commonly replayed to let a streaming solution
    converge further; each pass uses a fresh permutation so the forgetting
    factor never sees a systematic order.
    """
    if n_epochs < 1:
        raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
    for _ in range(n_epochs):
        yield from shuffled(x, rng)


@dataclass
class VectorStream:
    """A sized, dimension-annotated stream of vectors.

    Thin wrapper pairing an iterator with the metadata that stream sources
    and the simulator need up front (dimensionality, nominal length).

    Attributes
    ----------
    dim:
        Vector dimensionality.
    length:
        Number of vectors the stream will yield (``None`` = unknown /
        unbounded).
    """

    dim: int
    length: int | None
    _iterator: Iterator[np.ndarray]

    def __iter__(self) -> Iterator[np.ndarray]:
        return self._iterator

    @classmethod
    def from_array(cls, x: np.ndarray) -> "VectorStream":
        """Stream the rows of an ``(n, d)`` array in order."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"expected (n, d) data, got shape {x.shape}")
        return cls(dim=x.shape[1], length=x.shape[0], _iterator=iter(x))

    @classmethod
    def from_iterable(
        cls,
        it: Iterable[np.ndarray],
        dim: int,
        length: int | None = None,
    ) -> "VectorStream":
        """Wrap any iterable of vectors."""
        return cls(dim=dim, length=length, _iterator=iter(it))

    @classmethod
    def from_sampler(
        cls,
        sampler: Callable[[], np.ndarray],
        dim: int,
        length: int | None = None,
    ) -> "VectorStream":
        """Wrap a zero-argument sampler (unbounded unless ``length`` set)."""

        def gen() -> Iterator[np.ndarray]:
            n = 0
            while length is None or n < length:
                yield sampler()
                n += 1

        return cls(dim=dim, length=length, _iterator=gen())

    def take(self, n: int) -> np.ndarray:
        """Materialize the next ``n`` vectors as an ``(m, d)`` array
        (``m < n`` if the stream ends early)."""
        rows = []
        for _, row in zip(range(n), self._iterator):
            rows.append(np.asarray(row, dtype=np.float64))
        if not rows:
            return np.zeros((0, self.dim))
        return np.vstack(rows)
