"""Cluster-health telemetry generator — the paper's monitoring use case.

The conclusion proposes streaming PCA for "monitoring the modern cluster
installations that include thousands of servers, each having multiple
parameters monitored, including the computation components temperature,
hard drive parameters, cooling fans RPMs and so on", where "a significant
eigensystem deviation could indicate a hardware failure".

This generator produces exactly that stream: per-timestep vectors of
``n_servers × sensors-per-server`` readings driven by a handful of shared
latent factors (cluster load, ambient temperature, a slow diurnal cycle),
so the healthy stream is genuinely low-rank.  Injected faults (a fan
seizing, a node overheating) break the correlation structure of one
server's block and should surface as robust-PCA outliers / residual
spikes — this drives the ``cluster_health_monitoring`` example and the
anomaly-detection integration test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["SENSORS_PER_SERVER", "FaultEvent", "ClusterTelemetryModel"]

#: (name, baseline, load sensitivity, ambient sensitivity, noise std)
SENSORS_PER_SERVER: tuple[tuple[str, float, float, float, float], ...] = (
    ("cpu_temp_C", 45.0, 25.0, 0.8, 0.6),
    ("fan_rpm", 3000.0, 2500.0, 40.0, 60.0),
    ("disk_temp_C", 35.0, 8.0, 0.7, 0.4),
    ("power_W", 180.0, 140.0, 0.5, 3.0),
)


@dataclass(frozen=True)
class FaultEvent:
    """An injected hardware fault.

    Attributes
    ----------
    step:
        Timestep at which the fault begins (1-based).
    server:
        Index of the affected server.
    kind:
        ``"fan_failure"`` (fan rpm collapses, temperature climbs) or
        ``"thermal_runaway"`` (temperatures climb across the board).
    duration:
        Number of timesteps the fault persists.
    """

    step: int
    server: int
    kind: str
    duration: int


@dataclass
class ClusterTelemetryModel:
    """Low-rank multi-server telemetry with injectable faults.

    Parameters
    ----------
    n_servers:
        Servers in the cluster; the stream dimensionality is
        ``n_servers * 4`` (four sensors per server).
    load_volatility:
        Standard deviation of the AR(1) innovations of the shared load
        factor (the dominant latent direction).
    ambient_volatility:
        Same for the ambient-temperature factor.
    diurnal_period:
        Period (timesteps) of the deterministic daily cycle.
    fault_rate:
        Per-step probability that a new fault starts somewhere.
    seed:
        Structural seed for per-server sensitivity jitter.
    """

    n_servers: int = 25
    load_volatility: float = 0.05
    ambient_volatility: float = 0.02
    diurnal_period: int = 1440
    fault_rate: float = 0.0
    seed: int = 0

    faults: list[FaultEvent] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {self.n_servers}")
        rng = np.random.default_rng(self.seed)
        n_sensor_types = len(SENSORS_PER_SERVER)
        # Per-server multiplicative jitter on sensitivities: servers are
        # similar but not identical (rack position, silicon lottery).
        self._jitter = 1.0 + 0.1 * rng.standard_normal(
            (self.n_servers, n_sensor_types)
        )
        self._step = 0
        self._load = 0.5
        self._ambient = 0.0
        self._active_faults: list[FaultEvent] = []

    @property
    def dim(self) -> int:
        """Stream dimensionality: ``n_servers * sensors_per_server``."""
        return self.n_servers * len(SENSORS_PER_SERVER)

    @property
    def sensor_names(self) -> list[str]:
        """Flat names, ``server{i}.{sensor}`` in vector order."""
        return [
            f"server{i}.{name}"
            for i in range(self.n_servers)
            for name, *_ in SENSORS_PER_SERVER
        ]

    def sample_next(self, rng: np.random.Generator) -> np.ndarray:
        """Produce the next telemetry vector, shape ``(dim,)``."""
        self._step += 1
        # Latent factors: mean-reverting load in [0, 1], ambient drift,
        # deterministic diurnal cycle.
        self._load += 0.05 * (0.5 - self._load) + self.load_volatility * (
            rng.standard_normal()
        )
        self._load = float(np.clip(self._load, 0.0, 1.0))
        self._ambient += self.ambient_volatility * rng.standard_normal()
        diurnal = 0.5 * np.sin(2 * np.pi * self._step / self.diurnal_period)
        ambient_c = 22.0 + 3.0 * self._ambient + 2.0 * diurnal

        base = np.array([b for _, b, _, _, _ in SENSORS_PER_SERVER])
        load_k = np.array([k for _, _, k, _, _ in SENSORS_PER_SERVER])
        amb_k = np.array([k for _, _, _, k, _ in SENSORS_PER_SERVER])
        noise_s = np.array([s for _, _, _, _, s in SENSORS_PER_SERVER])

        readings = (
            base[None, :]
            + self._load * load_k[None, :] * self._jitter
            + (ambient_c - 22.0) * amb_k[None, :]
            + noise_s[None, :] * rng.standard_normal(self._jitter.shape)
        )

        # Fault injection and evolution.
        if self.fault_rate and rng.random() < self.fault_rate:
            event = FaultEvent(
                step=self._step,
                server=int(rng.integers(self.n_servers)),
                kind=str(rng.choice(["fan_failure", "thermal_runaway"])),
                duration=int(rng.integers(20, 100)),
            )
            self.faults.append(event)
            self._active_faults.append(event)
        still_active = []
        for ev in self._active_faults:
            if self._step < ev.step + ev.duration:
                still_active.append(ev)
                age = self._step - ev.step
                ramp = min(1.0, age / 10.0)
                if ev.kind == "fan_failure":
                    readings[ev.server, 1] *= 1.0 - 0.9 * ramp   # fan dies
                    readings[ev.server, 0] += 25.0 * ramp        # cpu heats
                    readings[ev.server, 2] += 8.0 * ramp
                else:  # thermal_runaway
                    readings[ev.server, 0] += 40.0 * ramp
                    readings[ev.server, 2] += 15.0 * ramp
                    readings[ev.server, 3] += 60.0 * ramp
        self._active_faults = still_active
        return readings.ravel()

    def stream(self, n: int, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield ``n`` consecutive telemetry vectors."""
        for _ in range(n):
            yield self.sample_next(rng)

    def fault_steps(self) -> np.ndarray:
        """Steps covered by any active fault so far (for scoring)."""
        covered: set[int] = set()
        for ev in self.faults:
            covered.update(range(ev.step, ev.step + ev.duration))
        return np.asarray(sorted(covered), dtype=np.int64)
