"""Contamination models for the robustness experiments (Fig. 1).

The paper tests "random test data with artificially generated outliers".
Three injector flavours cover the failure modes astronomical streams
actually exhibit:

* :class:`GrossOutlierInjector` — whole-vector junk (misclassified
  sources, corrupted readouts): the observation is replaced by a large
  random vector far off the data manifold.
* :class:`SpikeInjector` — cosmic-ray style: a few pixels of an otherwise
  valid observation get huge additive spikes.
* :class:`MixtureContaminator` — point-mass contamination at a fixed
  off-manifold location, the classical worst case for breakdown analysis.

All injectors are deterministic given their ``numpy.random.Generator``
and record the stream positions they touched, so experiments can score
detection precision/recall against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "GrossOutlierInjector",
    "SpikeInjector",
    "MixtureContaminator",
    "contaminate_block",
]


class _BaseInjector:
    """Shared bookkeeping: position log and stream wrapper."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must lie in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng
        self.injected_steps: list[int] = []
        self._step = 0

    def corrupt(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        """Maybe-corrupt one observation; returns ``(vector, was_injected)``."""
        self._step += 1
        if self.rng.random() < self.rate:
            self.injected_steps.append(self._step)
            return self.corrupt(np.asarray(x, dtype=np.float64)), True
        return np.asarray(x, dtype=np.float64), False

    def wrap(self, stream: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Pass a stream through the injector (positions still logged)."""
        for x in stream:
            out, _ = self(x)
            yield out

    @property
    def steps(self) -> np.ndarray:
        """1-based stream positions that were corrupted."""
        return np.asarray(self.injected_steps, dtype=np.int64)


class GrossOutlierInjector(_BaseInjector):
    """Replace the observation with an isotropic junk vector.

    ``amplitude`` is the per-component standard deviation of the junk; set
    it several times the data scale so the outliers are *gross* (the
    regime where classical PCA's eigenvectors get captured).
    """

    def __init__(
        self, rate: float, amplitude: float, rng: np.random.Generator
    ) -> None:
        super().__init__(rate, rng)
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        self.amplitude = float(amplitude)

    def corrupt(self, x: np.ndarray) -> np.ndarray:
        return self.amplitude * self.rng.standard_normal(x.shape)


class SpikeInjector(_BaseInjector):
    """Add cosmic-ray spikes to a handful of pixels.

    ``n_pixels`` entries get an additive spike of size
    ``amplitude · (1 + U[0,1])``; the rest of the vector stays valid, so
    this probes *partial* contamination.
    """

    def __init__(
        self,
        rate: float,
        amplitude: float,
        rng: np.random.Generator,
        *,
        n_pixels: int = 3,
    ) -> None:
        super().__init__(rate, rng)
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        if n_pixels < 1:
            raise ValueError(f"n_pixels must be >= 1, got {n_pixels}")
        self.amplitude = float(amplitude)
        self.n_pixels = int(n_pixels)

    def corrupt(self, x: np.ndarray) -> np.ndarray:
        out = x.copy()
        k = min(self.n_pixels, x.size)
        idx = self.rng.choice(x.size, size=k, replace=False)
        out[idx] += self.amplitude * (1.0 + self.rng.random(k))
        return out


class MixtureContaminator(_BaseInjector):
    """Point-mass contamination at a fixed location ``loc``.

    Every corrupted observation is (a small jitter around) the same
    off-manifold point — the configuration against which breakdown points
    are defined, and the hardest case for redescending estimators because
    the contamination is maximally coherent.
    """

    def __init__(
        self,
        rate: float,
        loc: np.ndarray,
        rng: np.random.Generator,
        *,
        jitter: float = 0.0,
    ) -> None:
        super().__init__(rate, rng)
        self.loc = np.asarray(loc, dtype=np.float64)
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)

    def corrupt(self, x: np.ndarray) -> np.ndarray:
        if self.loc.shape != x.shape:
            raise ValueError(
                f"contamination location shape {self.loc.shape} does not "
                f"match observation shape {x.shape}"
            )
        out = self.loc.copy()
        if self.jitter:
            out += self.jitter * self.rng.standard_normal(x.shape)
        return out


def contaminate_block(
    x: np.ndarray,
    rate: float,
    amplitude: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized gross contamination of an ``(n, d)`` block.

    Returns ``(contaminated_copy, boolean_mask_of_outlier_rows)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) block, got shape {x.shape}")
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must lie in [0, 1), got {rate}")
    out = x.copy()
    mask = rng.random(x.shape[0]) < rate
    n_bad = int(np.count_nonzero(mask))
    if n_bad:
        out[mask] = amplitude * rng.standard_normal((n_bad, x.shape[1]))
    return out, mask
