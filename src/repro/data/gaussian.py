"""Gaussian streams with planted low-rank structure.

Section III-D tests the system with "gaussian random data artificially
enriched with additional signals": isotropic noise plus a handful of
strong planted directions, so the PCA engines have a well-defined
ground-truth eigensystem to converge to.  These are the workloads behind
Figures 1, 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["random_orthonormal", "PlantedSubspaceModel", "DriftingSubspaceModel"]


def random_orthonormal(
    dim: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly-random ``(dim, k)`` matrix with orthonormal columns."""
    if not 0 < k <= dim:
        raise ValueError(f"need 0 < k <= dim, got k={k}, dim={dim}")
    a = rng.standard_normal((dim, k))
    q, r = np.linalg.qr(a)
    # Fix the sign convention so the distribution is Haar.
    return q * np.sign(np.diag(r))


@dataclass
class PlantedSubspaceModel:
    """``x = µ + B s + ε`` with ``s ~ N(0, diag(signal_variances))``.

    Parameters
    ----------
    dim:
        Ambient dimensionality ``d``.
    signal_variances:
        Variances of the planted factors, descending; their count is the
        planted rank.
    noise_std:
        Isotropic noise standard deviation.
    mean_scale:
        The model mean is drawn once as ``mean_scale · N(0, I)/√d``.
    seed:
        Seed for the model's own structural randomness (basis, mean).

    Notes
    -----
    Ground truth: population covariance ``B diag(v) Bᵀ + noise_std²·I``;
    the top eigenvectors are the columns of ``basis`` and the top
    eigenvalues are ``signal_variances + noise_std²``.
    """

    dim: int
    signal_variances: tuple[float, ...] = (25.0, 16.0, 9.0, 4.0, 1.0)
    noise_std: float = 0.5
    mean_scale: float = 1.0
    seed: int = 0
    basis: np.ndarray = field(init=False, repr=False)
    mean: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.dim < len(self.signal_variances):
            raise ValueError(
                f"dim={self.dim} smaller than planted rank "
                f"{len(self.signal_variances)}"
            )
        if any(v <= 0 for v in self.signal_variances):
            raise ValueError("signal variances must be positive")
        if list(self.signal_variances) != sorted(
            self.signal_variances, reverse=True
        ):
            raise ValueError("signal variances must be descending")
        rng = np.random.default_rng(self.seed)
        self.basis = random_orthonormal(self.dim, self.rank, rng)
        self.mean = self.mean_scale * rng.standard_normal(self.dim) / np.sqrt(
            self.dim
        )

    @property
    def rank(self) -> int:
        """Number of planted directions."""
        return len(self.signal_variances)

    @property
    def eigenvalues(self) -> np.ndarray:
        """Population covariance eigenvalues of the planted directions."""
        return np.asarray(self.signal_variances) + self.noise_std**2

    @property
    def total_variance(self) -> float:
        """Trace of the population covariance."""
        return float(
            np.sum(self.signal_variances) + self.dim * self.noise_std**2
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` observations, shape ``(n, dim)``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        s = rng.standard_normal((n, self.rank)) * np.sqrt(
            np.asarray(self.signal_variances)
        )
        x = s @ self.basis.T
        x += self.noise_std * rng.standard_normal((n, self.dim))
        x += self.mean
        return x

    def stream(
        self, n: int, rng: np.random.Generator, *, block: int = 256
    ) -> Iterator[np.ndarray]:
        """Yield ``n`` observations one at a time (blocks drawn internally
        so the generator stays vectorized)."""
        remaining = n
        while remaining > 0:
            take = min(block, remaining)
            for row in self.sample(take, rng):
                yield row
            remaining -= take


@dataclass
class DriftingSubspaceModel:
    """A planted subspace that rotates slowly over the stream.

    Used by the α-ablation (§II-B: the forgetting factor "adjusts the rate
    at which the evolving solution forgets about past observations" and is
    what lets the engine *track* time-dependent phenomena).  The basis at
    step ``t`` is the initial basis rotated by angle ``rate·t`` inside the
    plane spanned by the first planted direction and a fixed off-subspace
    direction.
    """

    dim: int
    signal_variances: tuple[float, ...] = (25.0, 9.0, 4.0)
    noise_std: float = 0.5
    rotation_rate: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        k = len(self.signal_variances)
        if self.dim < k + 1:
            raise ValueError("dim must exceed planted rank by at least 1")
        full = random_orthonormal(self.dim, k + 1, rng)
        self._base = full[:, :k]
        self._off = full[:, k]
        self._step = 0

    @property
    def rank(self) -> int:
        """Number of planted directions."""
        return len(self.signal_variances)

    def basis_at(self, step: int) -> np.ndarray:
        """Ground-truth basis after ``step`` observations."""
        theta = self.rotation_rate * step
        basis = self._base.copy()
        basis[:, 0] = np.cos(theta) * self._base[:, 0] + np.sin(theta) * self._off
        return basis

    def sample_next(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the next observation (the subspace advances by one step)."""
        basis = self.basis_at(self._step)
        self._step += 1
        s = rng.standard_normal(self.rank) * np.sqrt(
            np.asarray(self.signal_variances)
        )
        return basis @ s + self.noise_std * rng.standard_normal(self.dim)

    def stream(self, n: int, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield ``n`` observations from the drifting model."""
        for _ in range(n):
            yield self.sample_next(rng)
