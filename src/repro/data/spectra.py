"""Synthetic SDSS-like galaxy spectra — the Figs. 4–5 workload.

The paper runs its streaming PCA over Sloan Digital Sky Survey galaxy
spectra.  We cannot ship SDSS, so this module generates spectra with the
three properties the experiments actually rely on:

1. **Low-rank manifold** — each galaxy is a mixture of a few physical
   archetypes (old passive, star-forming, post-starburst, AGN-like), so
   the population covariance has a known, small rank ("the galaxies are
   redundant in good approximation", Section III-C).
2. **Line structure** — archetypes carry real emission/absorption features
   (Hα, Hβ, [O II], [O III], Ca II H&K, Mg b, Na D, the 4000 Å break) at
   their true wavelengths, so converged eigenspectra show recognizable,
   smooth spectral features exactly as in Fig. 5.
3. **Survey systematics** — per-object redshift shifts the rest-frame
   spectrum across a *fixed* observed window, creating the
   redshift-correlated wavelength gaps of Section II-D; random "snippet"
   dropouts, lognormal brightness (forcing normalization), photon-ish
   noise, and optional junk-spectrum outliers complete the picture.

Ground truth (archetype subspace, clean reference eigenbasis) is exposed
for convergence metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EMISSION_LINES",
    "ABSORPTION_LINES",
    "WavelengthGrid",
    "archetype_spectra",
    "GalaxySample",
    "GalaxySpectrumModel",
]

# (name, rest-frame center in Angstrom, relative strength)
EMISSION_LINES: tuple[tuple[str, float, float], ...] = (
    ("OII_3727", 3727.0, 0.8),
    ("Hbeta", 4861.0, 0.5),
    ("OIII_4959", 4959.0, 0.35),
    ("OIII_5007", 5007.0, 1.0),
    ("NII_6548", 6548.0, 0.15),
    ("Halpha", 6563.0, 1.6),
    ("NII_6584", 6584.0, 0.45),
    ("SII_6717", 6717.0, 0.25),
    ("SII_6731", 6731.0, 0.18),
)

ABSORPTION_LINES: tuple[tuple[str, float, float], ...] = (
    ("CaII_K", 3934.0, 0.35),
    ("CaII_H", 3968.0, 0.30),
    ("Gband", 4304.0, 0.12),
    ("Mgb", 5175.0, 0.18),
    ("NaD", 5894.0, 0.15),
)


@dataclass(frozen=True)
class WavelengthGrid:
    """Log-spaced wavelength grid (the SDSS convention).

    Attributes
    ----------
    lam_min, lam_max:
        Wavelength range in Angstrom.
    n_bins:
        Number of pixels; SDSS spectra have ~3800, we default far smaller
        for tractable streaming experiments.
    """

    lam_min: float = 3800.0
    lam_max: float = 9200.0
    n_bins: int = 500

    def __post_init__(self) -> None:
        if not 0 < self.lam_min < self.lam_max:
            raise ValueError(
                f"need 0 < lam_min < lam_max, got {self.lam_min}, {self.lam_max}"
            )
        if self.n_bins < 8:
            raise ValueError(f"n_bins must be >= 8, got {self.n_bins}")

    @property
    def wavelengths(self) -> np.ndarray:
        """Pixel-center wavelengths, shape ``(n_bins,)``."""
        return np.geomspace(self.lam_min, self.lam_max, self.n_bins)


def _gaussian_lines(
    lam: np.ndarray,
    lines: tuple[tuple[str, float, float], ...],
    width: float,
) -> np.ndarray:
    """Sum of unit-peak Gaussians at the listed line centers."""
    out = np.zeros_like(lam)
    for _, center, strength in lines:
        out += strength * np.exp(-0.5 * ((lam - center) / width) ** 2)
    return out


def _continuum(lam: np.ndarray, slope: float, break_depth: float) -> np.ndarray:
    """Smooth continuum: power law in wavelength with a 4000 Å break.

    ``slope < 0`` is blue (young), ``slope > 0`` is red (old);
    ``break_depth`` suppresses flux blueward of 4000 Å, the signature of
    an evolved stellar population.
    """
    base = (lam / 5500.0) ** slope
    brk = 1.0 - break_depth / (1.0 + np.exp((lam - 4000.0) / 60.0))
    return base * brk


def archetype_spectra(
    lam: np.ndarray, *, line_width: float = 8.0
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Build the physical archetypes on a rest-frame wavelength grid.

    Returns ``(spectra, names)`` with ``spectra`` of shape ``(4, len(lam))``
    normalized to unit mean flux.  The four archetypes span the classic
    galaxy sequence:

    * ``passive`` — red continuum, strong 4000 Å break, absorption only;
    * ``starforming`` — blue continuum, strong nebular emission lines;
    * ``poststarburst`` — intermediate continuum, deep Balmer absorption;
    * ``agn`` — power-law continuum with high-ionization emission.
    """
    lam = np.asarray(lam, dtype=np.float64)
    emission = _gaussian_lines(lam, EMISSION_LINES, line_width)
    absorption = _gaussian_lines(lam, ABSORPTION_LINES, line_width * 1.6)
    balmer_abs = _gaussian_lines(
        lam,
        (("Hdelta", 4102.0, 0.30), ("Hgamma", 4341.0, 0.28), ("Hbeta_a", 4861.0, 0.25)),
        line_width * 1.8,
    )

    passive = _continuum(lam, 1.2, 0.45) * (1.0 - absorption)
    starforming = _continuum(lam, -1.0, 0.05) * (1.0 - 0.3 * absorption)
    starforming = starforming + 0.8 * emission
    poststarburst = _continuum(lam, 0.2, 0.25) * (1.0 - balmer_abs - 0.4 * absorption)
    agn = _continuum(lam, -0.5, 0.0) + 0.5 * _gaussian_lines(
        lam,
        (("OIII_5007", 5007.0, 1.4), ("OIII_4959", 4959.0, 0.5),
         ("Halpha", 6563.0, 1.0), ("NeV", 3426.0, 0.3)),
        line_width,
    )

    spectra = np.vstack([passive, starforming, poststarburst, agn])
    spectra = np.clip(spectra, 1e-3, None)
    spectra /= spectra.mean(axis=1, keepdims=True)
    return spectra, ("passive", "starforming", "poststarburst", "agn")


@dataclass(frozen=True)
class GalaxySample:
    """A drawn batch of synthetic galaxy spectra.

    Attributes
    ----------
    flux:
        ``(n, n_bins)`` observed-frame fluxes; NaN marks gap pixels.
    redshift:
        Per-galaxy redshifts, shape ``(n,)``.
    brightness:
        Per-galaxy multiplicative flux scales (why normalization is
        mandatory), shape ``(n,)``.
    mixture:
        Archetype mixing weights, shape ``(n, 4)``.
    is_outlier:
        True for injected junk spectra, shape ``(n,)``.
    """

    flux: np.ndarray
    redshift: np.ndarray
    brightness: np.ndarray
    mixture: np.ndarray
    is_outlier: np.ndarray

    def __len__(self) -> int:
        return self.flux.shape[0]


@dataclass
class GalaxySpectrumModel:
    """Generator of SDSS-like galaxy spectra with known ground truth.

    Parameters
    ----------
    grid:
        Observed-frame wavelength grid.
    z_max:
        Redshifts are drawn uniformly in ``[0, z_max]``; larger values
        push more of the rest-frame template out of the observed window
        and widen the systematic gaps.
    noise_std:
        Gaussian pixel noise, in units of the (unit) mean flux.
    dropout_rate:
        Probability that a galaxy loses a random contiguous snippet of
        pixels (detector artifacts) — the "random snippets" gap mode.
    dropout_width:
        Snippet length as a fraction of the spectrum.
    brightness_sigma:
        Lognormal σ of the per-galaxy flux scale.
    outlier_rate:
        Fraction of junk spectra (pure noise ramps) injected.
    mixture_concentration:
        Dirichlet concentration of the archetype mixing weights; small
        values make galaxies nearly pure archetypes.
    rest_coverage_factor:
        The rest-frame template extends down to
        ``lam_min · rest_coverage_factor``.  Observed pixels whose rest
        wavelength falls blueward become gaps, so only galaxies with
        ``z > 1/rest_coverage_factor - 1`` are affected — the
        redshift-correlated systematic gap mode of §II-D.  The default
        0.85 starts gapping at z ≈ 0.18 (like a template library that
        reaches modestly into the near-UV).
    seed:
        Structural seed (rest-frame template construction).
    """

    grid: WavelengthGrid = field(default_factory=WavelengthGrid)
    z_max: float = 0.25
    noise_std: float = 0.05
    dropout_rate: float = 0.15
    dropout_width: float = 0.06
    brightness_sigma: float = 0.6
    outlier_rate: float = 0.0
    mixture_concentration: float = 0.5
    rest_coverage_factor: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.z_max < 2.0:
            raise ValueError(f"z_max must lie in [0, 2), got {self.z_max}")
        if self.noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        if not 0.0 <= self.outlier_rate < 1.0:
            raise ValueError("outlier_rate must lie in [0, 1)")
        # Rest-frame master grid with *fixed* coverage, independent of the
        # survey's redshift range — exactly like a real spectral template
        # library.  Observed pixels whose rest wavelength falls blueward
        # of the template edge become gaps, so gap patterns correlate
        # with redshift: the systematic gap mode of §II-D ("the detector
        # looks at different parts of the electromagnetic spectrum for
        # different extragalactic objects").
        if not 0.0 < self.rest_coverage_factor <= 1.0:
            raise ValueError("rest_coverage_factor must lie in (0, 1]")
        lam_obs = self.grid.wavelengths
        rest_min = lam_obs[0] * self.rest_coverage_factor
        rest_max = lam_obs[-1] * 1.02
        n_master = max(4 * self.grid.n_bins, 1024)
        self._rest_lam = np.geomspace(rest_min, rest_max, n_master)
        self._archetypes, self.archetype_names = archetype_spectra(
            self._rest_lam
        )

    @property
    def n_bins(self) -> int:
        """Observed-frame pixel count (the stream dimensionality)."""
        return self.grid.n_bins

    @property
    def n_archetypes(self) -> int:
        """Number of physical archetypes (the manifold rank + 1)."""
        return self._archetypes.shape[0]

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator) -> GalaxySample:
        """Draw ``n`` observed-frame spectra with all systematics applied."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        lam_obs = self.grid.wavelengths
        d = lam_obs.size
        k = self.n_archetypes

        mixture = rng.dirichlet(
            np.full(k, self.mixture_concentration), size=n
        )
        redshift = rng.uniform(0.0, self.z_max, size=n)
        brightness = rng.lognormal(0.0, self.brightness_sigma, size=n)
        is_outlier = rng.random(n) < self.outlier_rate

        flux = np.empty((n, d))
        rest_lo, rest_hi = self._rest_lam[0], self._rest_lam[-1]
        for i in range(n):
            if is_outlier[i]:
                # Junk: a random smooth ramp plus heavy noise, nothing like
                # a galaxy.
                ramp = np.linspace(rng.uniform(0.2, 3.0),
                                   rng.uniform(0.2, 3.0), d)
                flux[i] = ramp + rng.standard_normal(d) * rng.uniform(0.5, 2.0)
                continue
            rest = lam_obs / (1.0 + redshift[i])
            template = mixture[i] @ self._archetypes
            f = np.interp(rest, self._rest_lam, template)
            # Systematic gaps: observed pixels whose rest wavelength falls
            # outside the template coverage.
            covered = (rest >= rest_lo) & (rest <= rest_hi)
            f = np.where(covered, f, np.nan)
            f = f * brightness[i]
            noise = self.noise_std * brightness[i] * rng.standard_normal(d)
            f = f + noise
            # Random snippet dropout.
            if self.dropout_rate and rng.random() < self.dropout_rate:
                width = max(1, int(self.dropout_width * d))
                start = rng.integers(0, max(d - width, 1))
                f[start : start + width] = np.nan
            flux[i] = f
        return GalaxySample(
            flux=flux,
            redshift=redshift,
            brightness=brightness,
            mixture=mixture,
            is_outlier=is_outlier,
        )

    def clean_sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Noise-free, gap-free, unit-brightness spectra (reference data)."""
        lam_obs = self.grid.wavelengths
        mixture = rng.dirichlet(
            np.full(self.n_archetypes, self.mixture_concentration), size=n
        )
        redshift = rng.uniform(0.0, self.z_max, size=n)
        flux = np.empty((n, lam_obs.size))
        for i in range(n):
            rest = lam_obs / (1.0 + redshift[i])
            template = mixture[i] @ self._archetypes
            flux[i] = np.interp(rest, self._rest_lam, template)
        return flux

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def ground_truth_basis(
        self, p: int, *, n_mc: int = 4000, seed: int = 12345
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference eigensystem from a large clean Monte-Carlo sample.

        Returns ``(mean, basis (d, p), eigenvalues (p,))`` of the
        normalized, noiseless population — what a perfectly converged
        streaming run should approach.
        """
        rng = np.random.default_rng(seed)
        x = self.clean_sample(n_mc, rng)
        x = x / x.mean(axis=1, keepdims=True)
        mean = x.mean(axis=0)
        y = x - mean
        _, s, vt = np.linalg.svd(y, full_matrices=False)
        p_eff = min(p, vt.shape[0])
        return mean, vt[:p_eff].T, (s[:p_eff] ** 2) / n_mc
