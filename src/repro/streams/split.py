"""The threaded split / load-balancer operator (Section III-A.2).

The paper splits the input stream with InfoSphere's multithreaded split:
"each new data tuple is being sent to a random running PCA engine which is
free to process it", so "faster nodes will get more data than slower
ones".  Three strategies reproduce that spectrum:

* ``random`` — the paper's default: uniformly random target.
* ``round_robin`` — deterministic, equal counts (useful in tests).
* ``least_loaded`` — pick the output whose downstream queue is shortest;
  under the threaded runtime this is what actually realizes
  "free engines get more data" when engines run at different speeds (the
  runtime injects a queue-depth probe at wiring time).

Control tuples and punctuation are broadcast to *all* targets.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from .operators import Operator
from .tuples import StreamTuple

__all__ = ["Split"]

_STRATEGIES = ("random", "round_robin", "least_loaded")


class Split(Operator):
    """Distribute one input stream over ``n_targets`` output streams.

    Parameters
    ----------
    n_targets:
        Number of downstream PCA engines.
    strategy:
        ``"random"`` (paper default), ``"round_robin"``, or
        ``"least_loaded"``.
    seed:
        Seed for the random strategy (deterministic experiments).
    """

    def __init__(
        self,
        name: str,
        n_targets: int,
        *,
        strategy: str = "random",
        seed: int = 0,
    ) -> None:
        if n_targets < 1:
            raise ValueError(f"n_targets must be >= 1, got {n_targets}")
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {_STRATEGIES}"
            )
        super().__init__(name, n_inputs=1, n_outputs=n_targets)
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        self._next_rr = 0
        self._load_probe: Callable[[int], int] | None = None
        self._warned_no_probe = False
        self.sent_per_target = np.zeros(n_targets, dtype=np.int64)

    def set_load_probe(self, probe: Callable[[int], int]) -> None:
        """Install a queue-depth probe (threaded runtime only).

        ``probe(port) -> pending tuple count`` for the channel behind
        output ``port``; used by the ``least_loaded`` strategy.
        """
        self._load_probe = probe

    def _choose(self) -> int:
        strategy = self.strategy
        if strategy == "least_loaded":
            if self._load_probe is not None:
                loads = [self._load_probe(p) for p in range(self.n_outputs)]
                lo = min(loads)
                candidates = [p for p, v in enumerate(loads) if v == lo]
                return int(self._rng.choice(candidates))
            # No probe (synchronous engine): degrade deterministically to
            # round-robin rather than silently to uniform random.
            if not self._warned_no_probe:
                self._warned_no_probe = True
                warnings.warn(
                    f"Split {self.name!r}: least_loaded strategy has no "
                    "load probe (synchronous engine?); falling back to "
                    "round_robin",
                    RuntimeWarning,
                    stacklevel=2,
                )
            strategy = "round_robin"
        if strategy == "round_robin":
            port = self._next_rr
            self._next_rr = (self._next_rr + 1) % self.n_outputs
            return port
        return int(self._rng.integers(self.n_outputs))

    def process(self, tup: StreamTuple, port: int) -> None:
        if tup.is_control:
            # Control messages (e.g. a broadcast shutdown) reach everyone.
            for p in range(self.n_outputs):
                self.submit(tup, p)
            return
        target = self._choose()
        self.sent_per_target[target] += 1
        self.submit(tup, target)
