"""Graceful-degradation operators: dead-letter queue and circuit breaker.

Production stream systems treat malformed input and sustained overload as
routine, not exceptional (the ROADMAP's north star).  This module adds
the two standard guards in front of the compute plane:

* :class:`DeadLetterQueue` + :class:`QuarantineOperator` — a validating
  pass-through that captures *poison tuples* (wrong dimensionality,
  non-finite garbage, missing fields) into a bounded dead-letter queue
  instead of letting them crash an engine deep inside the graph.  The
  payloads are kept for post-mortem, the ``repro_dlq_total`` counter
  makes the loss visible, and the pipeline keeps flowing.
* :class:`CircuitBreaker` — a load-shedding valve for sustained
  overload: a token bucket admits up to ``max_rate_hz`` data tuples per
  second; when the bucket runs dry the breaker *opens* and sheds data
  tuples for ``open_for_s`` before closing again.  Control tuples and
  punctuation always pass, so shedding never breaks the sync protocol
  or shutdown.

Both are wired into the parallel application by
:func:`repro.parallel.app.build_parallel_pca_graph` (``quarantine=`` /
``shed_max_rate_hz=``) and exercised by the chaos harness
(:mod:`repro.streams.chaos`).  See ``docs/robustness.md`` for tuning.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .operators import Operator
from .tuples import StreamTuple

__all__ = [
    "CircuitBreaker",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "LoadShedValve",
    "QuarantineOperator",
    "default_validator",
]


@dataclass
class DeadLetterRecord:
    """One quarantined input, with enough context for a post-mortem."""

    origin: str
    reason: str
    payload: Any = None
    seq: int | None = None
    ts: float = field(default_factory=time.time)


class DeadLetterQueue:
    """Bounded, thread-safe store of quarantined inputs.

    Multiple producers (a quarantine operator, network sources routing
    unparsable lines) may share one queue or hold their own; the
    ``total`` counter never decreases even when old records are dropped
    by the capacity bound.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._records: deque[DeadLetterRecord] = deque(maxlen=capacity)
        self._total = 0
        self._by_origin: dict[str, int] = {}
        self._lock = threading.Lock()
        self._telemetry = None

    def bind_telemetry(self, telemetry) -> None:
        """Emit one ``dlq`` telemetry event per quarantined input."""
        self._telemetry = telemetry

    def quarantine(
        self,
        origin: str,
        reason: str,
        payload: Any = None,
        seq: int | None = None,
    ) -> DeadLetterRecord:
        """Capture one poison input; returns the stored record."""
        record = DeadLetterRecord(
            origin=origin, reason=reason, payload=payload, seq=seq
        )
        with self._lock:
            self._records.append(record)
            self._total += 1
            self._by_origin[origin] = self._by_origin.get(origin, 0) + 1
        tel = self._telemetry
        if tel is not None:
            # The matching ``repro_dlq_total`` counter is exported by the
            # registry collector over each producer's ``n_quarantined``
            # attribute (see telemetry.operator_metric_samples) — the
            # event carries the per-record context.
            tel.events.append({
                "ts": tel.now(), "kind": "dlq", "op": origin,
                "reason": reason, "seq": seq,
            })
        return record

    @property
    def total(self) -> int:
        """Inputs quarantined over the queue's lifetime."""
        return self._total

    @property
    def records(self) -> list[DeadLetterRecord]:
        """The retained records (oldest first, capacity-bounded)."""
        with self._lock:
            return list(self._records)

    def counts_by_origin(self) -> dict[str, int]:
        """Lifetime quarantine counts per producing operator."""
        with self._lock:
            return dict(self._by_origin)

    def merge_counts(self, origin_counts: dict[str, int]) -> None:
        """Fold per-origin counts from another process's shard in."""
        with self._lock:
            for origin, n in origin_counts.items():
                self._by_origin[origin] = (
                    self._by_origin.get(origin, 0) + int(n)
                )
                self._total += int(n)


def default_validator(
    tup: StreamTuple, expected_dim: int | None = None
) -> str | None:
    """Reason a data tuple is poison, or ``None`` when it is healthy.

    Checks the observation contract the PCA engines rely on: an ``x``
    vector (or ``xs`` block) of floats, finite dimensionality, not
    entirely NaN.  NaN *cells* are legitimate — they are the paper's
    gaps — but an all-NaN observation carries no information and a
    wrong-dimension or non-numeric one would raise deep inside the
    estimator.
    """
    payload = tup.payload
    x = payload.get("x")
    if type(x) is np.ndarray and x.ndim == 1 and x.dtype == np.float64:
        # Hot path: a well-formed observation vector.  The all-NaN scan
        # is O(d); short-circuit it on the first cell, which is finite
        # for every healthy row and for almost every gappy one.
        n = x.shape[0]
        if n == 0:
            return "'x' has shape (0,)"
        if expected_dim is not None and n != expected_dim:
            return f"dim {n} != expected {expected_dim}"
        if x[0] == x[0]:  # not NaN: cannot be all-NaN
            return None
        if not bool(np.all(np.isnan(x))):
            return None
        return "all cells NaN"
    if "xs" in payload:
        try:
            xs = np.asarray(payload["xs"], dtype=np.float64)
        except (TypeError, ValueError):
            return "block 'xs' is not numeric"
        if xs.ndim != 2 or xs.shape[0] == 0:
            return f"block 'xs' has shape {getattr(xs, 'shape', None)}"
        if expected_dim is not None and xs.shape[1] != expected_dim:
            return (
                f"block dim {xs.shape[1]} != expected {expected_dim}"
            )
        return None
    if "x" not in payload:
        return "missing 'x' field"
    try:
        x = np.asarray(payload["x"], dtype=np.float64)
    except (TypeError, ValueError):
        return "'x' is not numeric"
    if x.ndim != 1 or x.size == 0:
        return f"'x' has shape {getattr(x, 'shape', None)}"
    if expected_dim is not None and x.size != expected_dim:
        return f"dim {x.size} != expected {expected_dim}"
    if bool(np.all(np.isnan(x))):
        return "all cells NaN"
    return None


class QuarantineOperator(Operator):
    """Validating pass-through: poison tuples go to the DLQ, not the graph.

    Parameters
    ----------
    dlq:
        Destination for quarantined tuples (a fresh private queue when
        ``None``).
    expected_dim:
        When set, observations of any other dimensionality are poison.
    validator:
        ``(tup, expected_dim) -> reason | None`` override of
        :func:`default_validator`.
    """

    def __init__(
        self,
        name: str,
        *,
        dlq: DeadLetterQueue | None = None,
        expected_dim: int | None = None,
        validator: Callable[[StreamTuple, int | None], str | None]
        | None = None,
    ) -> None:
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.expected_dim = expected_dim
        self.validator = validator or default_validator
        self.n_quarantined = 0

    def bind_telemetry(self, telemetry) -> None:
        self.dlq.bind_telemetry(telemetry)

    def process(self, tup: StreamTuple, port: int) -> None:
        if tup.is_control:
            self.submit(tup, port=0)
            return
        reason = self.validator(tup, self.expected_dim)
        if reason is not None:
            self.n_quarantined += 1
            self.dlq.quarantine(
                self.name,
                reason,
                payload=dict(tup.payload),
                seq=tup.get("seq"),
            )
            return
        self.submit(tup, port=0)


class LoadShedValve:
    """The token bucket + open/closed state behind load shedding.

    Shared by the operator form (:class:`CircuitBreaker`) and the
    source-inline form
    (:class:`~repro.streams.sources.GuardedVectorSource`): a bucket of
    depth ``max_rate_hz * burst_s`` refills at ``max_rate_hz``
    tokens/s; every admitted data tuple spends one.  Sustained arrival
    above the rate drains the bucket, the valve *opens* (one
    ``breaker`` telemetry event + ``n_trips``) and sheds — counted in
    ``n_shed`` — until ``open_for_s`` passes, after which it closes
    with a half-full bucket.  Short bursts inside the bucket depth pass
    untouched.

    ``max_rate_hz=None`` disables the valve (``admit`` always true,
    zero bookkeeping).
    """

    def __init__(
        self,
        max_rate_hz: float | None = None,
        *,
        burst_s: float = 1.0,
        open_for_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_rate_hz is not None and max_rate_hz <= 0:
            raise ValueError(
                f"max_rate_hz must be positive or None, got {max_rate_hz}"
            )
        if burst_s <= 0:
            raise ValueError(f"burst_s must be positive, got {burst_s}")
        if open_for_s <= 0:
            raise ValueError(
                f"open_for_s must be positive, got {open_for_s}"
            )
        self.max_rate_hz = max_rate_hz
        self.burst_s = float(burst_s)
        self.open_for_s = float(open_for_s)
        self._clock = clock
        self._capacity = (
            max(1.0, max_rate_hz * burst_s)
            if max_rate_hz is not None else 0.0
        )
        self._tokens = self._capacity
        self._refill_at = clock()
        self._opened_at: float | None = None
        self.n_shed = 0
        self.n_trips = 0
        self._telemetry = None
        self._origin = "valve"
        # Admission runs on concurrent request handlers in the serving
        # layer: the token read-modify-write must be atomic.
        self._admit_lock = threading.Lock()

    def bind_telemetry(self, telemetry, origin: str) -> None:
        self._telemetry = telemetry
        self._origin = origin

    @property
    def state(self) -> str:
        """``"open"`` (shedding) or ``"closed"`` (admitting)."""
        return "open" if self._opened_at is not None else "closed"

    def _emit_event(self, event: str, **extra) -> None:
        tel = self._telemetry
        if tel is None:
            return
        tel.events.append({
            "ts": tel.now(), "kind": "breaker", "op": self._origin,
            "event": event, **extra,
        })

    def admit(self) -> bool:
        """Spend one token for a data tuple; ``False`` means shed it."""
        return self.admit_n(1)

    def admit_n(self, n: int = 1) -> bool:
        """Spend ``n`` tokens atomically (all-or-nothing).

        The serving layer admits whole ingest blocks: either every row
        of the block fits the rate budget or the block is shed intact —
        partial admission would break the zero-loss accounting on
        admitted traffic.  Thread-safe: concurrent admitters contend on
        one short lock.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if self.max_rate_hz is None:
            return True
        with self._admit_lock:
            now = self._clock()
            self._tokens = min(
                self._capacity,
                self._tokens + (now - self._refill_at) * self.max_rate_hz,
            )
            self._refill_at = now
            if self._opened_at is not None:
                if now - self._opened_at < self.open_for_s:
                    self.n_shed += n
                    return False
                # Cooldown over: close with a half-full bucket so a
                # still-hot stream re-opens quickly instead of
                # oscillating per tuple.
                self._opened_at = None
                self._tokens = max(self._tokens, self._capacity / 2.0)
                self._emit_event("closed", shed_so_far=self.n_shed)
            if self._tokens < float(n):
                # The matching repro_breaker_trips_total counter is
                # exported by the registry collector over ``n_trips``
                # (see telemetry.operator_metric_samples); only the
                # event is emitted here.
                self._opened_at = now
                self.n_trips += 1
                self.n_shed += n
                self._emit_event("open", trip=self.n_trips)
                return False
            self._tokens -= float(n)
            return True

    def retry_after_s(self, n: int = 1) -> float:
        """Seconds until ``n`` tokens could plausibly be admitted.

        While the valve is open this is the remaining cooldown; while
        closed it is the refill time of the missing tokens.  Served to
        clients as the 429 ``Retry-After`` hint.
        """
        if self.max_rate_hz is None:
            return 0.0
        with self._admit_lock:
            now = self._clock()
            if self._opened_at is not None:
                return max(0.0, self.open_for_s - (now - self._opened_at))
            tokens = min(
                self._capacity,
                self._tokens + (now - self._refill_at) * self.max_rate_hz,
            )
            deficit = max(0.0, float(n) - tokens)
            return deficit / self.max_rate_hz


class CircuitBreaker(Operator):
    """Load-shedding valve as a graph stage (see :class:`LoadShedValve`).

    ``max_rate_hz=None`` disables the valve entirely (pure pass-through
    with zero bookkeeping): the safe default for wiring the operator
    into a graph unconditionally.

    Control tuples and punctuation always pass: shedding must never
    starve the sync protocol or stall shutdown.
    """

    def __init__(
        self,
        name: str,
        *,
        max_rate_hz: float | None = None,
        burst_s: float = 1.0,
        open_for_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(name, n_inputs=1, n_outputs=1)
        self._valve = LoadShedValve(
            max_rate_hz, burst_s=burst_s, open_for_s=open_for_s,
            clock=clock,
        )
        self._valve._origin = name

    def bind_telemetry(self, telemetry) -> None:
        self._valve.bind_telemetry(telemetry, origin=self.name)

    @property
    def max_rate_hz(self) -> float | None:
        return self._valve.max_rate_hz

    @property
    def n_shed(self) -> int:
        return self._valve.n_shed

    @property
    def n_trips(self) -> int:
        return self._valve.n_trips

    @property
    def state(self) -> str:
        """``"open"`` (shedding) or ``"closed"`` (admitting)."""
        return self._valve.state

    def process(self, tup: StreamTuple, port: int) -> None:
        if tup.is_control or self._valve.admit():
            self.submit(tup, port=0)
