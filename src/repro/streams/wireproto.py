"""Length-prefixed framed wire protocol for the cluster runtime.

The multi-process engine ships :func:`~repro.streams.tuples.to_wire`
dicts over ``multiprocessing`` queues, which pickle them implicitly.  A
TCP transport cannot do that safely — unpickling socket bytes executes
arbitrary code — so the cluster runtime frames the *same* wire dicts
explicitly:

``MAGIC | body_len:u64 | header_len:u32 | n_blobs:u32 |
blob_len:u64 × n_blobs | header_json | blob₀ | blob₁ | …``

The header is JSON (structure, scalars, schema names); numpy arrays and
raw byte strings are hoisted out of it into binary *blobs* referenced by
index, so vector/block payloads cross the socket as their raw buffers
with no base64 inflation and no pickle.  Floats round-trip exactly
(``json`` emits shortest-repr), so cluster runs can hold numeric parity
with the in-process runtimes.

Everything arriving over a socket is untrusted until decoded:
:func:`decode_frame` rejects bad magic, oversized frames, and
unframeable structure with :class:`FrameError`; payload *values* are
then further vetted by ``from_wire(..., allow_pickle=False)`` and the
``register_wire_type`` allowlist (see :mod:`repro.streams.tuples` and
``docs/robustness.md``).

:class:`ReconnectingChannel` is the host-side client: a framed socket
that transparently redials the coordinator with the same exponential
backoff budget the network sources use (``_RetryBudget`` from
:mod:`repro.streams.network_sources`), re-sending its hello on every
reconnect so the coordinator can re-associate the stream.
"""

from __future__ import annotations

import json
import re
import select
import socket
import struct
import threading
from typing import Any, Callable

import numpy as np

from .network_sources import _RetryBudget

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "recv_frame_sized",
    "wait_readable",
    "ReconnectingChannel",
]

#: First bytes of every frame; a stream that does not start with this is
#: not speaking the protocol and is rejected before any allocation.
MAGIC = b"RPW1"

#: Upper bound on one frame's body.  A length prefix from an untrusted
#: peer must never size an allocation unchecked.
MAX_FRAME_BYTES = 1 << 28  # 256 MiB

_HEAD = struct.Struct("!QII")
_U64 = struct.Struct("!Q")


class FrameError(ValueError):
    """A frame violates the protocol (bad magic, oversized, malformed)."""


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------


def _jsonify(value: Any, blobs: list[bytes]) -> Any:
    """JSON-safe view of ``value``; arrays/bytes hoisted into ``blobs``."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        ref = {
            "__frame__": "nd",
            "i": len(blobs),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        }
        blobs.append(arr.tobytes())
        return ref
    if isinstance(value, (bytes, bytearray, memoryview)):
        ref = {"__frame__": "bytes", "i": len(blobs)}
        blobs.append(bytes(value))
        return ref
    if isinstance(value, dict):
        if "__frame__" in value:
            raise FrameError("'__frame__' is a reserved key in frame dicts")
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise FrameError(
                    f"frame dict keys must be str, got {type(k).__name__}"
                )
            out[k] = _jsonify(v, blobs)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, blobs) for v in value]
    raise FrameError(
        f"cannot frame {type(value).__name__!r}: encode payloads with "
        f"to_wire/_encode_value before framing"
    )


#: Shape of every dtype string the encoder emits (``arr.dtype.str``):
#: byteorder, kind letter, item size, optional datetime unit.  Anything
#: else — in particular numpy's comma-separated struct syntax, whose
#: parser runs ``ast`` on the string — is rejected before ``np.dtype``
#: ever sees it.
_DTYPE_RE = re.compile(r"^[<>|=][a-zA-Z]\d*(\[[a-zA-Z]+\])?$")


def _dejsonify(value: Any, blobs: list[bytes]) -> Any:
    if isinstance(value, dict):
        tag = value.get("__frame__")
        if tag == "nd":
            raw = blobs[value["i"]]
            dtype_s = value["dtype"]
            if not isinstance(dtype_s, str) or not _DTYPE_RE.match(dtype_s):
                raise FrameError(f"bad nd dtype {dtype_s!r}")
            dtype = np.dtype(dtype_s)
            if dtype.hasobject:
                raise FrameError("object dtypes cannot cross the wire")
            # Copy: the decoded array must be writable and must not pin
            # the receive buffer.
            return (
                np.frombuffer(raw, dtype=dtype)
                .reshape(value["shape"])
                .copy()
            )
        if tag == "bytes":
            return blobs[value["i"]]
        return {k: _dejsonify(v, blobs) for k, v in value.items()}
    if isinstance(value, list):
        return [_dejsonify(v, blobs) for v in value]
    return value


def encode_frame(msg: dict[str, Any]) -> bytes:
    """Serialize ``msg`` (a plain dict) into one framed byte string."""
    blobs: list[bytes] = []
    header = _jsonify(msg, blobs)
    hj = json.dumps(header, separators=(",", ":")).encode()
    lens = b"".join(_U64.pack(len(b)) for b in blobs)
    body_len = len(hj) + len(lens) + sum(len(b) for b in blobs)
    if body_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body {body_len} bytes exceeds MAX_FRAME_BYTES"
        )
    parts = [MAGIC, _HEAD.pack(body_len, len(hj), len(blobs)), lens, hj]
    parts.extend(blobs)
    return b"".join(parts)


def decode_frame(data: bytes | memoryview) -> dict[str, Any]:
    """Rebuild the dict encoded by :func:`encode_frame`.

    The bytes are untrusted: every length field is validated against the
    actual buffer before any slice, and *any* parse failure — junk JSON,
    truncated structs, bogus blob refs, a dtype/shape that does not
    match its blob — surfaces as :class:`FrameError`, never as a raw
    ``json``/``struct``/``KeyError`` leaking out of the protocol layer.
    Callers (the coordinator accept/receiver loops, the host channel)
    rely on that contract to treat a malformed frame as a protocol
    violation rather than an internal crash.
    """
    view = memoryview(data)
    if len(view) < len(MAGIC) + _HEAD.size:
        raise FrameError("truncated frame: shorter than the fixed header")
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise FrameError("bad frame magic")
    off = len(MAGIC)
    body_len, header_len, n_blobs = _HEAD.unpack_from(view, off)
    off += _HEAD.size
    if body_len > MAX_FRAME_BYTES:
        raise FrameError("frame length exceeds MAX_FRAME_BYTES")
    if len(view) - off != body_len:
        raise FrameError(
            f"frame body is {len(view) - off} bytes, header says {body_len}"
        )
    lens_size = n_blobs * _U64.size
    if header_len + lens_size > body_len:
        raise FrameError(
            "frame header_len/n_blobs exceed the declared body length"
        )
    try:
        blob_lens = [
            _U64.unpack_from(view, off + i * _U64.size)[0]
            for i in range(n_blobs)
        ]
        off += lens_size
        if sum(blob_lens) != body_len - header_len - lens_size:
            raise FrameError("blob lengths do not sum to the frame body")
        header = json.loads(bytes(view[off : off + header_len]).decode())
        off += header_len
        blobs: list[bytes] = []
        for blen in blob_lens:
            blobs.append(bytes(view[off : off + blen]))
            off += blen
        decoded = _dejsonify(header, blobs)
    except FrameError:
        raise
    except (
        struct.error,
        ValueError,
        KeyError,
        IndexError,
        TypeError,
        UnicodeDecodeError,
        SyntaxError,
    ) as exc:
        # json.JSONDecodeError is a ValueError; numpy raises
        # ValueError/TypeError on bad dtype/shape refs (and its
        # comma-struct dtype parser can raise SyntaxError, though
        # _DTYPE_RE forecloses that path before np.dtype runs).
        raise FrameError(f"malformed frame: {exc}") from exc
    if not isinstance(decoded, dict):
        raise FrameError(
            f"frame header must decode to a dict, got "
            f"{type(decoded).__name__}"
        )
    return decoded


# ---------------------------------------------------------------------------
# Socket framing
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF *before any byte* (the peer closed
    at a frame boundary); raises :class:`ConnectionError` on EOF
    mid-read (a torn frame — the connection died with a frame in
    flight).  ``socket.timeout`` propagates to the caller.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ConnectionError(
                f"torn frame: connection closed after {got}/{n} bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def wait_readable(sock: socket.socket, timeout_s: float) -> bool:
    """Whether ``sock`` has bytes (or EOF) within ``timeout_s``.

    Receivers poll with this instead of ``settimeout``: a socket timeout
    applies to *every* operation on the socket, so it would make a
    concurrent ``sendall`` from a sender thread raise spuriously and
    tear a healthy connection.  The sockets stay blocking throughout.
    """
    try:
        readable, _, _ = select.select([sock], [], [], timeout_s)
    except (OSError, ValueError):
        # A closed/invalid fd counts as readable: the recv that follows
        # surfaces the real error.
        return True
    return bool(readable)


def send_frame(sock: socket.socket, msg: dict[str, Any]) -> int:
    """Encode ``msg`` and write the whole frame; returns bytes sent."""
    data = encode_frame(msg)
    sock.sendall(data)
    return len(data)


def recv_frame_sized(
    sock: socket.socket,
) -> tuple[dict[str, Any] | None, int]:
    """Like :func:`recv_frame`, plus the frame's on-wire byte count.

    Transports that meter traffic (``ReconnectingChannel.bytes_in``)
    need the size, and the decoded dict cannot tell them — blobs and
    header framing are gone after decode.
    """
    head = _recv_exact(sock, len(MAGIC) + _HEAD.size)
    if head is None:
        return None, 0
    if head[: len(MAGIC)] != MAGIC:
        raise FrameError("bad frame magic")
    body_len, _, _ = _HEAD.unpack_from(head, len(MAGIC))
    if body_len > MAX_FRAME_BYTES:
        raise FrameError("frame length exceeds MAX_FRAME_BYTES")
    body = _recv_exact(sock, body_len)
    if body is None:
        raise ConnectionError("torn frame: connection closed after header")
    return decode_frame(head + body), len(head) + len(body)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ConnectionError` on a torn frame and
    :class:`FrameError` on protocol violations.  A partial prefix read
    interrupted by EOF is torn, not clean: length-prefixed framing means
    any unfinished read loses an in-flight frame.
    """
    return recv_frame_sized(sock)[0]


# ---------------------------------------------------------------------------
# Reconnecting client channel (engine-host side)
# ---------------------------------------------------------------------------


class ReconnectingChannel:
    """A framed TCP client that redials on failure with backoff.

    One engine host holds exactly one channel to the coordinator.  Both
    :meth:`send` and :meth:`recv` transparently reconnect on socket
    failure, consuming a fresh ``_RetryBudget`` (the same exponential
    backoff machinery as the reconnecting network sources) per outage
    and re-sending ``hello`` so the coordinator re-associates the host.
    An exhausted budget raises :class:`ConnectionError` — the host then
    dies and the coordinator's membership layer takes over.

    Delivery semantics across a reconnect are *at-least-once*: a frame
    the kernel accepted but never delivered is lost, a frame delivered
    while the sender saw an error is duplicated on retry.  Between
    outages delivery is exactly-once (TCP FIFO).  The sync protocol
    tolerates both (idempotent merges, counted duplicates).

    ``flap_after`` is the chaos hook: after that many received frames
    the channel force-closes its own socket once, simulating a mid-run
    network flap; the subsequent send/recv exercises the real reconnect
    path.
    """

    def __init__(
        self,
        addr: tuple[str, int],
        hello: dict[str, Any],
        *,
        max_retries: int = 8,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        jitter: float = 0.3,
        seed: int = 0,
        connect_timeout_s: float = 10.0,
        flap_after: int | None = None,
        on_reconnect: Callable[[], None] | None = None,
    ) -> None:
        self.addr = tuple(addr)
        self.hello = dict(hello)
        self._budget_args = (max_retries, base_s, cap_s, jitter, seed)
        self.connect_timeout_s = connect_timeout_s
        self.flap_after = flap_after
        self.on_reconnect = on_reconnect
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self.n_reconnects = 0
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self._flapped = False
        self._closed = False
        self._ever_connected = False

    # -- connection management ------------------------------------------

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            self.addr, timeout=self.connect_timeout_s
        )
        # Back to blocking: per-operation timeouts would also govern the
        # sender thread's sendall (see wait_readable).
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.bytes_out += send_frame(sock, self.hello)
        self.frames_out += 1
        return sock

    def connect(self) -> None:
        """Establish the initial connection (with backoff)."""
        with self._conn_lock:
            if self._sock is None:
                self._sock = self._dial_with_budget()

    def _dial_with_budget(self) -> socket.socket:
        budget = _RetryBudget(*self._budget_args)
        while True:
            try:
                sock = self._dial()
                if self._ever_connected:
                    self.n_reconnects += 1
                    if self.on_reconnect is not None:
                        self.on_reconnect()
                self._ever_connected = True
                return sock
            except OSError as exc:
                if not budget.wait():
                    raise ConnectionError(
                        f"reconnect budget exhausted dialing "
                        f"{self.addr}: {exc}"
                    ) from exc

    def _reconnect(self, failed: socket.socket | None = None) -> socket.socket:
        """Replace ``failed`` with a fresh dialed socket.

        The sender and receiver threads share one socket; when both hit
        the same outage, both call in here.  Whichever loses the race
        must *not* tear down the healthy socket the winner just dialed —
        if ``self._sock`` is no longer the socket that failed, another
        thread already reconnected and we simply use its socket.
        """
        with self._conn_lock:
            if self._closed:
                raise ConnectionError("channel closed")
            if (
                failed is not None
                and self._sock is not None
                and self._sock is not failed
            ):
                return self._sock
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - already dead
                    pass
                self._sock = None
            self._sock = self._dial_with_budget()
            return self._sock

    def _current(self) -> socket.socket:
        with self._conn_lock:
            if self._sock is None:
                if self._closed:
                    raise ConnectionError("channel closed")
                self._sock = self._dial_with_budget()
            return self._sock

    # -- I/O -------------------------------------------------------------

    def send(self, msg: dict[str, Any]) -> None:
        """Frame and send ``msg``, reconnecting on socket failure."""
        with self._send_lock:
            while True:
                sock = self._current()
                try:
                    self.bytes_out += send_frame(sock, msg)
                    self.frames_out += 1
                    return
                except OSError:
                    self._reconnect(sock)

    def recv(self, timeout_s: float = 0.05) -> dict[str, Any] | None:
        """One frame, or ``None`` on timeout; reconnects on failure."""
        if (
            self.flap_after is not None
            and not self._flapped
            and self.frames_in >= self.flap_after
        ):
            # Chaos hook: sever the link abruptly, once.  The reconnect
            # below is the behaviour under test.
            self._flapped = True
            with self._conn_lock:
                if self._sock is not None:
                    self._sock.close()
                    self._sock = None
        while True:
            sock = self._current()
            if not wait_readable(sock, timeout_s):
                return None
            try:
                msg, nbytes = recv_frame_sized(sock)
            except (ConnectionError, OSError):
                self._reconnect(sock)
                continue
            if msg is None:  # peer closed cleanly: treat as outage
                self._reconnect(sock)
                continue
            self.frames_in += 1
            self.bytes_in += nbytes
            return msg

    def close(self) -> None:
        with self._conn_lock:
            self._closed = True
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - already dead
                    pass
                self._sock = None

    def counters(self) -> dict[str, int]:
        return {
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "reconnects": self.n_reconnects,
        }
