"""Scenario-driven chaos harness for the parallel merge path.

The ROADMAP's robustness goal is not "the engines survive one
hand-crafted crash test" but "faults are a *routine input*": declared,
seeded, injected, and measured.  This module turns the primitives that
already exist — :class:`~repro.streams.supervision.FaultInjector`,
supervision policies, controller membership, the dead-letter queue —
into declarative, reproducible *scenarios* runnable against all four
runtimes:

* :class:`FaultSpec` — one declarative fault: an injector plan
  (``crash`` / ``delay`` / ``drop``), an engine blackout with state loss
  (``kill_engine``, threaded/synchronous), a real ``SIGKILL`` of a
  worker process (``worker_kill``, process runtime) or of a TCP engine
  host (``host_kill``, cluster runtime), a severed-and-redialled host
  channel (``netsplit``, cluster runtime), or input corruption
  (``poison``).
* :class:`ChaosScenario` — the full experiment: data model, graph
  configuration (membership, quarantine, shedding), runtime, and the
  fault list.  Everything is derived from ``seed`` so a report can be
  reproduced bit-for-bit on the deterministic runtime and
  statistically on the concurrent ones.
* :func:`run_scenario` — executes the scenario *and* a fault-free
  synchronous reference run, then reports recovery time (from the
  telemetry event stream), tuples lost / duplicated / quarantined /
  shed, and the subspace affinity of the chaotic global basis against
  the fault-free one.
* :func:`run_suite` / :func:`smoke_suite` — batch execution with a
  JSONL report artifact (the CI ``chaos-smoke`` job uploads it).

See ``docs/robustness.md`` for the scenario catalog and acceptance
thresholds.
"""

from __future__ import annotations

import json
import pathlib
import socket
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..core.metrics import principal_angles
from ..data.gaussian import PlantedSubspaceModel
from ..data.streams import VectorStream
from .supervision import FaultInjector, Supervisor
from .telemetry import Telemetry, TelemetryConfig

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "FaultSpec",
    "FlakyVectorServer",
    "cluster_flap_scenario",
    "cluster_kill_host_scenario",
    "kill_engine_scenario",
    "load_chaos_reports",
    "network_flap_scenario",
    "poison_scenario",
    "queue_stall_scenario",
    "run_scenario",
    "run_suite",
    "slow_operator_scenario",
    "smoke_suite",
    "write_chaos_reports",
]

#: Fault kinds the harness understands.
FAULT_KINDS = (
    "crash",        # raise InjectedFault on `op` (FaultInjector.crash)
    "delay",        # sleep `seconds` per tuple on `op` (slow operator /
                    # queue stall, depending on where it is installed)
    "drop",         # silently swallow tuples on `op`
    "kill_engine",  # blackout window + state loss on a PCA engine
                    # (threaded / synchronous runtimes)
    "worker_kill",  # SIGKILL the worker process hosting `op` once the
                    # controller has seen `at_tuple` messages (process)
    "host_kill",    # SIGKILL the engine-host process holding `op` once
                    # the controller has seen `at_tuple` messages
                    # (cluster runtime: a full engine blackout over TCP)
    "netsplit",     # sever the TCP channel of the host holding `op`
                    # once after it has received `at_tuple` frames; the
                    # channel must redial with backoff (cluster runtime)
    "poison",       # corrupt `duration` input rows (wrong dim / all-NaN)
)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    op:
        Target operator name (ignored by ``poison``).
    at_tuple:
        1-based trigger: the N-th ``process`` call on the target
        operator (injector kinds, ``kill_engine``) or the N-th message
        seen by the sync controller (``worker_kill`` — worker-side tuple
        counts are invisible to the coordinator).
    duration:
        Window length in tuples (``kill_engine``, ``crash``/``delay``/
        ``drop`` repeat) or number of corrupted rows (``poison``).
    seconds:
        Per-tuple sleep for ``delay``; for ``kill_engine``, how long the
        engine stays down per swallowed tuple — a dead engine does not
        drain its queue instantly, and the hold gives the concurrent
        runtimes wall-clock room to notice the silence.
    """

    kind: str
    op: str | None = None
    at_tuple: int = 1
    duration: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.kind != "poison" and not self.op:
            raise ValueError(f"fault kind {self.kind!r} needs an op name")
        if self.at_tuple < 1:
            raise ValueError("at_tuple is 1-based and must be >= 1")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")


@dataclass
class ChaosScenario:
    """A reproducible chaos experiment on the parallel PCA application.

    The graph is the standard Fig. 2 topology built by
    :func:`repro.parallel.app.build_parallel_pca_graph` with the
    robustness hooks armed (membership, quarantine); ``faults`` are
    installed on top.  All randomness (data, split routing, poison row
    selection) derives from ``seed``.
    """

    name: str
    faults: tuple[FaultSpec, ...] = ()
    runtime: str = "threaded"
    n_engines: int = 4
    n_samples: int = 1600
    dim: int = 16
    n_components: int = 4
    #: Forgetting factor.  The sync gate opens after ``1.5 / (1 - α)``
    #: observations per engine, so chaos runs use a shorter effective
    #: window than production defaults to get several sync rounds out
    #: of a small, fast scenario.
    alpha: float = 0.98
    seed: int = 0
    strategy: str = "ring"
    stale_after: int | None = 12
    quorum: int | None = None
    heartbeat_every: int = 25
    quarantine: bool = True
    supervise: bool = True
    checkpoint_every: int = 50
    sync_gate_factor: float = 1.5
    #: Wall-clock ceiling for the run.  Generous: worker-restart
    #: scenarios on a loaded single-CPU CI box have been observed to
    #: need well over 120 s while still recovering correctly.
    timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.runtime not in (
            "synchronous", "threaded", "process", "cluster"
        ):
            raise ValueError(f"unknown runtime {self.runtime!r}")
        self.faults = tuple(self.faults)
        for f in self.faults:
            if f.kind == "worker_kill" and self.runtime != "process":
                raise ValueError(
                    "worker_kill needs the process runtime; use "
                    "kill_engine on threaded/synchronous or host_kill "
                    "on cluster"
                )
            if (
                f.kind in ("host_kill", "netsplit")
                and self.runtime != "cluster"
            ):
                raise ValueError(
                    f"{f.kind} needs the cluster runtime"
                )
            if f.kind == "kill_engine" and self.runtime in (
                "process", "cluster"
            ):
                raise ValueError(
                    "kill_engine wraps the operator in-process; use "
                    "worker_kill (process) or host_kill (cluster)"
                )
            if (
                self.runtime in ("process", "cluster")
                and f.kind in ("crash", "delay", "drop")
                and f.op is not None
                and f.op.startswith("pca-")
            ):
                # Injector wrappers are closures and cannot cross the
                # pickle boundary into a worker/host process.
                raise ValueError(
                    f"{f.kind} on {f.op!r} cannot be injected into a "
                    "worker process; target a coordinator-side operator "
                    "or use worker_kill/host_kill"
                )


@dataclass
class ChaosReport:
    """What one chaos run did to the pipeline, quantified.

    ``n_lost`` is the number of input observations that are entirely
    unaccounted for: not processed by any engine (``n_processed`` sums
    the engines' own data-tuple counters; ``n_observed`` counts unique
    sequence numbers on the diagnostics stream, which excludes
    estimator warm-up), not quarantined, not shed — the true
    (undesirable) loss.  ``affinity`` is
    ``cos(max principal angle)`` between the chaotic run's merged global
    basis and the fault-free synchronous reference (1.0 = identical
    subspace).
    """

    scenario: str
    runtime: str
    seed: int
    ok: bool = False
    error: str | None = None
    wall_time_s: float = 0.0
    n_input: int = 0
    n_processed: int = 0
    n_observed: int = 0
    n_lost: int = 0
    n_duplicated: int = 0
    n_quarantined: int = 0
    n_shed: int = 0
    n_evictions: int = 0
    n_rejoins: int = 0
    n_reseeds: int = 0
    n_reconnects: int = 0
    recovery_time_s: float | None = None
    affinity: float | None = None
    membership: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


# ---------------------------------------------------------------------------
# Fault installation
# ---------------------------------------------------------------------------


def _find_op(graph, name: str):
    for op in graph:
        if op.name == name:
            return op
    raise ValueError(f"fault targets unknown operator {name!r}")


def _install_kill_engine(
    app, spec: FaultSpec, estimator_factory, tel: Telemetry
) -> None:
    """Blackout window with state loss: the in-process "kill".

    For the ``spec.duration`` process calls starting at
    ``spec.at_tuple`` the target engine is *down*: every tuple (data and
    control alike) is silently swallowed, and on entry its estimator is
    replaced with a fresh one — the restarted engine remembers nothing.
    The controller evicts it for silence; its first tuple after the
    window triggers rejoin + reseed, and the fresh estimator adopts the
    global basis.  The window must close before end-of-stream or the
    swallowed punctuation deadlocks shutdown.
    """
    op = _find_op(app.graph, spec.op)
    inner = op.process
    lo, hi = spec.at_tuple, spec.at_tuple + spec.duration
    calls = {"n": 0, "down": False}

    def wrapped(tup, port: int = 0) -> None:
        calls["n"] += 1
        if lo <= calls["n"] < hi:
            if not calls["down"]:
                calls["down"] = True
                op.estimator = estimator_factory(op.engine_id)
                op._ready_announced = False
                tel.events.append({
                    "ts": tel.now(), "kind": "chaos", "fault": spec.kind,
                    "op": op.name, "at_tuple": calls["n"],
                })
            if spec.seconds:
                time.sleep(spec.seconds)
            return
        inner(tup, port)

    op.process = wrapped


def _start_worker_killer(
    engine, app, spec: FaultSpec, tel: Telemetry
) -> threading.Thread:
    """SIGKILL the worker hosting ``spec.op`` mid-protocol.

    Worker tuple counts are invisible from the coordinator, so the
    trigger is the sync controller's own message counter reaching
    ``spec.at_tuple`` — by then the target engine is provably
    mid-stream.  The supervisor's RestartFromCheckpoint policy then
    drives the normal death path: respawn, checkpoint resume, rejoin.
    """
    controller = app.controller

    def run() -> None:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if controller._messages_seen >= spec.at_tuple:
                for wid, pe in getattr(engine, "_worker_pes", {}).items():
                    if any(o.name == spec.op for o in pe.operators):
                        proc = engine._procs.get(wid)
                        if proc is not None and proc.is_alive():
                            proc.kill()
                            tel.events.append({
                                "ts": tel.now(), "kind": "chaos",
                                "fault": "worker_kill", "op": spec.op,
                                "pid": proc.pid,
                            })
                        return
                return
            time.sleep(0.002)

    t = threading.Thread(target=run, name="chaos-killer", daemon=True)
    t.start()
    return t


def _start_host_killer(
    engine, app, spec: FaultSpec, tel: Telemetry
) -> threading.Thread:
    """SIGKILL the engine host holding ``spec.op`` mid-protocol.

    The cluster analog of :func:`_start_worker_killer`: host-side tuple
    counts live across a socket, so the trigger is again the sync
    controller's own message counter.  With ``tolerate_host_loss=True``
    the coordinator injects punctuation on the dead host's routes and
    the controller's eviction + quorum machinery owns correctness.
    """
    controller = app.controller
    host_id = engine._loc_of[spec.op]

    def run() -> None:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if controller._messages_seen >= spec.at_tuple:
                engine.kill_host(host_id)
                tel.events.append({
                    "ts": tel.now(), "kind": "chaos",
                    "fault": "host_kill", "op": spec.op,
                    "host": host_id,
                })
                return
            time.sleep(0.002)

    t = threading.Thread(target=run, name="chaos-host-killer", daemon=True)
    t.start()
    return t


def _poison_rows(
    x: np.ndarray, specs: list[FaultSpec], seed: int
) -> tuple[list[np.ndarray], set[int]]:
    """Replace seeded row indices with poison (wrong dim / all-NaN)."""
    rows: list[np.ndarray] = [np.asarray(r, dtype=np.float64) for r in x]
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    dim = x.shape[1]
    poisoned: set[int] = set()
    total = sum(s.duration for s in specs)
    total = min(total, len(rows))
    idx = rng.choice(len(rows), size=total, replace=False)
    for j, i in enumerate(sorted(int(v) for v in idx)):
        poisoned.add(i)
        if j % 2 == 0:
            rows[i] = np.zeros(dim + 3)          # wrong dimensionality
        else:
            rows[i] = np.full(dim, np.nan)       # all-NaN: no information
    return rows, poisoned


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------


def _reference_basis(scenario: ChaosScenario, x: np.ndarray) -> np.ndarray:
    """Fault-free global basis: the synchronous runtime on clean data."""
    from ..parallel.runner import ParallelStreamingPCA

    result = ParallelStreamingPCA(
        scenario.n_components,
        n_engines=scenario.n_engines,
        alpha=scenario.alpha,
        strategy=scenario.strategy,
        runtime="synchronous",
        sync_gate_factor=scenario.sync_gate_factor,
        split_seed=scenario.seed,
        collect_diagnostics=False,
    ).run(VectorStream.from_array(x))
    return result.global_state.basis


def _affinity(a: np.ndarray, b: np.ndarray) -> float:
    k = min(a.shape[1], b.shape[1])
    return float(np.cos(principal_angles(a[:, :k], b[:, :k]).max()))


def run_scenario(
    scenario: ChaosScenario,
    *,
    reference: np.ndarray | None = None,
    telemetry: Telemetry | None = None,
) -> ChaosReport:
    """Execute one scenario end to end and quantify the damage.

    Runs the fault-free synchronous reference first (unless a
    ``reference`` basis is supplied), then the chaotic run on
    ``scenario.runtime`` with all faults installed.  Failures of the
    chaotic run are captured in the report (``ok=False``), never
    raised — a chaos suite must outlive its own experiments.
    """
    from ..core.robust import RobustIncrementalPCA
    from ..parallel.app import (
        build_parallel_pca_graph,
        engine_restart_supervisor,
    )
    from ..streams.engine import SynchronousEngine, ThreadedEngine
    from ..streams.fusion import FusionPlan
    from ..streams.procengine import ProcessEngine

    report = ChaosReport(
        scenario=scenario.name, runtime=scenario.runtime,
        seed=scenario.seed,
    )
    model = PlantedSubspaceModel(
        scenario.dim,
        signal_variances=tuple(
            float(v) for v in np.linspace(
                25.0, 4.0, scenario.n_components
            )
        ),
        seed=scenario.seed,
    )
    x = model.sample(
        scenario.n_samples, np.random.default_rng(scenario.seed + 1)
    )
    ref = reference if reference is not None else _reference_basis(
        scenario, x
    )

    poison_specs = [f for f in scenario.faults if f.kind == "poison"]
    rows: list[np.ndarray] | np.ndarray = x
    poisoned: set[int] = set()
    if poison_specs:
        rows, poisoned = _poison_rows(x, poison_specs, scenario.seed)
    report.n_input = len(rows)
    stream = VectorStream.from_iterable(
        rows, dim=scenario.dim, length=len(rows)
    )

    def factory(engine_id: int) -> RobustIncrementalPCA:
        return RobustIncrementalPCA(
            scenario.n_components, alpha=scenario.alpha
        )

    app = build_parallel_pca_graph(
        stream,
        scenario.n_engines,
        factory,
        strategy=scenario.strategy,
        split_seed=scenario.seed,
        sync_gate_factor=scenario.sync_gate_factor,
        collect_diagnostics=True,
        quarantine=scenario.quarantine,
        stale_after=scenario.stale_after,
        quorum=scenario.quorum,
        heartbeat_every=scenario.heartbeat_every,
    )
    tel = telemetry if telemetry is not None else Telemetry(
        TelemetryConfig(metrics=True, tracing=False)
    )

    injector: FaultInjector | None = None
    for f in scenario.faults:
        if f.kind == "crash":
            injector = injector or FaultInjector()
            injector.crash(f.op, at_tuple=f.at_tuple, repeat=f.duration)
        elif f.kind == "delay":
            injector = injector or FaultInjector()
            injector.delay(
                f.op, at_tuple=f.at_tuple, seconds=f.seconds,
                repeat=f.duration,
            )
        elif f.kind == "drop":
            injector = injector or FaultInjector()
            injector.drop(f.op, at_tuple=f.at_tuple, repeat=f.duration)
        elif f.kind == "kill_engine":
            _install_kill_engine(app, f, factory, tel)
    if injector is not None:
        injector.install(app.graph)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as ckpt_dir:
        supervisor: Supervisor | None = None
        if scenario.supervise:
            supervisor = engine_restart_supervisor(
                app,
                directory=ckpt_dir if scenario.runtime == "process"
                else None,
                checkpoint_every=scenario.checkpoint_every,
            )
        t0 = time.perf_counter()
        try:
            if scenario.runtime == "synchronous":
                SynchronousEngine(
                    app.graph, supervisor=supervisor, telemetry=tel
                ).run()
            elif scenario.runtime == "threaded":
                ThreadedEngine(
                    app.graph,
                    fusion=FusionPlan.per_operator(app.graph),
                    supervisor=supervisor,
                    telemetry=tel,
                ).run(timeout_s=scenario.timeout_s)
            elif scenario.runtime == "cluster":
                from .clusterengine import ClusterEngine

                main_ops = {app.split.name, app.controller.name}
                engine = ClusterEngine(
                    app.graph,
                    main_ops=main_ops,
                    n_hosts=scenario.n_engines,
                    tolerate_host_loss=True,
                    supervisor=supervisor,
                    telemetry=tel,
                )
                for f in scenario.faults:
                    if f.kind == "netsplit":
                        # Translate the op name into its host placement;
                        # the host's channel severs itself after
                        # at_tuple received frames and must redial.
                        engine.flap_hosts[engine._loc_of[f.op]] = (
                            f.at_tuple
                        )
                    elif f.kind == "host_kill":
                        _start_host_killer(engine, app, f, tel)
                engine.run(timeout_s=scenario.timeout_s)
                report.n_reconnects = engine.cluster_stats.get(
                    "reconnects", 0
                )
            else:
                main_ops = {app.split.name, app.controller.name}
                engine = ProcessEngine(
                    app.graph,
                    main_ops=main_ops,
                    supervisor=supervisor,
                    telemetry=tel,
                )
                for f in scenario.faults:
                    if f.kind == "worker_kill":
                        _start_worker_killer(engine, app, f, tel)
                engine.run(timeout_s=scenario.timeout_s)
            report.ok = True
        except Exception as exc:  # noqa: BLE001 - the suite must survive
            report.error = f"{type(exc).__name__}: {exc}"
        report.wall_time_s = time.perf_counter() - t0

    _fill_report(report, scenario, app, tel, ref, poisoned)
    return report


def _fill_report(
    report: ChaosReport,
    scenario: ChaosScenario,
    app,
    tel: Telemetry,
    ref: np.ndarray,
    poisoned: set[int],
) -> None:
    seen: dict[int, int] = {}
    if app.diag_sink is not None:
        for t in app.diag_sink.tuples:
            if "weight" in t.payload and "seq" in t.payload:
                seq = int(t["seq"])
                seen[seq] = seen.get(seq, 0) + 1
    report.n_observed = len(seen)
    report.n_duplicated = sum(n - 1 for n in seen.values() if n > 1)
    dlq = app.dlq
    report.n_quarantined = dlq.total if dlq is not None else 0
    report.n_shed = app.n_shed
    report.n_processed = sum(
        int(getattr(op, "n_data_tuples", 0)) for op in app.engines
    )
    report.n_lost = max(
        0,
        report.n_input - report.n_processed - report.n_quarantined
        - report.n_shed,
    )
    stats = app.controller.stats
    report.n_evictions = stats.n_evictions
    report.n_rejoins = stats.n_rejoins
    report.n_reseeds = stats.n_reseeds
    report.membership = {
        str(k): v for k, v in app.controller.membership().items()
    }

    events = tel.events.events()
    keep = (
        "chaos", "membership", "dlq", "breaker",
        "cluster_host_dead", "cluster_host_connected",
    )
    report.events = [e for e in events if e.get("kind") in keep]
    fault_ts = [
        e["ts"] for e in report.events if e.get("kind") == "chaos"
    ]
    rejoin_ts = [
        e["ts"] for e in report.events
        if e.get("kind") == "membership" and e.get("event") == "rejoins"
    ]
    if fault_ts and rejoin_ts:
        after = [t for t in rejoin_ts if t >= fault_ts[0]]
        if after:
            report.recovery_time_s = float(after[0] - fault_ts[0])

    if report.ok:
        try:
            state = app.controller.global_state(scenario.n_components)
            report.affinity = _affinity(ref, state.basis)
        except Exception as exc:  # noqa: BLE001 - quorum not met, etc.
            report.ok = False
            report.error = f"{type(exc).__name__}: {exc}"


# ---------------------------------------------------------------------------
# Scenario catalog
# ---------------------------------------------------------------------------


def kill_engine_scenario(
    runtime: str = "threaded", *, seed: int = 0, n_engines: int = 4
) -> ChaosScenario:
    """Kill 1 of ``n_engines`` engines mid-stream; it must rejoin.

    On the process runtime the kill is a real ``SIGKILL`` of the worker
    process (restart via checkpoint); on threaded/synchronous it is a
    blackout window with state loss.  Either way the controller must
    evict the silent peer, reroute its ring traffic, and reseed it on
    rejoin — and the merged global basis must stay within affinity
    0.98 of the fault-free run.
    """
    if runtime == "process":
        fault = FaultSpec(kind="worker_kill", op="pca-1", at_tuple=40)
    else:
        fault = FaultSpec(
            kind="kill_engine", op="pca-1", at_tuple=120, duration=220,
            seconds=0.0015,
        )
    return ChaosScenario(
        name=f"kill-1-of-{n_engines}",
        faults=(fault,),
        runtime=runtime,
        n_engines=n_engines,
        n_samples=2400,
        seed=seed,
    )


def poison_scenario(
    runtime: str = "threaded", *, seed: int = 0, n_poison: int = 12
) -> ChaosScenario:
    """Corrupt rows mid-stream; they must land in the DLQ, not crash."""
    return ChaosScenario(
        name="poison-tuples",
        faults=(FaultSpec(kind="poison", duration=n_poison),),
        runtime=runtime,
        n_samples=800,
        seed=seed,
    )


def slow_operator_scenario(
    runtime: str = "threaded", *, seed: int = 0
) -> ChaosScenario:
    """One engine runs slow for a stretch; nothing may be lost."""
    op = "split" if runtime == "process" else "pca-0"
    return ChaosScenario(
        name="slow-operator",
        faults=(
            FaultSpec(
                kind="delay", op=op, at_tuple=50, duration=20,
                seconds=0.002,
            ),
        ),
        runtime=runtime,
        n_samples=600,
        seed=seed,
    )


def queue_stall_scenario(
    runtime: str = "threaded", *, seed: int = 0
) -> ChaosScenario:
    """The load balancer stalls briefly; backpressure must absorb it."""
    return ChaosScenario(
        name="queue-stall",
        faults=(
            FaultSpec(
                kind="delay", op="split", at_tuple=100, duration=1,
                seconds=0.05,
            ),
        ),
        runtime=runtime,
        n_samples=600,
        seed=seed,
    )


def cluster_kill_host_scenario(
    *, seed: int = 0, n_engines: int = 3
) -> ChaosScenario:
    """SIGKILL 1 of ``n_engines`` TCP engine hosts mid-run.

    The cluster analog of :func:`kill_engine_scenario`: the coordinator
    must detect the death, inject punctuation on the dead host's
    routes, drop (and count) its traffic, and let the controller's
    staleness eviction + quorum finish the run on the survivors — with
    the merged basis within affinity 0.98 of the fault-free reference.
    ``supervise=False``: across host loss, correctness is owned by
    membership, not restart policies.
    """
    return ChaosScenario(
        name=f"cluster-kill-1-of-{n_engines}",
        faults=(FaultSpec(kind="host_kill", op="pca-1", at_tuple=40),),
        runtime="cluster",
        n_engines=n_engines,
        n_samples=2400,
        quorum=2,
        supervise=False,
        seed=seed,
    )


def cluster_flap_scenario(
    *, seed: int = 0, n_engines: int = 3, at_frame: int = 3
) -> ChaosScenario:
    """Sever one host's TCP channel mid-run; it must redial and finish.

    The host's :class:`~repro.streams.wireproto.ReconnectingChannel`
    force-closes its own socket after ``at_frame`` received frames; the
    redial (with the network-source backoff budget) and the
    coordinator's re-association must complete the run, with any frames
    caught in kernel buffers surfacing as *counted* loss, never a hang.
    """
    return ChaosScenario(
        name="cluster-netsplit",
        faults=(
            FaultSpec(kind="netsplit", op="pca-1", at_tuple=at_frame),
        ),
        runtime="cluster",
        n_engines=n_engines,
        n_samples=1600,
        quorum=2,
        supervise=False,
        seed=seed,
    )


def smoke_suite(runtime: str = "threaded", *, seed: int = 0) -> list[
    ChaosScenario
]:
    """The CI smoke set: one of each fault family, small sizes."""
    return [
        kill_engine_scenario(runtime, seed=seed),
        poison_scenario(runtime, seed=seed),
        slow_operator_scenario(runtime, seed=seed),
        queue_stall_scenario(runtime, seed=seed),
    ]


def run_suite(
    scenarios: list[ChaosScenario],
    *,
    out: str | pathlib.Path | None = None,
    log: Callable[[str], None] | None = None,
) -> list[ChaosReport]:
    """Run every scenario; optionally append reports to a JSONL file."""
    reports = []
    for scenario in scenarios:
        report = run_scenario(scenario)
        reports.append(report)
        if log is not None:
            status = "ok" if report.ok else f"FAIL ({report.error})"
            log(
                f"{scenario.name} [{scenario.runtime}] {status}: "
                f"lost={report.n_lost} dup={report.n_duplicated} "
                f"dlq={report.n_quarantined} "
                f"affinity={report.affinity}"
            )
    if out is not None:
        write_chaos_reports(reports, out)
    return reports


def write_chaos_reports(
    reports: list[ChaosReport], path: str | pathlib.Path
) -> None:
    """Append one JSON object per report to ``path`` (JSONL)."""

    def default(obj):
        try:
            return float(obj)
        except (TypeError, ValueError):
            return str(obj)

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for report in reports:
            fh.write(json.dumps(report.to_dict(), default=default) + "\n")


def load_chaos_reports(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Read a JSONL chaos report back as dicts."""
    out = []
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# Network flap (socket-source scenario)
# ---------------------------------------------------------------------------


class FlakyVectorServer:
    """A resumable TCP vector feeder that flaps the connection.

    Serves CSV lines like
    :func:`~repro.streams.network_sources.serve_vectors`, but every
    ``flap_every`` rows it hard-resets the connection (``SO_LINGER 0``
    → RST, so the client sees a *failure*, not a clean EOF) and waits
    for the client to reconnect; sending resumes from the cursor — the
    contract :class:`~repro.streams.network_sources.TCPVectorSource`
    expects from a resuming feeder.  Rows still in flight at the RST
    are discarded by the kernel and show up as (bounded, reported)
    loss.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        *,
        flap_every: int = 50,
        max_flaps: int = 3,
        settle_s: float = 0.05,
        host: str = "127.0.0.1",
    ) -> None:
        self.vectors = np.asarray(vectors, dtype=np.float64)
        self.flap_every = int(flap_every)
        self.max_flaps = int(max_flaps)
        self.settle_s = float(settle_s)
        self.n_flaps = 0
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._server.bind((host, 0))
        self._server.listen(1)
        self.port = self._server.getsockname()[1]
        self._thread = threading.Thread(
            target=self._run, name="flaky-server", daemon=True
        )

    def start(self) -> "FlakyVectorServer":
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        cursor = 0
        try:
            while cursor < len(self.vectors):
                conn, _ = self._server.accept()
                sent_this_conn = 0
                try:
                    writer = conn.makefile("w", encoding="utf-8")
                    while cursor < len(self.vectors):
                        if (
                            self.n_flaps < self.max_flaps
                            and sent_this_conn >= self.flap_every
                        ):
                            # Let the client drain, then RST.
                            time.sleep(self.settle_s)
                            self.n_flaps += 1
                            conn.setsockopt(
                                socket.SOL_SOCKET,
                                socket.SO_LINGER,
                                b"\x01\x00\x00\x00\x00\x00\x00\x00",
                            )
                            # The makefile wrapper holds an io-ref on
                            # the socket: until it is closed the fd
                            # stays open and the RST never goes out.
                            writer.close()
                            conn.close()
                            break
                        row = self.vectors[cursor]
                        writer.write(
                            ",".join(repr(float(v)) for v in row) + "\n"
                        )
                        writer.flush()
                        cursor += 1
                        sent_this_conn += 1
                    else:
                        writer.write("__END__\n")
                        writer.close()
                        conn.close()
                except OSError:
                    pass
        finally:
            self._server.close()


def network_flap_scenario(
    *,
    seed: int = 0,
    n_samples: int = 200,
    dim: int = 8,
    flap_every: int = 60,
    max_flaps: int = 2,
) -> ChaosReport:
    """Stream through a TCP source while the feeder flaps the link.

    The source must reconnect (with backoff) after every RST and the
    stream must complete; rows discarded by a reset are the only
    permitted loss, and there must be no duplicates.
    """
    from .network_sources import TCPVectorSource

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n_samples, dim))
    server = FlakyVectorServer(
        x, flap_every=flap_every, max_flaps=max_flaps
    ).start()
    src = TCPVectorSource(
        "tcp-source", "127.0.0.1", server.port,
        connect_timeout_s=5.0, max_retries=2 * max_flaps + 2,
        backoff_base_s=0.01, retry_seed=seed,
    )
    report = ChaosReport(
        scenario="network-flap", runtime="source", seed=seed,
        n_input=n_samples,
    )
    seqs: list[int] = []
    t0 = time.perf_counter()
    try:
        for tup in src.generate():
            seqs.append(int(tup["seq"]))
        report.ok = True
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.error = f"{type(exc).__name__}: {exc}"
    report.wall_time_s = time.perf_counter() - t0
    server.join(timeout=5.0)
    report.n_observed = len(set(seqs))
    report.n_duplicated = len(seqs) - len(set(seqs))
    report.n_lost = max(0, n_samples - report.n_observed)
    report.n_reconnects = src.n_reconnects
    report.events = [
        {"kind": "chaos", "fault": "network_flap", "n_flaps":
         server.n_flaps}
    ]
    return report
