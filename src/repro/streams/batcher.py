"""Micro-batching operators — amortize per-tuple overhead on the hot path.

The engine's per-tuple dispatch costs a few microseconds of Python per
hop, which dominates once the numerical kernel is vectorized.  The
:class:`Batcher` coalesces consecutive observation tuples into one
``(k, d)`` block tuple so every downstream hop — queue transfer, dispatch,
and above all the PCA update itself — runs once per *block* instead of
once per row.  :class:`Unbatcher` restores a per-row stream for consumers
that need one.

Flush policy (all punctuation- and control-aware):

* **size** — the buffer reached ``batch_size`` rows;
* **timeout** — the oldest buffered row has waited longer than
  ``timeout_s`` (checked lazily on the next arrival: the engines are
  event-driven, so an idle stream flushes at the next tuple or at
  end-of-stream rather than on a wall-clock timer);
* **punctuation** — end-of-stream flushes the remainder, then forwards
  the punctuation (no tuple is ever dropped at shutdown);
* **control** — control tuples (e.g. sync messages) flush the buffer
  first and are then forwarded, preserving their ordering relative to
  the data they follow.

Batch-size tuning guidance lives in ``docs/performance.md``; achieved
batch sizes and flush reasons are exported by the telemetry collector
(``repro_batch_achieved_size``, ``repro_batch_flush_total``; see
``docs/telemetry.md``).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .operators import Operator
from .tuples import (
    FieldType,
    StreamSchema,
    StreamTuple,
    inherit_event_time,
    register_schema,
)

__all__ = ["BLOCK_SCHEMA", "Batcher", "Unbatcher", "FLUSH_REASONS"]

#: Schema of the block tuples a :class:`Batcher` emits: the ``(k, d)``
#: observation block, the per-row source sequence numbers, and the row
#: count.  Registered for wire round-tripping: block tuples are the
#: shared-memory hot path of the multi-process runtime.
BLOCK_SCHEMA = register_schema(
    "block",
    StreamSchema(
        {
            "xs": FieldType.MATRIX,
            "seqs": FieldType.VECTOR,
            "count": FieldType.INT,
        }
    ),
)

#: Flush reasons, in the order they appear in telemetry labels.
FLUSH_REASONS = ("size", "timeout", "punctuation", "control")


class Batcher(Operator):
    """Coalesce observation tuples into ``(k, d)`` block tuples.

    Parameters
    ----------
    name:
        Operator name.
    batch_size:
        Rows per full block (the size-based flush threshold).
    timeout_s:
        Maximum age of the oldest buffered row before a flush is forced
        (``None`` disables the timeout).  Checked lazily at the next
        arrival — see the module docstring.
    field:
        Payload field carrying the per-row vector (default ``"x"``).
    seq_field:
        Payload field carrying the per-row sequence number (default
        ``"seq"``; rows without it get ``-1``).
    clock:
        Time source for the timeout (injectable for tests).

    Notes
    -----
    The row buffer is a preallocated ``(batch_size, d)`` array filled in
    place (allocated lazily once the first row reveals ``d``); each flush
    copies out only the filled prefix.  Tuples without the ``field`` key
    (and all control tuples) flush the buffer and are forwarded
    unchanged, so heterogeneous streams keep their relative order.
    """

    def __init__(
        self,
        name: str,
        *,
        batch_size: int = 64,
        timeout_s: float | None = None,
        field: str = "x",
        seq_field: str = "seq",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.batch_size = int(batch_size)
        self.timeout_s = timeout_s
        self.field = field
        self.seq_field = seq_field
        self._clock = clock
        self._rows: np.ndarray | None = None
        self._seqs = np.empty(self.batch_size, dtype=np.int64)
        self._count = 0
        self._oldest_at: float | None = None
        #: Low watermark of the buffered rows: the minimum ``event_ts``
        #: among them, carried onto the flushed block so downstream
        #: latency/watermark accounting sees the *oldest* contributing
        #: observation (separate from ``_oldest_at``, which is monotonic
        #: arrival time for the timeout policy).
        self._min_event_ts: float | None = None
        #: rows buffered in, blocks flushed out
        self.rows_in = 0
        self.batches_out = 0
        #: flush counts by reason — exported as
        #: ``repro_batch_flush_total{reason=...}``.
        self.flush_counts: dict[str, int] = {r: 0 for r in FLUSH_REASONS}
        self._size_sum = 0

    # -- statistics -----------------------------------------------------

    def achieved_batch_size(self) -> float:
        """Mean rows per emitted block (0.0 before the first flush)."""
        if self.batches_out == 0:
            return 0.0
        return self._size_sum / self.batches_out

    # -- operator lifecycle ----------------------------------------------

    def process(self, tup: StreamTuple, port: int) -> None:
        if tup.is_control or self.field not in tup.payload:
            # Flush-then-forward keeps control/sync ordering intact.
            self._flush("control")
            self.submit(tup)
            return
        now = self._clock()
        if (
            self.timeout_s is not None
            and self._count > 0
            and self._oldest_at is not None
            and now - self._oldest_at >= self.timeout_s
        ):
            self._flush("timeout")
        x = np.asarray(tup[self.field], dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(
                f"Batcher {self.name!r} expected a vector in field "
                f"{self.field!r}, got shape {x.shape}"
            )
        if self._rows is None:
            self._rows = np.empty((self.batch_size, x.shape[0]))
        elif x.shape[0] != self._rows.shape[1]:
            raise ValueError(
                f"Batcher {self.name!r}: row dim changed from "
                f"{self._rows.shape[1]} to {x.shape[0]}"
            )
        if self._count == 0:
            self._oldest_at = now
        self._rows[self._count] = x
        self._seqs[self._count] = int(tup.get(self.seq_field, -1))
        if tup.event_ts is not None and (
            self._min_event_ts is None or tup.event_ts < self._min_event_ts
        ):
            self._min_event_ts = tup.event_ts
        self._count += 1
        self.rows_in += 1
        if self._count >= self.batch_size:
            self._flush("size")

    def on_punctuation(self, port: int) -> None:
        self._flush("punctuation")

    def _flush(self, reason: str) -> None:
        if self._count == 0:
            return
        k = self._count
        assert self._rows is not None
        block = self._rows[:k].copy()
        seqs = self._seqs[:k].copy()
        min_ts = self._min_event_ts
        self._count = 0
        self._oldest_at = None
        self._min_event_ts = None
        self.batches_out += 1
        self._size_sum += k
        self.flush_counts[reason] += 1
        out = StreamTuple.data(BLOCK_SCHEMA, xs=block, seqs=seqs, count=k)
        if min_ts is not None:
            object.__setattr__(out, "event_ts", min_ts)
        self.submit(out)


class Unbatcher(Operator):
    """Expand ``(k, d)`` block tuples back into per-row tuples.

    The inverse of :class:`Batcher` for consumers that need a row
    stream.  Tuples without the block field pass through unchanged.
    """

    def __init__(
        self,
        name: str,
        *,
        field: str = "xs",
        out_field: str = "x",
        seq_field: str = "seq",
        schema: StreamSchema | None = None,
    ) -> None:
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.field = field
        self.out_field = out_field
        self.seq_field = seq_field
        self.schema = schema

    def process(self, tup: StreamTuple, port: int) -> None:
        if tup.is_control or self.field not in tup.payload:
            self.submit(tup)
            return
        block = np.asarray(tup[self.field], dtype=np.float64)
        seqs = tup.get("seqs")
        for i in range(block.shape[0]):
            seq = int(seqs[i]) if seqs is not None else -1
            row = StreamTuple.data(
                self.schema,
                **{self.out_field: block[i].copy(), self.seq_field: seq},
            )
            self.submit(inherit_event_time(row, tup))
