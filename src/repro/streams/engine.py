"""Runtimes that execute a dataflow graph.

Two interchangeable engines run the same operators:

* :class:`SynchronousEngine` — single-threaded, deterministic: sources
  are interleaved round-robin and every emission is drained to quiescence
  before the next source tuple.  This is the engine of choice for tests
  and for algorithmic experiments where wall-clock time is irrelevant.
* :class:`ThreadedEngine` — one thread per processing element (see
  :mod:`repro.streams.fusion`), bounded inter-PE queues with
  backpressure, intra-PE edges as direct calls.  This realizes the
  paper's execution model: fused operators exchange tuples "in local
  memory", unfused ones pay a queue hop, sources run free and the split
  operator can observe downstream queue depths for load balancing.

Both engines return a :class:`RunStats` with per-operator tuple counters
(the profiling statistics the paper uses for placement tuning) plus the
failure/recovery counters of an attached
:class:`~repro.streams.supervision.Supervisor`.

Shutdown protocol (threaded engine)
-----------------------------------
Completion is two-phase so no data or control tuple is ever lost:

1. **Quiesce** — every source thread has finished and every PE has all
   of its operators closed.  A PE whose operators closed keeps servicing
   its inbox (tuples may still race in from peers mid-close, e.g. a
   ``final`` state crossing a punctuation).
2. **Drain** — the coordinator additionally waits until the global
   in-flight count (tuples enqueued but not yet fully dispatched) reaches
   zero; only then does it raise the ``finish`` flag.  Runners observe
   ``finish`` with an empty inbox, drain any stragglers, and exit.

Abort paths (operator error, timeout, stall) set the ``stop`` flag
instead, which unwinds every thread promptly without draining.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .fusion import FusionPlan, ProcessingElement
from .graph import Graph
from .operators import Operator, Source
from .split import Split
from .supervision import EngineAborted, StallDetected, Supervisor, Watchdog
from .telemetry import (
    BackpressureSampler,
    Telemetry,
    operator_counter_snapshot,
)
from .tuples import StreamTuple

__all__ = ["RunStats", "SynchronousEngine", "ThreadedEngine"]


@dataclass
class RunStats:
    """Execution summary of one graph run.

    Attributes
    ----------
    wall_time_s:
        Total run duration.
    tuples_in / tuples_out:
        Per-operator counters (name → count), including punctuation for
        ``tuples_out``.
    source_tuples:
        Tuples produced per source, with punctuation counted explicitly
        on the operator and excluded (see :attr:`Operator.punct_out`).
    failures / retries / skipped_tuples / restarts / recovery_time_s:
        Supervision counters (name → count/seconds), populated when the
        engine ran with a :class:`~repro.streams.supervision.Supervisor`.
    """

    wall_time_s: float = 0.0
    tuples_in: dict[str, int] = field(default_factory=dict)
    tuples_out: dict[str, int] = field(default_factory=dict)
    source_tuples: dict[str, int] = field(default_factory=dict)
    #: Per-operator exclusive processing seconds (profiled runs only).
    processing_time_s: dict[str, float] = field(default_factory=dict)
    failures: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    skipped_tuples: dict[str, int] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    recovery_time_s: dict[str, float] = field(default_factory=dict)

    def throughput(self) -> float:
        """Aggregate source tuples per second of wall time."""
        total = sum(self.source_tuples.values())
        if self.wall_time_s <= 0:
            return 0.0
        return total / self.wall_time_s

    def total_recoveries(self) -> int:
        """Failures repaired in-flight (retries + skips + restarts)."""
        return (
            sum(self.retries.values())
            + sum(self.skipped_tuples.values())
            + sum(self.restarts.values())
        )

    @classmethod
    def collect(
        cls,
        graph: Graph,
        wall_time_s: float,
        supervisor: Supervisor | None = None,
    ) -> "RunStats":
        # Thin view: the operators' own counters are the single source of
        # truth, read through the same snapshot helper the telemetry
        # registry collectors use (see repro.streams.telemetry).
        stats = cls(wall_time_s=wall_time_s)
        snap = operator_counter_snapshot(graph)
        stats.tuples_in = snap["tuples_in"]
        stats.tuples_out = snap["tuples_out"]
        stats.source_tuples = snap["source_tuples"]
        stats.processing_time_s = snap["processing_time_s"]
        if supervisor is not None:
            sup = supervisor.stats
            stats.failures = dict(sup.failures)
            stats.retries = dict(sup.retries)
            stats.skipped_tuples = dict(sup.skipped_tuples)
            stats.restarts = dict(sup.restarts)
            stats.recovery_time_s = dict(sup.recovery_time_s)
        return stats


class SynchronousEngine:
    """Deterministic single-threaded runtime.

    Sources are polled round-robin; each produced tuple is fully drained
    (all downstream processing, including any control-loop traffic it
    triggers) before the next tuple enters.  Cycles are safe: the work
    list is a FIFO, so a sync round-trip simply enqueues more work until
    the loop quiesces.

    An optional :class:`~repro.streams.supervision.Supervisor` applies
    per-operator failure policies to every dispatch; an optional
    :class:`~repro.streams.telemetry.Telemetry` records metrics, sampled
    traces (a root span wraps each sampled source tuple's full drain),
    and structured events.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        profile: bool = False,
        supervisor: Supervisor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        if profile:
            from .profiling import enable_profiling

            enable_profiling(graph.operators)
        self.supervisor = supervisor
        self.telemetry = telemetry
        self._tracer = (
            telemetry.tracer
            if telemetry is not None and telemetry.config.tracing
            else None
        )
        if telemetry is not None:
            telemetry.attach_graph(graph)
            if supervisor is not None:
                telemetry.attach_supervisor(supervisor)
        self._work: deque[tuple[Operator, int, StreamTuple]] = deque()

    def _wire(self) -> None:
        tracer = self._tracer
        for op in self.graph:
            successors = {
                port: self.graph.successors(op, port)
                for port in range(op.n_outputs)
            }

            def emit(
                tup: StreamTuple,
                port: int,
                _succ: dict[int, list[tuple[Operator, int]]] = successors,
            ) -> None:
                if tracer is not None:
                    tracer.propagate(tup)
                for dst, in_port in _succ.get(port, ()):
                    self._work.append((dst, in_port, tup))

            op.bind(emit)

    def _deliver(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        if self.supervisor is not None:
            self.supervisor.dispatch(dst, tup, port)
        else:
            dst._dispatch(tup, port)

    def _dispatch(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        tracer = self._tracer
        if tracer is not None:
            ctx = tracer.ctx_of(tup)
            if ctx is not None:
                with tracer.dispatch_span(dst, tup, ctx):
                    self._deliver(dst, tup, port)
                return
        self._deliver(dst, tup, port)

    def _drain(self) -> None:
        while self._work:
            dst, port, tup = self._work.popleft()
            self._dispatch(dst, tup, port)

    def run(self) -> RunStats:
        """Execute to completion and return statistics."""
        self._wire()
        tracer = self._tracer
        if self.telemetry is not None:
            self.telemetry.run_started(
                engine="synchronous", graph=self.graph.name
            )
        start = time.perf_counter()
        for op in self.graph:
            op.open()
        generators = [(src, src.generate()) for src in self.graph.sources]
        active = list(generators)
        while active:
            still = []
            for src, gen in active:
                try:
                    tup = next(gen)
                except StopIteration:
                    src._complete()
                    self._drain()
                    continue
                root = (
                    tracer.maybe_start_root(src, tup)
                    if tracer is not None
                    else None
                )
                src.submit(tup, 0)
                self._drain()
                if root is not None:
                    # The root span covers the tuple's entire downstream
                    # drain (this engine is run-to-quiescence per tuple).
                    tracer.finish_span(root)
                still.append((src, gen))
            active = still
        self._drain()
        stats = RunStats.collect(
            self.graph, time.perf_counter() - start, self.supervisor
        )
        if self.telemetry is not None:
            self.telemetry.run_finished(stats)
        return stats


# Backwards-compatible alias: the abort exception moved to supervision.
_EngineStopped = EngineAborted


class _PERunner(threading.Thread):
    """Thread executing one processing element's inbox loop.

    Completion follows the engine's two-phase protocol: when all of the
    PE's operators have closed the runner raises its ``quiesced`` flag but
    *keeps draining* the inbox — tuples can still race in from peers mid
    close — and only exits once the coordinator raises ``finish`` (global
    quiescence, nothing in flight) and the inbox is empty, or the engine
    aborts via ``stop``.
    """

    def __init__(
        self,
        pe: ProcessingElement,
        inbox: "queue.Queue[tuple[Operator, int, StreamTuple]]",
        engine: "ThreadedEngine",
    ) -> None:
        super().__init__(name=f"pe-{pe.pe_id}", daemon=True)
        self.pe = pe
        self.inbox = inbox
        self.engine = engine
        self.quiesced = threading.Event()

    def _check_quiesced(self) -> None:
        if not self.quiesced.is_set() and all(
            op.is_closed for op in self.pe.operators
        ):
            self.quiesced.set()

    def run(self) -> None:
        eng = self.engine
        stop, finish = eng._stop, eng._finish
        try:
            while not stop.is_set():
                try:
                    dst, port, tup = self.inbox.get(timeout=0.02)
                except queue.Empty:
                    self._check_quiesced()
                    if finish.is_set():
                        break
                    continue
                try:
                    eng._dispatch(dst, tup, port)
                finally:
                    eng._tuple_done()
                self._check_quiesced()
        except EngineAborted:
            pass
        except BaseException as exc:
            eng._errors.append(exc)
            stop.set()
        finally:
            self._drain_remaining()
            # Never leave the coordinator waiting on a dead runner.
            self.quiesced.set()

    def _drain_remaining(self) -> None:
        """Process stragglers left in the inbox at exit time.

        On the normal path the coordinator guarantees the inbox is empty
        before ``finish``, so this is a no-op; it matters when the loop
        exits through ``stop`` after a graceful completion race, keeping
        the no-tuple-lost guarantee.  After an operator error the run is
        aborting anyway, so the backlog is dropped.
        """
        eng = self.engine
        if eng._errors:
            return
        try:
            while True:
                try:
                    dst, port, tup = self.inbox.get_nowait()
                except queue.Empty:
                    return
                try:
                    eng._dispatch(dst, tup, port)
                finally:
                    eng._tuple_done()
        except EngineAborted:
            pass
        except BaseException as exc:
            eng._errors.append(exc)
            eng._stop.set()


class _SourceRunner(threading.Thread):
    """Thread driving one source to exhaustion."""

    def __init__(
        self,
        src: Source,
        errors: list[BaseException],
        stop: threading.Event,
        tracer=None,
    ) -> None:
        super().__init__(name=f"src-{src.name}", daemon=True)
        self.src = src
        self.errors = errors
        self.stop = stop
        self.tracer = tracer

    def run(self) -> None:
        tracer = self.tracer
        try:
            for tup in self.src.generate():
                if self.stop.is_set():
                    return
                root = (
                    tracer.maybe_start_root(self.src, tup)
                    if tracer is not None
                    else None
                )
                self.src.submit(tup, 0)
                if root is not None:
                    # Root span = emission incl. any backpressure block;
                    # downstream child spans close in their own threads.
                    tracer.finish_span(root)
            self.src._complete()
        except EngineAborted:
            pass
        except BaseException as exc:
            self.errors.append(exc)
            self.stop.set()


class ThreadedEngine:
    """Multi-threaded runtime with operator fusion and backpressure.

    Parameters
    ----------
    graph:
        The application graph.
    fusion:
        PE assignment; default :meth:`FusionPlan.per_operator`.
    queue_size:
        Bound of each inter-PE queue (backpressure); control loops stay
        well below it by construction.
    supervisor:
        Optional :class:`~repro.streams.supervision.Supervisor` applying
        per-operator failure policies (retry / skip / checkpoint-restart)
        to every dispatch; without one the engine is fail-fast.
    stall_timeout_s:
        Arm the deadlock/stall watchdog: if no tuple is enqueued or
        dispatched for this long while work remains, the run aborts with
        :class:`~repro.streams.supervision.StallDetected` and a per-PE
        queue report instead of waiting for ``timeout_s``.  Must exceed
        the slowest single-tuple processing time; ``None`` disables.
    telemetry:
        Optional :class:`~repro.streams.telemetry.Telemetry`: per-PE
        metrics views, sampled traces across queue hops, and (when
        ``sampler_interval_s`` is set) a background backpressure sampler
        recording queue depth / in-flight / throughput over time.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fusion: FusionPlan | None = None,
        queue_size: int = 4096,
        profile: bool = False,
        supervisor: Supervisor | None = None,
        stall_timeout_s: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        if profile:
            from .profiling import enable_profiling

            enable_profiling(graph.operators)
        self.fusion = fusion or FusionPlan.per_operator(graph)
        self.fusion.validate(graph)
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self.supervisor = supervisor
        self.telemetry = telemetry
        self._tracer = (
            telemetry.tracer
            if telemetry is not None and telemetry.config.tracing
            else None
        )
        if telemetry is not None:
            telemetry.attach_graph(graph, fusion=self.fusion)
            if supervisor is not None:
                telemetry.attach_supervisor(supervisor)
        self._watchdog = (
            Watchdog(stall_timeout_s) if stall_timeout_s is not None else None
        )
        self._inboxes: dict[int, queue.Queue] = {}
        self._pe_of: dict[int, ProcessingElement] = {}
        self._pe_of_id: dict[int, str] = {}
        self._stop = threading.Event()
        self._finish = threading.Event()
        self._errors: list[BaseException] = []
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- in-flight accounting -------------------------------------------

    def _tuple_enqueued(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _tuple_done(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
        if self._watchdog is not None:
            self._watchdog.poke()

    def _deliver(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        if self.supervisor is not None:
            self.supervisor.dispatch(dst, tup, port)
        else:
            dst._dispatch(tup, port)

    def _dispatch(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        tracer = self._tracer
        if tracer is not None:
            ctx = tracer.ctx_of(tup)
            if ctx is not None:
                with tracer.dispatch_span(dst, tup, ctx):
                    self._deliver(dst, tup, port)
                return
        self._deliver(dst, tup, port)

    def _put(self, pe_id: int, item) -> None:
        """Blocking put that aborts promptly when the engine stops."""
        inbox = self._inboxes[pe_id]
        if self._tracer is not None and self._tracer.ctx_of(item[2]) is not None:
            # Queue-wait clock starts now, so the span includes any time
            # this producer spends blocked on a full inbox.
            self._tracer.note_enqueued(item[2], self._pe_of_id[pe_id])
        self._tuple_enqueued()
        while True:
            try:
                inbox.put(item, timeout=0.05)
            except queue.Full:
                if self._stop.is_set():
                    with self._inflight_lock:
                        self._inflight -= 1
                    raise EngineAborted from None
                continue
            if self._watchdog is not None:
                self._watchdog.poke()
            return

    def _wire(self) -> None:
        tracer = self._tracer
        for pe in self.fusion.pes:
            inbox: queue.Queue = queue.Queue(maxsize=self.queue_size)
            self._inboxes[pe.pe_id] = inbox
            self._pe_of_id[pe.pe_id] = pe.label()
            for op in pe.operators:
                self._pe_of[id(op)] = pe

        for op in self.graph:
            my_pe = self._pe_of[id(op)]
            successors = {
                port: self.graph.successors(op, port)
                for port in range(op.n_outputs)
            }

            def emit(
                tup: StreamTuple,
                port: int,
                _succ: dict[int, list[tuple[Operator, int]]] = successors,
                _my_pe: ProcessingElement = my_pe,
            ) -> None:
                if tracer is not None:
                    tracer.propagate(tup)
                for dst, in_port in _succ.get(port, ()):
                    dst_pe = self._pe_of[id(dst)]
                    if dst_pe is _my_pe:
                        # Fused edge: zero-copy, same-thread call.
                        self._dispatch(dst, tup, in_port)
                    else:
                        self._put(dst_pe.pe_id, (dst, in_port, tup))

            op.bind(emit)

            if isinstance(op, Split):
                op.set_load_probe(self._make_probe(op))

    def _make_probe(self, split: Split):
        def probe(port: int) -> int:
            succ = self.graph.successors(split, port)
            if not succ:
                return 0
            dst = succ[0][0]
            dst_pe = self._pe_of[id(dst)]
            if dst_pe is self._pe_of[id(split)]:
                return 0
            return self._inboxes[dst_pe.pe_id].qsize()

        return probe

    def _stall_report(self, stalled_s: float) -> str:
        lines = [
            f"graph {self.graph.name!r} stalled: no progress for "
            f"{stalled_s:.1f}s with work outstanding (suspected full-queue "
            f"backpressure cycle or deadlock); per-PE inbox depths:"
        ]
        for pe in self.fusion.pes:
            depth = self._inboxes[pe.pe_id].qsize()
            lines.append(f"  {pe.label()}: {depth}/{self.queue_size}")
        return "\n".join(lines)

    def run(self, *, timeout_s: float = 300.0) -> RunStats:
        """Execute to completion; raises on PE errors, stall, or timeout.

        Fail-fast on errors: the first unhandled operator exception (after
        any supervisor policy) stops every thread and is re-raised
        immediately instead of waiting for the timeout.  Normal completion
        follows the two-phase quiesce → drain → close protocol described
        in the module docstring.
        """
        self._wire()
        errors = self._errors
        if self.telemetry is not None:
            self.telemetry.run_started(
                engine="threaded", graph=self.graph.name
            )
        sampler = self._start_sampler()
        start = time.perf_counter()
        for op in self.graph:
            op.open()

        pe_threads = []
        for pe in self.fusion.pes:
            if all(isinstance(op, Source) for op in pe.operators):
                continue  # pure-source PEs are driven by source runners
            t = _PERunner(pe, self._inboxes[pe.pe_id], self)
            pe_threads.append(t)
        src_threads = [
            _SourceRunner(src, errors, self._stop, self._tracer)
            for src in self.graph.sources
        ]
        threads = src_threads + pe_threads
        if self._watchdog is not None:
            self._watchdog.poke()
        for t in threads:
            t.start()

        deadline = start + timeout_s
        try:
            while True:
                if errors:
                    raise errors[0]
                if (
                    all(not t.is_alive() for t in src_threads)
                    and all(r.quiesced.is_set() for r in pe_threads)
                    and self._inflight == 0
                ):
                    break
                now = time.perf_counter()
                if now > deadline:
                    running = [t.name for t in threads if t.is_alive()]
                    raise RuntimeError(
                        f"graph {self.graph.name!r} did not finish within "
                        f"{timeout_s}s (threads still running: {running})"
                    )
                if self._watchdog is not None:
                    stalled = self._watchdog.stalled_for()
                    if stalled is not None:
                        raise StallDetected(self._stall_report(stalled))
                time.sleep(0.002)
            # Global quiescence: nothing in flight, every PE closed.
            self._finish.set()
            for t in pe_threads:
                t.join(timeout=5.0)
            if errors:
                raise errors[0]
        finally:
            self._finish.set()
            self._stop.set()
            for t in threads:
                t.join(timeout=1.0)
            if sampler is not None:
                sampler.stop()
        stats = RunStats.collect(
            self.graph, time.perf_counter() - start, self.supervisor
        )
        if self.telemetry is not None:
            self.telemetry.run_finished(stats)
        return stats

    def _start_sampler(self) -> BackpressureSampler | None:
        tel = self.telemetry
        if tel is None or tel.config.sampler_interval_s is None:
            return None

        def probe():
            per_pe = [
                (
                    pe.label(),
                    self._inboxes[pe.pe_id].qsize(),
                    self.queue_size,
                )
                for pe in self.fusion.pes
            ]
            dispatched = sum(op.tuples_in for op in self.graph)
            return per_pe, self._inflight, dispatched

        sampler = BackpressureSampler(
            tel, probe, interval_s=tel.config.sampler_interval_s
        )
        sampler.start()
        return sampler
