"""Runtimes that execute a dataflow graph.

Two interchangeable engines run the same operators:

* :class:`SynchronousEngine` — single-threaded, deterministic: sources
  are interleaved round-robin and every emission is drained to quiescence
  before the next source tuple.  This is the engine of choice for tests
  and for algorithmic experiments where wall-clock time is irrelevant.
* :class:`ThreadedEngine` — one thread per processing element (see
  :mod:`repro.streams.fusion`), bounded inter-PE queues with
  backpressure, intra-PE edges as direct calls.  This realizes the
  paper's execution model: fused operators exchange tuples "in local
  memory", unfused ones pay a queue hop, sources run free and the split
  operator can observe downstream queue depths for load balancing.

Both engines return a :class:`RunStats` with per-operator tuple counters
(the profiling statistics the paper uses for placement tuning).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .fusion import FusionPlan, ProcessingElement
from .graph import Graph
from .operators import Operator, Source
from .split import Split
from .tuples import StreamTuple

__all__ = ["RunStats", "SynchronousEngine", "ThreadedEngine"]


@dataclass
class RunStats:
    """Execution summary of one graph run.

    Attributes
    ----------
    wall_time_s:
        Total run duration.
    tuples_in / tuples_out:
        Per-operator counters (name → count), including punctuation for
        ``tuples_out``.
    source_tuples:
        Data tuples produced per source.
    """

    wall_time_s: float = 0.0
    tuples_in: dict[str, int] = field(default_factory=dict)
    tuples_out: dict[str, int] = field(default_factory=dict)
    source_tuples: dict[str, int] = field(default_factory=dict)
    #: Per-operator exclusive processing seconds (profiled runs only).
    processing_time_s: dict[str, float] = field(default_factory=dict)

    def throughput(self) -> float:
        """Aggregate source tuples per second of wall time."""
        total = sum(self.source_tuples.values())
        if self.wall_time_s <= 0:
            return 0.0
        return total / self.wall_time_s

    @classmethod
    def collect(cls, graph: Graph, wall_time_s: float) -> "RunStats":
        stats = cls(wall_time_s=wall_time_s)
        for op in graph:
            stats.tuples_in[op.name] = op.tuples_in
            stats.tuples_out[op.name] = op.tuples_out
            if op._profiled:
                stats.processing_time_s[op.name] = op.processing_time_s
            if isinstance(op, Source):
                # Output counter includes the trailing punctuation(s).
                stats.source_tuples[op.name] = max(
                    op.tuples_out - op.n_outputs, 0
                )
        return stats


class SynchronousEngine:
    """Deterministic single-threaded runtime.

    Sources are polled round-robin; each produced tuple is fully drained
    (all downstream processing, including any control-loop traffic it
    triggers) before the next tuple enters.  Cycles are safe: the work
    list is a FIFO, so a sync round-trip simply enqueues more work until
    the loop quiesces.
    """

    def __init__(self, graph: Graph, *, profile: bool = False) -> None:
        graph.validate()
        self.graph = graph
        if profile:
            from .profiling import enable_profiling

            enable_profiling(graph.operators)
        self._work: deque[tuple[Operator, int, StreamTuple]] = deque()

    def _wire(self) -> None:
        for op in self.graph:
            successors = {
                port: self.graph.successors(op, port)
                for port in range(op.n_outputs)
            }

            def emit(
                tup: StreamTuple,
                port: int,
                _succ: dict[int, list[tuple[Operator, int]]] = successors,
            ) -> None:
                for dst, in_port in _succ.get(port, ()):
                    self._work.append((dst, in_port, tup))

            op.bind(emit)

    def _drain(self) -> None:
        while self._work:
            dst, port, tup = self._work.popleft()
            dst._dispatch(tup, port)

    def run(self) -> RunStats:
        """Execute to completion and return statistics."""
        self._wire()
        start = time.perf_counter()
        for op in self.graph:
            op.open()
        generators = [(src, src.generate()) for src in self.graph.sources]
        active = list(generators)
        while active:
            still = []
            for src, gen in active:
                try:
                    tup = next(gen)
                except StopIteration:
                    src._complete()
                    self._drain()
                    continue
                src.submit(tup, 0)
                self._drain()
                still.append((src, gen))
            active = still
        self._drain()
        return RunStats.collect(self.graph, time.perf_counter() - start)


class _EngineStopped(Exception):
    """Internal: raised inside runner threads when the engine aborts."""


class _PERunner(threading.Thread):
    """Thread executing one processing element's inbox loop."""

    def __init__(
        self,
        pe: ProcessingElement,
        inbox: "queue.Queue[tuple[Operator, int, StreamTuple]]",
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        super().__init__(name=f"pe-{pe.pe_id}", daemon=True)
        self.pe = pe
        self.inbox = inbox
        self.errors = errors
        self.stop = stop

    def run(self) -> None:
        try:
            ops = self.pe.operators
            while not self.stop.is_set() and not all(
                op.is_closed for op in ops
            ):
                try:
                    dst, port, tup = self.inbox.get(timeout=0.02)
                except queue.Empty:
                    continue
                dst._dispatch(tup, port)
        except _EngineStopped:
            pass
        except BaseException as exc:
            self.errors.append(exc)
            self.stop.set()


class _SourceRunner(threading.Thread):
    """Thread driving one source to exhaustion."""

    def __init__(
        self,
        src: Source,
        errors: list[BaseException],
        stop: threading.Event,
    ) -> None:
        super().__init__(name=f"src-{src.name}", daemon=True)
        self.src = src
        self.errors = errors
        self.stop = stop

    def run(self) -> None:
        try:
            for tup in self.src.generate():
                if self.stop.is_set():
                    return
                self.src.submit(tup, 0)
            self.src._complete()
        except _EngineStopped:
            pass
        except BaseException as exc:
            self.errors.append(exc)
            self.stop.set()


class ThreadedEngine:
    """Multi-threaded runtime with operator fusion and backpressure.

    Parameters
    ----------
    graph:
        The application graph.
    fusion:
        PE assignment; default :meth:`FusionPlan.per_operator`.
    queue_size:
        Bound of each inter-PE queue (backpressure); control loops stay
        well below it by construction.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fusion: FusionPlan | None = None,
        queue_size: int = 4096,
        profile: bool = False,
    ) -> None:
        graph.validate()
        self.graph = graph
        if profile:
            from .profiling import enable_profiling

            enable_profiling(graph.operators)
        self.fusion = fusion or FusionPlan.per_operator(graph)
        self.fusion.validate(graph)
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self._inboxes: dict[int, queue.Queue] = {}
        self._pe_of: dict[int, ProcessingElement] = {}
        self._stop = threading.Event()

    def _put(self, pe_id: int, item) -> None:
        """Blocking put that aborts promptly when the engine stops."""
        inbox = self._inboxes[pe_id]
        while True:
            try:
                inbox.put(item, timeout=0.05)
                return
            except queue.Full:
                if self._stop.is_set():
                    raise _EngineStopped from None

    def _wire(self) -> None:
        for pe in self.fusion.pes:
            inbox: queue.Queue = queue.Queue(maxsize=self.queue_size)
            self._inboxes[pe.pe_id] = inbox
            for op in pe.operators:
                self._pe_of[id(op)] = pe

        for op in self.graph:
            my_pe = self._pe_of[id(op)]
            successors = {
                port: self.graph.successors(op, port)
                for port in range(op.n_outputs)
            }

            def emit(
                tup: StreamTuple,
                port: int,
                _succ: dict[int, list[tuple[Operator, int]]] = successors,
                _my_pe: ProcessingElement = my_pe,
            ) -> None:
                for dst, in_port in _succ.get(port, ()):
                    dst_pe = self._pe_of[id(dst)]
                    if dst_pe is _my_pe:
                        # Fused edge: zero-copy, same-thread call.
                        dst._dispatch(tup, in_port)
                    else:
                        self._put(dst_pe.pe_id, (dst, in_port, tup))

            op.bind(emit)

            if isinstance(op, Split):
                op.set_load_probe(self._make_probe(op))

    def _make_probe(self, split: Split):
        def probe(port: int) -> int:
            succ = self.graph.successors(split, port)
            if not succ:
                return 0
            dst = succ[0][0]
            dst_pe = self._pe_of[id(dst)]
            if dst_pe is self._pe_of[id(split)]:
                return 0
            return self._inboxes[dst_pe.pe_id].qsize()

        return probe

    def run(self, *, timeout_s: float = 300.0) -> RunStats:
        """Execute to completion; raises on PE errors or timeout.

        Fail-fast: the first operator exception stops every thread and is
        re-raised immediately instead of waiting for the timeout.
        """
        self._wire()
        errors: list[BaseException] = []
        start = time.perf_counter()
        for op in self.graph:
            op.open()

        pe_threads = []
        for pe in self.fusion.pes:
            if all(isinstance(op, Source) for op in pe.operators):
                continue  # pure-source PEs are driven by source runners
            t = _PERunner(pe, self._inboxes[pe.pe_id], errors, self._stop)
            pe_threads.append(t)
        src_threads = [
            _SourceRunner(src, errors, self._stop)
            for src in self.graph.sources
        ]
        threads = src_threads + pe_threads
        for t in threads:
            t.start()

        deadline = start + timeout_s
        try:
            while True:
                alive = [t for t in threads if t.is_alive()]
                if errors:
                    raise errors[0]
                if not alive:
                    break
                if time.perf_counter() > deadline:
                    raise RuntimeError(
                        f"graph {self.graph.name!r} did not finish within "
                        f"{timeout_s}s (thread {alive[0].name} still running)"
                    )
                alive[0].join(timeout=0.05)
        finally:
            self._stop.set()
            for t in threads:
                t.join(timeout=1.0)
        return RunStats.collect(self.graph, time.perf_counter() - start)
