"""ProcessEngine: a multi-process runtime completing the engine trilogy.

The paper's PEs run as separate OS processes placed across a cluster;
our :class:`~repro.streams.engine.ThreadedEngine` shares one GIL-bound
interpreter, so CPU-bound operators (robust PCA updates at large ``d``)
cannot scale past one core.  :class:`ProcessEngine` runs the same
operator graph with compute PEs in **worker processes** behind the same
``run()``/drain-shutdown contract as the other two engines.

Placement model (hybrid, like the paper's coordinator + compute nodes)
----------------------------------------------------------------------
Processing elements that contain a ``Source`` or ``Sink``, or any
operator named in ``main_ops``, execute in the **coordinator process**
on threads (reusing the threaded engine's PE runners); every other PE
becomes a worker process.  For the parallel-PCA application this puts
the source, batcher, split, sync controller, and diagnostics sink in the
coordinator and each PCA engine in its own process — blocks make
exactly one process hop, and run results (controller state, collected
diagnostics, operator counters) are read from coordinator-side objects
exactly as with the other runtimes.

Transport (see :mod:`repro.streams.shm`)
----------------------------------------
* ``BLOCK_SCHEMA`` data tuples cross on **shared-memory rings**: one
  bounded SPSC ring per (producer process → consumer process) edge,
  created lazily when the first block reveals ``d`` and announced over
  the destination's command queue.  The consumer dispatches numpy views
  into the mapped slot — block payloads are never pickled.
* Everything else (scalar/control tuples, punctuation, engine control)
  crosses on bounded ``multiprocessing`` queues as explicit wire dicts
  (:func:`repro.streams.tuples.to_wire`), with blocking backpressure.

Ordering is FIFO *per transport*.  A producer's queue traffic can
overtake its in-flight ring blocks (and vice versa) — harmless for the
PCA sync protocol, whose control messages are order-tolerant — with one
exception that is **not** tolerable: punctuation.  A channel's
punctuation is therefore held back by the consumer until that
producer's ring has drained (the producer always publishes its blocks
before emitting punctuation, so the holdback is sufficient).

Shutdown and fault tolerance
----------------------------
The two-phase drain protocol matches the threaded engine: a shared
in-flight counter covers every cross-process message; the coordinator
raises ``finish`` only when sources are done, every PE (thread or
process) has quiesced, and nothing is in flight.  Workers then drain
their inboxes, ship final operator state (plus their per-process
metrics shard and transport counters) back to the coordinator, and
exit; the coordinator folds worker state into the graph's own operator
objects so ``RunStats`` and application-level result collection are
runtime-agnostic.

A worker that dies mid-run is detected by the coordinator.  If the
attached :class:`~repro.streams.supervision.Supervisor` gives any of the
worker's operators a
:class:`~repro.streams.supervision.RestartFromCheckpoint` policy, the
worker is respawned with ``resume=True`` — operators reload their last
snapshot from the policy's on-disk
:class:`~repro.io.checkpoint.CheckpointStore`, the unread contents of
the command queue and ring survive (both are process-external), and the
coordinator re-announces rings and re-sends any punctuation the dead
worker had already received.  Loss is bounded to tuples that were being
dispatched at the instant of death plus operator state since the last
checkpoint.  Without a restart policy a worker death aborts the run
with :class:`~repro.streams.supervision.OperatorFailure`.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
import traceback
import uuid
from copy import copy as _shallow_copy
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from .batcher import BLOCK_SCHEMA
from .engine import RunStats, _PERunner, _SourceRunner
from .fusion import FusionPlan, ProcessingElement
from .graph import Graph
from .operators import Operator, Sink, Source
from .split import Split
from .supervision import (
    EngineAborted,
    OperatorFailure,
    RestartFromCheckpoint,
    StallDetected,
    Supervisor,
    Watchdog,
)
from .telemetry import (
    BackpressureSampler,
    Telemetry,
    operator_metric_samples,
)
from .tuples import (
    StreamTuple,
    TupleKind,
    from_wire,
    reseed_sequence,
    to_wire,
    tuple_from_fields,
)
from .shm import (
    BlockRing,
    RingFull,
    ensure_shared_tracker,
    ring_name,
    safe_mp_context,
)

__all__ = ["ProcessEngine"]

#: Attributes never shipped across the process boundary: runtime wiring
#: (closures), telemetry objects (hold locks), and probe callables.
_UNPICKLABLE_ATTRS = (
    "_emit", "_load_probe", "_latency_hist", "_telemetry",
    "_e2e_hist", "_watermark", "_health_monitor",
    "_state_lock", "_snapshot_listeners",
)

_MAIN = "main"


def _loc_str(loc: Any) -> str:
    return _MAIN if loc == _MAIN else f"w{loc}"


def _sanitize(op: Operator) -> Operator:
    """A shallow copy of ``op`` safe to pickle into a worker."""
    clone = _shallow_copy(op)
    for attr in _UNPICKLABLE_ATTRS:
        if hasattr(clone, attr):
            setattr(clone, attr, None)
    return clone


def _strip_payload(state: dict[str, Any]) -> dict[str, Any]:
    for attr in _UNPICKLABLE_ATTRS:
        state.pop(attr, None)
    return state


def _unlink_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another unlink
        pass


# ---------------------------------------------------------------------------
# Transport sender (used by the coordinator and by every worker)
# ---------------------------------------------------------------------------


class _TransportSender:
    """Routes outgoing tuples onto the right transport.

    ``BLOCK_SCHEMA`` data tuples that fit a ring slot go to the lazily
    created shared-memory ring for their destination process (announced
    over the destination's queue before first use); everything else is
    wire-encoded onto the destination's bounded queue.  Every message
    increments the shared in-flight counter before it is made visible.

    With ``coalesce=True`` (workers — their sender is single-threaded by
    construction) queue-path tuples are not shipped one ``"tuple"``
    message each: they accumulate in a per-destination pending list that
    :meth:`flush` ships as one ``"tuples"`` batch per loop iteration.
    One queue put, one pickle header and one in-flight lock acquisition
    then cover the whole batch — this is what keeps per-row diagnostics
    fan-in from dominating the coordinator (see docs/performance.md §8).
    The coordinator's own sender keeps ``coalesce=False``: it is shared
    by several PE threads and per-message puts are already off the block
    hot path there.
    """

    #: Pending-batch cap per destination before an eager flush.
    _COALESCE_MAX = 64

    def __init__(
        self,
        src_loc: Any,
        run_id: str,
        queues: Mapping[Any, Any],
        inflight,
        stop_check,
        op_index: Mapping[str, int],
        *,
        ring_slots: int,
        slot_rows: int,
        disown_rings: bool,
        coalesce: bool = False,
    ) -> None:
        self.src_loc = src_loc
        self.run_id = run_id
        self.queues = dict(queues)
        self.inflight = inflight
        self.stop_check = stop_check
        self.op_index = op_index
        self.ring_slots = ring_slots
        self.slot_rows = slot_rows
        self.disown_rings = disown_rings
        self.coalesce = coalesce
        #: dst_loc -> [(dst_name, dst_port, wire), ...] awaiting flush.
        self._pending: dict[Any, list[tuple[str, int, dict]]] = {}
        self.rings: dict[Any, BlockRing] = {}
        self.counters = {
            "blocks_ring": 0,
            "blocks_queue": 0,
            "tuples_queue": 0,
            "tuple_batches": 0,
        }

    # -- in-flight helpers ----------------------------------------------

    def _inc(self, n: int = 1) -> None:
        with self.inflight.get_lock():
            self.inflight.value += n

    def _dec(self, n: int = 1) -> None:
        with self.inflight.get_lock():
            self.inflight.value -= n

    # -- queue path -----------------------------------------------------

    def _qput(self, dst_loc: Any, msg: dict) -> None:
        q = self.queues[dst_loc]
        while True:
            try:
                q.put(msg, timeout=0.05)
                return
            except queue.Full:
                if self.stop_check():
                    raise EngineAborted from None

    def send_raw(self, dst_loc: Any, msg: dict) -> None:
        """Send a non-tuple control message (no in-flight accounting)."""
        self._qput(dst_loc, msg)

    # -- ring path ------------------------------------------------------

    def _ring_for(self, dst_loc: Any, dim: int) -> BlockRing | None:
        ring = self.rings.get(dst_loc)
        if ring is not None:
            return ring if ring.dim == dim else None
        name = ring_name(
            self.run_id, _loc_str(self.src_loc), _loc_str(dst_loc)
        )
        ring = BlockRing(
            name,
            slots=self.ring_slots,
            slot_rows=self.slot_rows,
            dim=dim,
            create=True,
        )
        if self.disown_rings:
            ring.disown()
        self.rings[dst_loc] = ring
        self.announce(dst_loc)
        return ring

    def announce(self, dst_loc: Any) -> None:
        """(Re-)announce the ring for ``dst_loc`` on its queue."""
        ring = self.rings.get(dst_loc)
        if ring is None:
            return
        self.send_raw(dst_loc, {
            "t": "ring",
            "src": self.src_loc,
            "name": ring.name,
            "slots": ring.slots,
            "rows": ring.slot_rows,
            "dim": ring.dim,
        })

    # -- the one entry point --------------------------------------------

    def send(
        self, dst_loc: Any, dst_name: str, dst_port: int, tup: StreamTuple
    ) -> None:
        if tup.is_data and tup.schema is BLOCK_SCHEMA:
            xs = tup.payload["xs"]
            if (
                isinstance(xs, np.ndarray)
                and xs.ndim == 2
                and xs.shape[0] <= self.slot_rows
            ):
                ring = self._ring_for(dst_loc, xs.shape[1])
                if ring is not None:
                    self._inc()
                    try:
                        ring.put(
                            self.op_index[dst_name],
                            dst_port,
                            xs,
                            tup.payload.get("seqs"),
                            tup.seq,
                            tup.event_ts,
                            should_abort=self.stop_check,
                            timeout_s=120.0,
                        )
                    except RingFull:
                        self._dec()
                        if self.stop_check():
                            raise EngineAborted from None
                        raise
                    self.counters["blocks_ring"] += 1
                    return
            # Oversized block or dimension change: visible fallback.
            self.counters["blocks_queue"] += 1
        else:
            self.counters["tuples_queue"] += 1
        if self.coalesce:
            # Counted at append: the shared counter must cover the tuple
            # from the instant it leaves the operator, or the quiesce
            # check could fire while it sits in the pending list.
            self._inc()
            pending = self._pending.setdefault(dst_loc, [])
            pending.append((dst_name, dst_port, to_wire(tup)))
            if len(pending) >= self._COALESCE_MAX:
                self._flush_dst(dst_loc)
            return
        msg = {
            "t": "tuple",
            "src": self.src_loc,
            "dst": dst_name,
            "port": dst_port,
            "wire": to_wire(tup),
        }
        self._inc()
        try:
            self._qput(dst_loc, msg)
        except EngineAborted:
            self._dec()
            raise

    def _flush_dst(self, dst_loc: Any) -> None:
        items = self._pending.get(dst_loc)
        if not items:
            return
        self._pending[dst_loc] = []
        self.counters["tuple_batches"] += 1
        try:
            self._qput(
                dst_loc,
                {"t": "tuples", "src": self.src_loc, "items": items},
            )
        except EngineAborted:
            self._dec(len(items))
            raise

    def flush(self) -> None:
        """Ship every pending coalesced batch (one message per dest)."""
        for dst_loc in list(self._pending):
            self._flush_dst(dst_loc)

    def close(self, *, unlink: bool) -> None:
        for ring in self.rings.values():
            ring.close()
            if unlink:
                ring.unlink()


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


@dataclass
class _WorkerSpec:
    """Everything a worker process needs, picklable under any start method."""

    worker_id: int
    label: str
    ops: list[Operator]
    op_index: dict[str, int]
    idx_names: list[str]
    #: op name -> out port -> [(dst_loc, dst_name, dst_port)]
    routes: dict[str, dict[int, list[tuple[Any, str, int]]]]
    cmd_q: Any
    main_q: Any
    peer_qs: dict[int, Any]
    inflight: Any
    stop_ev: Any
    finish_ev: Any
    run_id: str
    queue_size: int
    ring_slots: int
    slot_rows: int
    policies: dict[str, Any] = field(default_factory=dict)
    metrics: bool = True
    resume: bool = False


def _dec_inflight(spec: _WorkerSpec, n: int = 1) -> None:
    with spec.inflight.get_lock():
        spec.inflight.value -= n


def _worker_main(spec: _WorkerSpec) -> None:
    """Worker process entry point (top-level: importable under spawn)."""
    try:
        _worker_loop(spec)
    except EngineAborted:
        pass
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            spec.main_q.put(
                {
                    "t": "error",
                    "w": spec.worker_id,
                    "error": repr(exc),
                    "traceback": traceback.format_exc(),
                },
                timeout=5.0,
            )
        except Exception:
            pass
        spec.stop_ev.set()


def _worker_loop(spec: _WorkerSpec) -> None:
    reseed_sequence(spec.worker_id + 1)
    wid = spec.worker_id
    ops_by_name = {op.name: op for op in spec.ops}
    supervisor = Supervisor(policies=spec.policies) if spec.policies else None

    queues: dict[Any, Any] = {_MAIN: spec.main_q}
    queues.update(spec.peer_qs)
    sender = _TransportSender(
        wid,
        spec.run_id,
        queues,
        spec.inflight,
        spec.stop_ev.is_set,
        spec.op_index,
        ring_slots=spec.ring_slots,
        slot_rows=spec.slot_rows,
        disown_rings=True,
        coalesce=True,
    )

    def deliver(op: Operator, tup: StreamTuple, port: int) -> None:
        if supervisor is not None:
            supervisor.dispatch(op, tup, port)
        else:
            op._dispatch(tup, port)

    for op in spec.ops:
        op_routes = spec.routes.get(op.name, {})

        def emit(
            tup: StreamTuple,
            port: int,
            _routes: dict = op_routes,
        ) -> None:
            for dst_loc, dst_name, dst_port in _routes.get(port, ()):
                if dst_loc == wid:
                    deliver(ops_by_name[dst_name], tup, dst_port)
                else:
                    sender.send(dst_loc, dst_name, dst_port, tup)

        op.bind(emit)

    # Checkpoint resume: a restarted worker reloads each restartable
    # operator's last persisted snapshot before opening it.
    if spec.resume:
        for name, policy in spec.policies.items():
            if not isinstance(policy, RestartFromCheckpoint):
                continue
            if policy.store is None:
                continue
            op = ops_by_name.get(name)
            if op is None or not hasattr(op, "restore_state"):
                continue
            snap = policy.store.load_latest()
            if snap is not None:
                op.restore_state(snap)

    for op in spec.ops:
        op.open()

    # Inbound rings, keyed by segment name (a restarted producer creates
    # a *new* segment for the same source, and both must keep draining),
    # with a source → rings view for punctuation holdback.
    rings: dict[str, BlockRing] = {}
    rings_of: dict[Any, list[BlockRing]] = {}
    held: list[tuple[Any, str, int, StreamTuple]] = []
    quiesced_sent = False

    def src_has_blocks(src: Any) -> bool:
        return any(r.depth() > 0 for r in rings_of.get(src, ()))

    def drain_rings() -> bool:
        progressed = False
        for ring in rings.values():
            while True:
                item = ring.get()
                if item is None:
                    break
                _dec_inflight(spec)
                name = spec.idx_names[item.dst_idx]
                tup = tuple_from_fields(
                    {
                        "xs": item.xs,
                        "seqs": item.seqs,
                        "count": int(item.xs.shape[0]),
                    },
                    TupleKind.DATA,
                    BLOCK_SCHEMA,
                    item.tuple_seq,
                    item.event_ts,
                )
                try:
                    # The payload views into the ring slot are valid only
                    # during this dispatch; the slot is released after.
                    deliver(ops_by_name[name], tup, item.dst_port)
                finally:
                    ring.release()
                progressed = True
        return progressed

    def release_held() -> bool:
        progressed = False
        remaining = []
        for src, name, port, tup in held:
            if src_has_blocks(src):
                remaining.append((src, name, port, tup))
                continue
            deliver(ops_by_name[name], tup, port)
            progressed = True
        held[:] = remaining
        return progressed

    def dispatch_wire(src: Any, dst: str, port: int, wire: dict) -> None:
        tup = from_wire(wire)
        if tup.is_punctuation and src_has_blocks(src):
            # Punctuation holdback: this producer's blocks are still
            # in its ring; dispatching end-of-stream now would lose
            # them.  Deliver once the ring drains.
            held.append((src, dst, port, tup))
            return
        deliver(ops_by_name[dst], tup, port)

    def handle(msg: dict) -> bool:
        kind = msg["t"]
        if kind == "tuple":
            _dec_inflight(spec)
            dispatch_wire(msg["src"], msg["dst"], msg["port"], msg["wire"])
            return True
        if kind == "tuples":
            # A coalesced batch: one in-flight decrement for all items.
            items = msg["items"]
            _dec_inflight(spec, len(items))
            src = msg["src"]
            for dst, port, wire in items:
                dispatch_wire(src, dst, port, wire)
            return True
        if kind == "ring":
            if msg["name"] not in rings:
                ring = BlockRing(
                    msg["name"],
                    slots=msg["slots"],
                    slot_rows=msg["rows"],
                    dim=msg["dim"],
                    create=False,
                )
                rings[msg["name"]] = ring
                rings_of.setdefault(msg["src"], []).append(ring)
            return True
        return False  # "finish" wake-up sentinel

    while True:
        if spec.stop_ev.is_set():
            break
        progressed = drain_rings()
        try:
            # After ring progress there is usually more ring traffic
            # right behind; poll the command queue without the blocking
            # timeout so the pipeline never stalls on an idle syscall.
            if progressed:
                msg = spec.cmd_q.get_nowait()
            else:
                msg = spec.cmd_q.get(timeout=0.002)
        except queue.Empty:
            msg = None
        if msg is not None:
            progressed = handle(msg) or progressed
        if held:
            progressed = release_held() or progressed
        # Ship everything the iteration's dispatches emitted as one
        # batch per destination (bounded latency: one loop iteration).
        sender.flush()
        if not quiesced_sent and all(op.is_closed for op in spec.ops):
            spec.main_q.put({"t": "quiesced", "w": wid})
            quiesced_sent = True
        if (
            spec.finish_ev.is_set()
            and not progressed
            and not held
            and all(r.depth() == 0 for r in rings.values())
        ):
            break

    if spec.stop_ev.is_set():
        for ring in rings.values():
            ring.close()
        sender.close(unlink=False)
        return

    # Ship final operator state, the metrics shard, supervision stats and
    # transport counters back to the coordinator.
    payloads = {
        op.name: _strip_payload(dict(op.__dict__)) for op in spec.ops
    }
    shard = (
        [
            (name, kind, dict(labels), float(value))
            for name, kind, labels, value in operator_metric_samples(spec.ops)
        ]
        if spec.metrics
        else []
    )
    sup_stats = None
    if supervisor is not None:
        s = supervisor.stats
        sup_stats = {
            "failures": dict(s.failures),
            "retries": dict(s.retries),
            "skipped_tuples": dict(s.skipped_tuples),
            "restarts": dict(s.restarts),
            "recovery_time_s": dict(s.recovery_time_s),
        }
    transport = dict(sender.counters)
    transport["blocks_ring_in"] = sum(r.blocks_out for r in rings.values())
    spec.main_q.put({
        "t": "done",
        "w": wid,
        "ops": payloads,
        "metrics": shard,
        "sup": sup_stats,
        "transport": transport,
        "rings": [r.name for r in sender.rings.values()]
        + [r.name for r in rings.values()],
    })
    for ring in rings.values():
        ring.close()
    sender.close(unlink=False)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ProcessEngine:
    """Multi-process runtime with shared-memory block transport.

    Parameters
    ----------
    graph:
        The application graph — unchanged operator code runs under all
        three engines.
    fusion:
        PE assignment; default :meth:`FusionPlan.per_operator`.
    main_ops:
        Names of operators pinned to the coordinator process (sources
        and sinks are always pinned).  PEs containing only unpinned
        non-source/sink operators become worker processes.
    queue_size:
        Bound of each cross-process command queue (backpressure).
    ring_slots / ring_slot_rows:
        Shared-memory ring geometry per transport edge: ``ring_slots``
        blocks of up to ``ring_slot_rows`` rows each.  Keep
        ``ring_slot_rows`` ≥ the upstream batch size or blocks fall back
        to the (pickled, counted) queue path.  See
        ``docs/performance.md``.
    mp_context:
        Start-method name (``"fork"``/``"forkserver"``/``"spawn"``) or
        ``None`` for :func:`repro.streams.shm.safe_mp_context`.  When a
        supervisor carries ``RestartFromCheckpoint`` policies the
        default prefers ``forkserver``: restarts fork from a clean
        server instead of the by-then multi-threaded coordinator.
    supervisor:
        Coordinator-side supervisor.  Its *policies* (not the object —
        it holds locks) are shipped to workers, which run their own
        in-process supervisor; worker stats merge back at shutdown.
        ``RestartFromCheckpoint`` policies additionally enable worker
        respawn on process death.
    telemetry:
        Coordinator telemetry.  Metrics and backpressure sampling work
        across processes (worker registries merge back as
        ``process``-labelled shards); span tracing does not propagate
        across the process boundary and is ignored.
    stall_timeout_s:
        Arm a :class:`~repro.streams.supervision.Watchdog` on
        coordinator-visible progress (local dispatches, worker
        messages, ring drains).  When progress stops for this long, a
        *wedged* worker — alive but making no progress, e.g. stuck in a
        hung syscall — covered by a ``RestartFromCheckpoint`` policy is
        terminated and respawned from its checkpoint, exactly like a
        crashed one; with no restartable worker to blame the run fails
        fast with :class:`StallDetected` instead of hanging until
        ``timeout_s``.  Must exceed the slowest single-tuple processing
        time plus worker startup.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        fusion: FusionPlan | None = None,
        main_ops: Iterable[str] = (),
        queue_size: int = 256,
        ring_slots: int = 8,
        ring_slot_rows: int = 64,
        mp_context: str | None = None,
        supervisor: Supervisor | None = None,
        telemetry: Telemetry | None = None,
        stall_timeout_s: float | None = None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.fusion = fusion or FusionPlan.per_operator(graph)
        self.fusion.validate(graph)
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.queue_size = queue_size
        self.ring_slots = ring_slots
        self.ring_slot_rows = ring_slot_rows
        self.supervisor = supervisor
        self.telemetry = telemetry
        self.stall_timeout_s = stall_timeout_s
        self._watchdog: Watchdog | None = None
        self._tracer = None  # tracing is not propagated across processes
        if telemetry is not None:
            telemetry.attach_graph(graph, fusion=self.fusion)
            if supervisor is not None:
                telemetry.attach_supervisor(supervisor)

        known = {op.name for op in graph}
        self.main_ops = set(main_ops)
        unknown = self.main_ops - known
        if unknown:
            raise ValueError(
                f"main_ops name unknown operators: {sorted(unknown)}"
            )

        if mp_context is None and supervisor is not None and any(
            isinstance(p, RestartFromCheckpoint)
            for p in supervisor.policies.values()
        ):
            # Worker respawn happens while coordinator threads are live;
            # forking the coordinator then is unsafe.
            if "forkserver" in mp.get_all_start_methods():
                mp_context = "forkserver"
        self._ctx = safe_mp_context(mp_context)

        self._ops_by_name: dict[str, Operator] = {
            op.name: op for op in graph
        }
        self._op_index = {op.name: i for i, op in enumerate(graph.operators)}
        self._idx_names = [op.name for op in graph.operators]

        # Placement: worker PEs vs coordinator PEs.
        self._worker_pes: dict[int, ProcessingElement] = {}
        self._main_pes: list[ProcessingElement] = []
        next_wid = 0
        for pe in self.fusion.pes:
            if self._pinned(pe):
                self._main_pes.append(pe)
            else:
                self._worker_pes[next_wid] = pe
                next_wid += 1
        self._loc_of: dict[str, Any] = {}
        for pe in self._main_pes:
            for op in pe.operators:
                self._loc_of[op.name] = _MAIN
        for wid, pe in self._worker_pes.items():
            for op in pe.operators:
                self._loc_of[op.name] = wid

        # Coordinator-side threading state (mirrors ThreadedEngine).
        self._inboxes: dict[int, queue.Queue] = {}
        self._pe_of: dict[int, ProcessingElement] = {}
        self._stop = threading.Event()
        self._finish = threading.Event()
        self._errors: list[BaseException] = []
        self._local_inflight = 0
        self._local_lock = threading.Lock()

        # Cross-process state, populated by run().
        self._procs: dict[int, Any] = {}
        self._specs: dict[int, _WorkerSpec] = {}
        self._cmd_qs: dict[int, Any] = {}
        self._quiesced: set[int] = set()
        self._done: dict[int, dict] = {}
        self._worker_deaths = 0
        self._death_grace: dict[int, float] = {}
        self._sent_puncts: dict[int, set[tuple[str, int]]] = {}
        self._main_rings: dict[str, BlockRing] = {}
        self._main_rings_of: dict[Any, list[BlockRing]] = {}
        self._held: list[tuple[Any, str, int, StreamTuple]] = []
        self._worker_ring_names: set[str] = set()
        self._sender: _TransportSender | None = None
        #: Aggregated transport counters, merged from every process at
        #: shutdown.  ``blocks_queue`` staying 0 verifies the zero-copy
        #: hot path.
        self.transport_stats: dict[str, int] = {}

    # -- placement -------------------------------------------------------

    def _pinned(self, pe: ProcessingElement) -> bool:
        return any(
            isinstance(op, (Source, Sink)) or op.name in self.main_ops
            for op in pe.operators
        )

    @property
    def n_workers(self) -> int:
        """Worker processes this graph will run with."""
        return len(self._worker_pes)

    # -- in-flight accounting (coordinator local + shared) --------------

    def _tuple_enqueued(self) -> None:
        with self._local_lock:
            self._local_inflight += 1

    def _tuple_done(self) -> None:
        with self._local_lock:
            self._local_inflight -= 1
        if self._watchdog is not None:
            self._watchdog.poke()

    def _dec_shared(self, n: int = 1) -> None:
        with self._inflight.get_lock():
            self._inflight.value -= n

    # -- dispatch (coordinator threads) ----------------------------------

    def _deliver(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        if self.supervisor is not None:
            self.supervisor.dispatch(dst, tup, port)
        else:
            dst._dispatch(tup, port)

    _dispatch = _deliver  # _PERunner calls engine._dispatch

    def _local_put(self, pe_id: int, item) -> None:
        inbox = self._inboxes[pe_id]
        self._tuple_enqueued()
        while True:
            try:
                inbox.put(item, timeout=0.05)
                return
            except queue.Full:
                if self._stop.is_set():
                    with self._local_lock:
                        self._local_inflight -= 1
                    raise EngineAborted from None

    # -- wiring ----------------------------------------------------------

    def _routes_for(
        self, op: Operator
    ) -> dict[int, list[tuple[Any, str, int]]]:
        routes: dict[int, list[tuple[Any, str, int]]] = {}
        for port in range(op.n_outputs):
            entries = [
                (self._loc_of[dst.name], dst.name, in_port)
                for dst, in_port in self.graph.successors(op, port)
            ]
            if entries:
                routes[port] = entries
        return routes

    def _wire_main(self) -> None:
        for pe in self._main_pes:
            inbox: queue.Queue = queue.Queue(maxsize=self.queue_size)
            self._inboxes[pe.pe_id] = inbox
            for op in pe.operators:
                self._pe_of[id(op)] = pe

        for pe in self._main_pes:
            for op in pe.operators:
                routes = self._routes_for(op)

                def emit(
                    tup: StreamTuple,
                    port: int,
                    _routes: dict = routes,
                    _my_pe: ProcessingElement = pe,
                ) -> None:
                    for dst_loc, dst_name, dst_port in _routes.get(port, ()):
                        if dst_loc == _MAIN:
                            dst = self._ops_by_name[dst_name]
                            dst_pe = self._pe_of[id(dst)]
                            if dst_pe is _my_pe:
                                self._dispatch(dst, tup, dst_port)
                            else:
                                self._local_put(
                                    dst_pe.pe_id, (dst, dst_port, tup)
                                )
                        else:
                            if tup.is_punctuation:
                                self._sent_puncts.setdefault(
                                    dst_loc, set()
                                ).add((dst_name, dst_port))
                            self._sender.send(
                                dst_loc, dst_name, dst_port, tup
                            )

                op.bind(emit)
                if isinstance(op, Split):
                    op.set_load_probe(self._make_probe(op))

    def _make_probe(self, split: Split):
        def probe(port: int) -> int:
            succ = self.graph.successors(split, port)
            if not succ:
                return 0
            dst = succ[0][0]
            loc = self._loc_of[dst.name]
            if loc == _MAIN:
                dst_pe = self._pe_of[id(dst)]
                if dst_pe is self._pe_of.get(id(split)):
                    return 0
                return self._inboxes[dst_pe.pe_id].qsize()
            return self._transport_depth(loc)

        return probe

    def _transport_depth(self, wid: int) -> int:
        depth = 0
        try:
            depth += self._cmd_qs[wid].qsize()
        except (NotImplementedError, OSError):  # pragma: no cover - macOS
            pass
        if self._sender is not None:
            ring = self._sender.rings.get(wid)
            if ring is not None:
                depth += ring.depth()
        return depth

    # -- worker lifecycle ------------------------------------------------

    def _worker_policies(self, pe: ProcessingElement) -> dict[str, Any]:
        if self.supervisor is None:
            return {}
        return {
            op.name: self.supervisor.policies[op.name]
            for op in pe.operators
            if op.name in self.supervisor.policies
        }

    def _build_spec(self, wid: int, pe: ProcessingElement) -> _WorkerSpec:
        return _WorkerSpec(
            worker_id=wid,
            label=pe.label(),
            ops=[_sanitize(op) for op in pe.operators],
            op_index=self._op_index,
            idx_names=self._idx_names,
            routes={
                op.name: self._routes_for(op) for op in pe.operators
            },
            cmd_q=self._cmd_qs[wid],
            main_q=self._main_q,
            peer_qs={
                w: q for w, q in self._cmd_qs.items() if w != wid
            },
            inflight=self._inflight,
            stop_ev=self._stop_ev,
            finish_ev=self._finish_ev,
            run_id=self._run_id,
            queue_size=self.queue_size,
            ring_slots=self.ring_slots,
            slot_rows=self.ring_slot_rows,
            policies=self._worker_policies(pe),
            metrics=(
                self.telemetry is not None and self.telemetry.config.metrics
            ),
        )

    def _start_worker(self, wid: int) -> None:
        spec = self._specs[wid]
        proc = self._ctx.Process(
            target=_worker_main,
            args=(spec,),
            name=f"repro-{spec.label}",
            daemon=True,
        )
        proc.start()
        self._procs[wid] = proc

    def _restartable(self, wid: int) -> bool:
        if self.supervisor is None:
            return False
        pe = self._worker_pes[wid]
        for op in pe.operators:
            policy = self.supervisor.policies.get(op.name)
            if isinstance(policy, RestartFromCheckpoint):
                n = self.supervisor.stats.restarts.get(op.name, 0)
                if policy.max_restarts is None or n < policy.max_restarts:
                    return True
        return False

    def _check_workers(self) -> None:
        for wid, proc in list(self._procs.items()):
            if wid in self._done or proc.is_alive():
                self._death_grace.pop(wid, None)
                continue
            if proc.exitcode == 0:
                # Clean exit: the final "done" message may still be in
                # transit to the receiver; give it a grace window before
                # declaring the worker dead.
                first_seen = self._death_grace.setdefault(
                    wid, time.perf_counter()
                )
                if time.perf_counter() - first_seen < 5.0:
                    continue
            self._death_grace.pop(wid, None)
            # Worker process died before reporting done.
            self._worker_deaths += 1
            pe = self._worker_pes[wid]
            if not self._restartable(wid):
                raise OperatorFailure(
                    pe.label(),
                    RuntimeError(
                        f"worker process exited with code {proc.exitcode}"
                    ),
                    "no RestartFromCheckpoint policy covers this PE",
                )
            for op in pe.operators:
                if isinstance(
                    self.supervisor.policies.get(op.name),
                    RestartFromCheckpoint,
                ):
                    stats = self.supervisor.stats
                    stats.restarts[op.name] = (
                        stats.restarts.get(op.name, 0) + 1
                    )
            self._quiesced.discard(wid)
            self._unpoison_cmd_queue(wid)
            spec = self._specs[wid]
            spec.resume = True
            self._start_worker(wid)
            # The new worker re-attaches the surviving queue/ring state;
            # re-announce coordinator rings and re-send punctuation the
            # dead worker had already consumed into local memory.
            if self._sender is not None:
                self._sender.announce(wid)
            for dst_name, dst_port in sorted(
                self._sent_puncts.get(wid, ())
            ):
                self._sender.send(
                    wid, dst_name, dst_port, StreamTuple.punctuation()
                )

    def _unpoison_cmd_queue(self, wid: int) -> None:
        """Release the command queue's reader lock if the dead worker
        took it to the grave.

        ``Queue.get(timeout=...)`` holds the queue's shared ``_rlock``
        for the whole poll window, so a worker SIGKILLed while idle (the
        common case — the 2 ms poll dominates its loop) dies holding the
        lock.  The respawned worker then times out on every acquire and
        reads nothing, producers spin on Full, and the run livelocks
        until the graph timeout.  The dead worker was this queue's only
        reader, so an unavailable lock here can only be the victim's
        orphaned hold — force-release it.  (A kill landing inside
        ``_recv_bytes`` can still tear the byte stream mid-frame; that
        window is orders of magnitude narrower and surfaces as a decode
        error → another respawn, not a hang.)
        """
        rlock = getattr(self._cmd_qs.get(wid), "_rlock", None)
        if rlock is None:  # pragma: no cover - exotic Queue implementation
            return
        if rlock.acquire(block=False):
            rlock.release()
            return
        try:
            rlock.release()
        except ValueError:  # pragma: no cover - lost the (benign) race
            pass

    def _check_stall(self) -> None:
        """Recover from a wedged (alive but progress-free) worker.

        A worker stuck in a hung syscall never dies, so
        :meth:`_check_workers` never fires; the watchdog converts "no
        coordinator-visible progress for ``stall_timeout_s``" into a
        worker termination, and the normal death path respawns it from
        its checkpoint.  Without a restartable worker to blame, failing
        fast beats hanging until the run timeout.
        """
        wd = self._watchdog
        if wd is None:
            return
        idle = wd.stalled_for()
        if idle is None:
            return
        wedged = [
            wid for wid, proc in self._procs.items()
            if proc.is_alive()
            and wid not in self._quiesced and wid not in self._done
        ]
        killable = [wid for wid in wedged if self._restartable(wid)]
        if not killable:
            raise StallDetected(
                f"graph {self.graph.name!r}: no coordinator-visible "
                f"progress for {idle:.1f}s and no wedged worker with a "
                f"RestartFromCheckpoint policy to recover "
                f"(wedged: {wedged})"
            )
        for wid in killable:
            proc = self._procs[wid]
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5.0)
        wd.poke()  # the kill is progress; _check_workers respawns them

    # -- receiver thread -------------------------------------------------

    def _route_to_main(
        self, dst_name: str, tup: StreamTuple, port: int
    ) -> None:
        dst = self._ops_by_name[dst_name]
        self._local_put(self._pe_of[id(dst)].pe_id, (dst, port, tup))

    def _src_has_blocks(self, src: Any) -> bool:
        return any(
            r.depth() > 0 for r in self._main_rings_of.get(src, ())
        )

    def _drain_main_rings(self) -> bool:
        progressed = False
        for ring in self._main_rings.values():
            while True:
                item = ring.get()
                if item is None:
                    break
                self._dec_shared()
                name = self._idx_names[item.dst_idx]
                # Copy out of the slot: delivery is asynchronous (via a
                # PE inbox), so views into the ring cannot outlive the
                # release.  Still no pickling — one memcpy.
                tup = tuple_from_fields(
                    {
                        "xs": np.array(item.xs, copy=True),
                        "seqs": np.array(item.seqs, copy=True),
                        "count": int(item.xs.shape[0]),
                    },
                    TupleKind.DATA,
                    BLOCK_SCHEMA,
                    item.tuple_seq,
                    item.event_ts,
                )
                ring.release()
                self._route_to_main(name, tup, item.dst_port)
                progressed = True
        if progressed and self._watchdog is not None:
            self._watchdog.poke()
        return progressed

    def _release_held(self) -> None:
        remaining = []
        for src, name, port, tup in self._held:
            if self._src_has_blocks(src):
                remaining.append((src, name, port, tup))
                continue
            self._route_to_main(name, tup, port)
        self._held[:] = remaining

    def _dispatch_wire(
        self, src: Any, dst: str, port: int, wire: dict
    ) -> None:
        tup = from_wire(wire)
        if tup.is_punctuation and self._src_has_blocks(src):
            self._held.append((src, dst, port, tup))
            return
        self._route_to_main(dst, tup, port)

    def _handle_main_msg(self, msg: dict) -> None:
        if self._watchdog is not None:
            self._watchdog.poke()
        kind = msg["t"]
        if kind == "tuple":
            self._dec_shared()
            self._dispatch_wire(
                msg["src"], msg["dst"], msg["port"], msg["wire"]
            )
        elif kind == "tuples":
            items = msg["items"]
            self._dec_shared(len(items))
            src = msg["src"]
            for dst, port, wire in items:
                self._dispatch_wire(src, dst, port, wire)
        elif kind == "ring":
            if msg["name"] not in self._main_rings:
                ring = BlockRing(
                    msg["name"],
                    slots=msg["slots"],
                    slot_rows=msg["rows"],
                    dim=msg["dim"],
                    create=False,
                )
                self._main_rings[msg["name"]] = ring
                self._main_rings_of.setdefault(msg["src"], []).append(ring)
                self._worker_ring_names.add(msg["name"])
        elif kind == "quiesced":
            self._quiesced.add(msg["w"])
        elif kind == "done":
            self._done[msg["w"]] = msg
            self._quiesced.add(msg["w"])
            self._worker_ring_names.update(msg.get("rings", ()))
        elif kind == "error":
            self._errors.append(
                OperatorFailure(
                    self._worker_pes[msg["w"]].label(),
                    RuntimeError(msg["error"]),
                    msg.get("traceback", ""),
                )
            )
            self._stop.set()
            self._stop_ev.set()

    def _receiver_loop(self) -> None:
        try:
            while True:
                progressed = self._drain_main_rings()
                try:
                    # Same no-stall poll as the worker loop: only block
                    # on the queue when the rings had nothing.
                    if progressed:
                        msg = self._main_q.get_nowait()
                    else:
                        msg = self._main_q.get(timeout=0.005)
                except queue.Empty:
                    msg = None
                if msg is not None:
                    self._handle_main_msg(msg)
                    progressed = True
                if self._held:
                    self._release_held()
                if self._recv_halt.is_set() and not progressed:
                    return
                if self._stop.is_set() and not progressed:
                    # Keep draining while workers are still alive so their
                    # final puts cannot block the abort path.
                    if all(not p.is_alive() for p in self._procs.values()):
                        return
        except EngineAborted:
            pass
        except BaseException as exc:  # pragma: no cover - defensive
            self._errors.append(exc)
            self._stop.set()
            self._stop_ev.set()

    # -- run -------------------------------------------------------------

    def run(self, *, timeout_s: float = 300.0) -> RunStats:
        """Execute to completion; raises on worker/operator failure.

        Follows the same quiesce → drain → finish protocol as the
        threaded engine, extended with worker processes: completion
        requires every source thread done, every coordinator PE and
        every worker quiesced, and both in-flight counters (local thread
        hops, cross-process messages) at zero.
        """
        ctx = self._ctx
        ensure_shared_tracker()
        self._run_id = uuid.uuid4().hex[:8]
        self._stop_ev = ctx.Event()
        self._finish_ev = ctx.Event()
        self._inflight = ctx.Value("q", 0)
        self._main_q = ctx.Queue(maxsize=max(self.queue_size * 4, 1024))
        self._cmd_qs = {
            wid: ctx.Queue(maxsize=self.queue_size)
            for wid in self._worker_pes
        }
        self._recv_halt = threading.Event()
        self._sender = _TransportSender(
            _MAIN,
            self._run_id,
            self._cmd_qs,
            self._inflight,
            self._stop.is_set,
            self._op_index,
            ring_slots=self.ring_slots,
            slot_rows=self.ring_slot_rows,
            disown_rings=False,
        )

        if self.telemetry is not None:
            self.telemetry.run_started(
                engine="process", graph=self.graph.name
            )

        # Specs are built (and, under spawn/forkserver, pickled) before
        # any coordinator thread starts: worker startup is spawn-safe by
        # construction.
        self._specs = {
            wid: self._build_spec(wid, pe)
            for wid, pe in self._worker_pes.items()
        }
        start = time.perf_counter()
        self._watchdog = (
            Watchdog(self.stall_timeout_s)
            if self.stall_timeout_s is not None
            else None
        )
        for wid in self._worker_pes:
            self._start_worker(wid)

        self._wire_main()
        for pe in self._main_pes:
            for op in pe.operators:
                op.open()

        pe_runners = []
        for pe in self._main_pes:
            if all(isinstance(op, Source) for op in pe.operators):
                continue
            pe_runners.append(_PERunner(pe, self._inboxes[pe.pe_id], self))
        src_threads = [
            _SourceRunner(src, self._errors, self._stop)
            for src in self.graph.sources
        ]
        receiver = threading.Thread(
            target=self._receiver_loop, name="proc-receiver", daemon=True
        )
        sampler = self._start_sampler()
        for t in src_threads + pe_runners:
            t.start()
        receiver.start()

        deadline = start + timeout_s
        inflight_stable_since: tuple[float, int] | None = None
        try:
            while True:
                if self._errors:
                    raise self._errors[0]
                self._check_workers()
                self._check_stall()
                shared = self._inflight.value
                quiet = (
                    all(not t.is_alive() for t in src_threads)
                    and all(r.quiesced.is_set() for r in pe_runners)
                    and set(self._worker_pes)
                    <= (self._quiesced | set(self._done))
                    and self._local_inflight == 0
                )
                if quiet and shared <= 0:
                    break
                if quiet and self._worker_deaths:
                    # A crash can leak in-flight counts for messages that
                    # died inside the worker; once everything is quiesced
                    # and the count has been frozen for a grace period,
                    # treat the residue as the (bounded) crash loss.
                    now = time.perf_counter()
                    if inflight_stable_since is None:
                        inflight_stable_since = (now, shared)
                    elif inflight_stable_since[1] != shared:
                        inflight_stable_since = (now, shared)
                    elif now - inflight_stable_since[0] > 2.0:
                        break
                else:
                    inflight_stable_since = None
                if time.perf_counter() > deadline:
                    alive = [
                        f"w{w}" for w, p in self._procs.items()
                        if p.is_alive()
                    ] + [t.name for t in src_threads + pe_runners
                         if t.is_alive()]
                    raise RuntimeError(
                        f"graph {self.graph.name!r} did not finish within "
                        f"{timeout_s}s (still running: {alive})"
                    )
                time.sleep(0.002)

            # Global quiescence: raise finish everywhere, collect workers.
            self._finish.set()
            self._finish_ev.set()
            for wid, q in self._cmd_qs.items():
                try:
                    q.put_nowait({"t": "finish"})
                except queue.Full:
                    pass
            done_deadline = time.perf_counter() + 60.0
            while set(self._worker_pes) - set(self._done):
                if self._errors:
                    raise self._errors[0]
                self._check_workers()
                self._check_stall()
                if time.perf_counter() > done_deadline:
                    missing = sorted(set(self._worker_pes) - set(self._done))
                    raise RuntimeError(
                        f"workers {missing} did not report final state"
                    )
                time.sleep(0.002)
            for t in pe_runners:
                t.join(timeout=5.0)
            if self._errors:
                raise self._errors[0]
        finally:
            self._finish.set()
            self._finish_ev.set()
            self._stop.set()
            self._stop_ev.set()
            self._recv_halt.set()
            for t in src_threads + pe_runners:
                t.join(timeout=1.0)
            for proc in self._procs.values():
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
            receiver.join(timeout=5.0)
            if sampler is not None:
                sampler.stop()
            self._cleanup_transport()

        self._apply_done()
        stats = RunStats.collect(
            self.graph, time.perf_counter() - start, self.supervisor
        )
        if self.telemetry is not None:
            self.telemetry.run_finished(stats)
        return stats

    # -- shutdown bookkeeping --------------------------------------------

    def _apply_done(self) -> None:
        """Fold worker results back into coordinator-side objects."""
        totals: dict[str, int] = {
            "blocks_ring": 0,
            "blocks_queue": 0,
            "tuples_queue": 0,
            "tuple_batches": 0,
            "blocks_ring_in": 0,
        }
        if self._sender is not None:
            for key, value in self._sender.counters.items():
                totals[key] += value
            totals["blocks_ring_in"] += sum(
                r.blocks_out for r in self._main_rings.values()
            )
        for wid, msg in self._done.items():
            for name, payload in msg["ops"].items():
                op = self._ops_by_name.get(name)
                if op is not None:
                    op.__dict__.update(_strip_payload(dict(payload)))
            if self.telemetry is not None and msg.get("metrics"):
                self.telemetry.merge_shard(f"w{wid}", msg["metrics"])
            sup = msg.get("sup")
            if sup and self.supervisor is not None:
                stats = self.supervisor.stats
                for field_name in (
                    "failures", "retries", "skipped_tuples", "restarts",
                ):
                    table = getattr(stats, field_name)
                    for name, n in sup[field_name].items():
                        table[name] = table.get(name, 0) + n
                for name, s in sup["recovery_time_s"].items():
                    stats.recovery_time_s[name] = (
                        stats.recovery_time_s.get(name, 0.0) + s
                    )
            for key, value in msg.get("transport", {}).items():
                totals[key] = totals.get(key, 0) + value
        self.transport_stats = totals

    def _cleanup_transport(self) -> None:
        if self._sender is not None:
            self._sender.close(unlink=True)
        for ring in self._main_rings.values():
            ring.close()
        for name in self._worker_ring_names:
            _unlink_segment(name)
        for q in list(self._cmd_qs.values()) + [self._main_q]:
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - platform quirks
                pass

    # -- sampler ---------------------------------------------------------

    def _start_sampler(self) -> BackpressureSampler | None:
        tel = self.telemetry
        if tel is None or tel.config.sampler_interval_s is None:
            return None

        def probe():
            per_pe = [
                (
                    pe.label(),
                    self._inboxes[pe.pe_id].qsize(),
                    self.queue_size,
                )
                for pe in self._main_pes
            ]
            per_pe += [
                (
                    f"w{wid}:{pe.label()}",
                    self._transport_depth(wid),
                    self.queue_size + self.ring_slots,
                )
                for wid, pe in self._worker_pes.items()
            ]
            inflight = self._local_inflight + max(self._inflight.value, 0)
            dispatched = sum(
                op.tuples_in
                for pe in self._main_pes
                for op in pe.operators
            )
            return per_pe, inflight, dispatched

        sampler = BackpressureSampler(
            tel, probe, interval_s=tel.config.sampler_interval_s
        )
        sampler.start()
        return sampler
