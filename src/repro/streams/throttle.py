"""The SPL ``Throttle`` operator (Section III-B).

"Another important synchronization component is standard SPL Throttle
operator. One controls the rate of synchronization tuples from the
control component to the listening PCA engines."  We provide the same
knob in two clocks:

* **wall-clock** (``rate_hz``): at most ``rate_hz`` tuples per second pass
  through; excess tuples are *dropped* (mode ``"drop"``, right for sync
  signals where only freshness matters) or *delayed* by sleeping (mode
  ``"block"``, right for pacing a data stream under the threaded runtime).
* **logical** (``logical_period``): at most one tuple per ``period``
  arrivals, for the deterministic synchronous runtime where wall time is
  meaningless.

Either clock may be disabled by leaving its parameter ``None``.
"""

from __future__ import annotations

import time

from .operators import Operator
from .tuples import StreamTuple

__all__ = ["Throttle"]


class Throttle(Operator):
    """Rate-limit a stream by wall-clock rate and/or logical period.

    Parameters
    ----------
    rate_hz:
        Maximum forwarded tuples per second (wall clock); ``None`` = no
        wall-clock limit.
    logical_period:
        Forward at most one tuple per this many arrivals; ``None`` = no
        logical limit.
    mode:
        ``"drop"`` discards over-rate tuples; ``"block"`` sleeps until
        the rate allows (wall-clock limit only).
    """

    def __init__(
        self,
        name: str,
        *,
        rate_hz: float | None = None,
        logical_period: int | None = None,
        mode: str = "drop",
        clock=time.monotonic,
    ) -> None:
        if rate_hz is not None and rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {rate_hz}")
        if logical_period is not None and logical_period < 1:
            raise ValueError(
                f"logical_period must be >= 1, got {logical_period}"
            )
        if mode not in ("drop", "block"):
            raise ValueError(f"mode must be 'drop' or 'block', got {mode!r}")
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.rate_hz = rate_hz
        self.logical_period = logical_period
        self.mode = mode
        self._clock = clock
        self._min_interval = 1.0 / rate_hz if rate_hz else 0.0
        self._last_emit_time = -float("inf")
        self._arrivals_since_emit = 0
        self.n_dropped = 0
        self.n_forwarded = 0
        self._first_forward_time: float | None = None
        self._last_forward_time: float | None = None

    def achieved_rate_hz(self) -> float:
        """Forwarded tuples per second over the run so far (wall clock).

        The observable counterpart of the ``rate_hz`` setting: what rate
        the throttle actually achieved, measured first-forward to
        last-forward.  Exposed as the ``repro_throttle_achieved_hz``
        gauge when telemetry is attached; 0.0 until two tuples pass.
        """
        if (
            self.n_forwarded < 2
            or self._first_forward_time is None
            or self._last_forward_time is None
        ):
            return 0.0
        elapsed = self._last_forward_time - self._first_forward_time
        if elapsed <= 0:
            return 0.0
        # n forwards define n-1 inter-emission intervals.
        return (self.n_forwarded - 1) / elapsed

    def process(self, tup: StreamTuple, port: int) -> None:
        self._arrivals_since_emit += 1
        if (
            self.logical_period is not None
            and self._arrivals_since_emit < self.logical_period
        ):
            self.n_dropped += 1
            return
        if self.rate_hz is not None:
            now = self._clock()
            wait = self._last_emit_time + self._min_interval - now
            if wait > 0:
                if self.mode == "drop":
                    self.n_dropped += 1
                    # A dropped tuple does not reset the logical counter:
                    # the next arrival may still be due logically.
                    self._arrivals_since_emit -= 1
                    return
                time.sleep(wait)
                now = self._clock()
            self._last_emit_time = now
        self._arrivals_since_emit = 0
        now = self._clock()
        if self._first_forward_time is None:
            self._first_forward_time = now
        self._last_forward_time = now
        self.n_forwarded += 1
        self.submit(tup)
