"""Stream sinks: collectors, CSV writers, checkpoint writers, probes.

The output side of the application graph — result collection for tests
and examples, periodic eigensystem persistence (Section III-C), and the
throughput probe used by the performance experiments ("the observations
processing rate was measured as the number of output tuples at the
operator splitting the stream", Section III-D).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..io.checkpoint import CheckpointStore
from ..io.csvio import write_vectors_csv
from .operators import Sink
from .tuples import StreamTuple

__all__ = ["CollectingSink", "CallbackSink", "CSVSink", "CheckpointSink", "RateProbe"]


class CollectingSink(Sink):
    """Keep every received data tuple in memory (tests, small runs)."""

    def __init__(self, name: str, *, n_inputs: int = 1) -> None:
        super().__init__(name, n_inputs=n_inputs)
        self.tuples: list[StreamTuple] = []

    def consume(self, tup: StreamTuple, port: int) -> None:
        self.tuples.append(tup)

    def payloads(self, key: str) -> list[Any]:
        """Extract one payload field across all collected tuples."""
        return [t[key] for t in self.tuples if key in t.payload]


class CallbackSink(Sink):
    """Invoke ``fn(tuple, port)`` per data tuple."""

    def __init__(
        self, name: str, fn: Callable[[StreamTuple, int], None],
        *, n_inputs: int = 1,
    ) -> None:
        super().__init__(name, n_inputs=n_inputs)
        self._fn = fn

    def consume(self, tup: StreamTuple, port: int) -> None:
        self._fn(tup, port)


class CSVSink(Sink):
    """Buffer the ``x`` vectors of incoming tuples; write CSV on close."""

    def __init__(self, name: str, path: str) -> None:
        super().__init__(name)
        self.path = path
        self._rows: list = []

    def consume(self, tup: StreamTuple, port: int) -> None:
        self._rows.append(tup["x"])

    def close(self) -> None:
        write_vectors_csv(self.path, self._rows)


class CheckpointSink(Sink):
    """Persist eigensystem tuples (field ``state``) to a checkpoint store."""

    def __init__(self, name: str, store: CheckpointStore) -> None:
        super().__init__(name)
        self.store = store

    def consume(self, tup: StreamTuple, port: int) -> None:
        state = tup.get("state")
        if state is not None:
            self.store.maybe_save(state)


class RateProbe(Sink):
    """Measure arrival rate over a sliding window of wall time.

    ``rate()`` reports tuples/second over the last ``window_s`` seconds —
    the paper's "averaged in 30 seconds" methodology, with a shorter
    default suited to test runs.
    """

    def __init__(
        self, name: str, *, window_s: float = 5.0, clock=time.monotonic
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        super().__init__(name)
        self.window_s = window_s
        self._clock = clock
        self._stamps: list[float] = []
        self.first_arrival: float | None = None
        self.last_arrival: float | None = None
        self.n_arrivals = 0

    def consume(self, tup: StreamTuple, port: int) -> None:
        now = self._clock()
        self.n_arrivals += 1
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        self._stamps.append(now)
        # Trim outside the window lazily to stay O(1) amortized.
        cutoff = now - self.window_s
        if self._stamps and self._stamps[0] < cutoff:
            self._stamps = [s for s in self._stamps if s >= cutoff]

    def rate(self) -> float:
        """Tuples/second over the trailing window."""
        if len(self._stamps) < 2:
            return 0.0
        span = self._stamps[-1] - self._stamps[0]
        if span <= 0:
            return 0.0
        return (len(self._stamps) - 1) / span

    def overall_rate(self) -> float:
        """Tuples/second over the whole run."""
        if (
            self.first_arrival is None
            or self.last_arrival is None
            or self.last_arrival <= self.first_arrival
        ):
            return 0.0
        return (self.n_arrivals - 1) / (self.last_arrival - self.first_arrival)
