"""Human-readable run reports over the telemetry event log.

This is the dashboard face of :mod:`repro.streams.telemetry`: given the
structured JSONL event log of a run (or a live event list), render what
the paper's profiling workflow looks at — the hottest operators (by
exclusive time and by traffic), the hottest queues over time, the
supervision/sync activity, and a trace waterfall for the slowest sampled
tuples.  ``python -m repro telemetry <log.jsonl>`` is the CLI wrapper.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["render_report"]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _metric_rows(
    metrics: list[dict[str, Any]], name: str
) -> list[dict[str, Any]]:
    return [m for m in metrics if m.get("name") == name]


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def _top_operators(metrics: list[dict[str, Any]], limit: int) -> list[str]:
    lines: list[str] = []
    excl = _metric_rows(metrics, "repro_exclusive_seconds_total")
    if excl:
        lines += _section(f"top operators by exclusive time (top {limit})")
        total = sum(m["value"] for m in excl) or 1.0
        header = f"{'operator':<24} {'exclusive':>10} {'share':>7}"
        lines += [header]
        for m in sorted(excl, key=lambda m: -m["value"])[:limit]:
            op = m["labels"].get("operator", "?")
            lines.append(
                f"{op:<24} {_fmt_s(m['value']):>10} "
                f"{100.0 * m['value'] / total:>6.1f}%"
            )
    hists = [
        m for m in metrics
        if m.get("name") == "repro_dispatch_seconds"
        and m.get("kind") == "histogram" and m.get("count", 0) > 0
    ]
    if hists:
        lines += _section("dispatch latency per operator")
        header = (
            f"{'operator':<24} {'count':>8} {'mean':>10} "
            f"{'p50':>10} {'p95':>10} {'p99':>10}"
        )
        lines += [header]
        for m in sorted(hists, key=lambda m: -m.get("sum", 0.0)):
            op = m["labels"].get("operator", "?")
            lines.append(
                f"{op:<24} {m['count']:>8} {_fmt_s(m['mean']):>10} "
                f"{_fmt_s(m['p50']):>10} {_fmt_s(m['p95']):>10} "
                f"{_fmt_s(m['p99']):>10}"
            )
    traffic = _metric_rows(metrics, "repro_tuples_in_total")
    if traffic:
        lines += _section(f"traffic (tuples in, top {limit})")
        for m in sorted(traffic, key=lambda m: -m["value"])[:limit]:
            op = m["labels"].get("operator", "?")
            lines.append(f"{op:<24} {int(m['value']):>10}")
    return lines


def _hottest_queues(events: list[dict[str, Any]], limit: int) -> list[str]:
    per_pe: dict[str, list[int]] = {}
    capacity: dict[str, int] = {}
    for e in events:
        if e.get("kind") == "sample" and e.get("pe") is not None:
            per_pe.setdefault(e["pe"], []).append(int(e.get("depth", 0)))
            if "capacity" in e:
                capacity[e["pe"]] = int(e["capacity"])
    if not per_pe:
        return []
    lines = _section(f"hottest queues ({sum(map(len, per_pe.values()))} samples)")
    header = f"{'pe':<32} {'max':>6} {'mean':>8} {'cap':>6}"
    lines += [header]
    ranked = sorted(per_pe.items(), key=lambda kv: -max(kv[1]))[:limit]
    for pe, depths in ranked:
        mean = sum(depths) / len(depths)
        cap = capacity.get(pe)
        lines.append(
            f"{pe:<32} {max(depths):>6} {mean:>8.1f} "
            f"{cap if cap is not None else '-':>6}"
        )
    return lines


def _supervision(events: list[dict[str, Any]]) -> list[str]:
    counts: dict[tuple[str, str], int] = {}
    for e in events:
        if e.get("kind") == "supervision":
            key = (e.get("op", "?"), e.get("event", "?"))
            counts[key] = counts.get(key, 0) + 1
    if not counts:
        return []
    lines = _section("supervision events")
    for (op, event), n in sorted(counts.items()):
        lines.append(f"{op:<24} {event:<10} ×{n}")
    return lines


def _sync_traffic(events: list[dict[str, Any]]) -> list[str]:
    syncs = [e for e in events if e.get("kind") == "sync"]
    if not syncs:
        return []
    total_bytes = sum(int(e.get("bytes", 0)) for e in syncs)
    lines = _section("sync traffic")
    lines.append(
        f"{len(syncs)} state transfers, {total_bytes / 1024.0:.1f} KiB moved"
    )
    per_edge: dict[tuple, int] = {}
    for e in syncs:
        key = (e.get("sender", "?"), e.get("target", "?"))
        per_edge[key] = per_edge.get(key, 0) + 1
    for (sender, target), n in sorted(per_edge.items(), key=lambda kv: -kv[1])[:8]:
        lines.append(f"  {sender} → {target}: ×{n}")
    return lines


def _health(events: list[dict[str, Any]]) -> list[str]:
    """Model-health section: per-engine latest check + verdict timeline."""
    checks = [
        e for e in events
        if e.get("kind") == "health" and e.get("event") != "merge"
    ]
    merges = [
        e for e in events
        if e.get("kind") == "health" and e.get("event") == "merge"
    ]
    verdicts = [e for e in events if e.get("kind") == "health_verdict"]
    if not checks and not merges and not verdicts:
        return []
    lines = _section("model health")
    if checks:
        latest: dict[Any, dict[str, Any]] = {}
        for e in checks:
            latest[e.get("engine", "?")] = e
        header = (
            f"{'engine':<8} {'checks':>7} {'affinity':>9} {'eig drift':>10} "
            f"{'r2 mean':>9} {'gaps':>6} {'outliers':>9} {'chart':>6}"
        )
        lines += [header]

        def _num(v: Any, fmt: str) -> str:
            return format(v, fmt) if isinstance(v, (int, float)) else "-"

        n_per_engine: dict[Any, int] = {}
        for e in checks:
            eng = e.get("engine", "?")
            n_per_engine[eng] = n_per_engine.get(eng, 0) + 1
        for eng in sorted(latest, key=str):
            e = latest[eng]
            lines.append(
                f"{eng!s:<8} {n_per_engine[eng]:>7} "
                f"{_num(e.get('affinity'), '.4f'):>9} "
                f"{_num(e.get('eig_drift'), '.4f'):>10} "
                f"{_num(e.get('r2_window_mean'), '.4f'):>9} "
                f"{_num(e.get('gap_rate'), '.1%'):>6} "
                f"{_num(e.get('outlier_rate'), '.1%'):>9} "
                f"{e.get('chart_status', '?'):>6}"
            )
    if merges:
        n_reseeds = sum(1 for e in merges if e.get("reseed"))
        lines.append(
            f"{len(merges)} merge events ({n_reseeds} re-seeds)"
        )
    if verdicts:
        # Compress the verdict timeline into status transitions.
        transitions: list[str] = []
        prev = None
        for e in verdicts:
            status = e.get("status", "?")
            if status != prev:
                ts = e.get("ts")
                at = _fmt_s(ts) if isinstance(ts, (int, float)) else "?"
                firing = e.get("firing") or []
                names = ",".join(
                    f.get("rule", "?") for f in firing if isinstance(f, dict)
                )
                transitions.append(
                    f"  {at:>10} → {status}" + (f" ({names})" if names else "")
                )
                prev = status
        worst = max(
            (e.get("status", "OK") for e in verdicts),
            key=lambda s: {"OK": 0, "DEGRADED": 1, "CRITICAL": 2}.get(s, 0),
        )
        lines.append(
            f"{len(verdicts)} verdicts, final {prev}, worst {worst}"
        )
        lines += transitions
    return lines


def _warnings(events: list[dict[str, Any]]) -> list[str]:
    """Data-integrity warnings: dropped telemetry events, torn log lines."""
    lines: list[str] = []
    metrics_event = next(
        (e for e in reversed(events) if e.get("kind") == "metrics"), None
    )
    if metrics_event is not None:
        n_dropped = int(metrics_event.get("n_dropped_events", 0) or 0)
        if n_dropped:
            lines.append(
                f"WARNING: {n_dropped} telemetry events dropped "
                "(event log saturated; raise TelemetryConfig.max_events)"
            )
    load_error = next(
        (e for e in events if e.get("kind") == "load_error"), None
    )
    if load_error is not None:
        lines.append(
            f"WARNING: {load_error.get('n_bad_lines', '?')} unparseable "
            "log lines skipped (truncated or corrupt JSONL)"
        )
    return lines


def _waterfall(
    events: list[dict[str, Any]], n_traces: int, width: int = 40
) -> list[str]:
    spans = [e for e in events if e.get("kind") == "span"]
    if not spans:
        return []
    by_trace: dict[int, list[dict[str, Any]]] = {}
    for s in spans:
        by_trace.setdefault(s["trace_id"], []).append(s)

    def root_of(trace: list[dict[str, Any]]) -> dict[str, Any] | None:
        for s in trace:
            if s.get("parent_id") is None:
                return s
        return None

    def span_of_trace(trace: list[dict[str, Any]]) -> float:
        t0 = min(s["t_start"] for s in trace)
        t1 = max(s["t_end"] for s in trace)
        return t1 - t0

    ranked = sorted(by_trace.values(), key=span_of_trace, reverse=True)
    lines = _section(
        f"slowest traces ({min(n_traces, len(ranked))} of {len(ranked)} sampled)"
    )
    for trace in ranked[:n_traces]:
        t0 = min(s["t_start"] for s in trace)
        total = max(span_of_trace(trace), 1e-9)
        root = root_of(trace)
        lines.append(
            f"trace {trace[0]['trace_id']} — {_fmt_s(total)} end-to-end"
            + (f" (root: {root['name']})" if root else "")
        )
        children: dict[int | None, list[dict[str, Any]]] = {}
        for s in trace:
            children.setdefault(s.get("parent_id"), []).append(s)

        def render(span: dict[str, Any], depth: int) -> None:
            lo = int(width * (span["t_start"] - t0) / total)
            hi = max(int(width * (span["t_end"] - t0) / total), lo + 1)
            bar = " " * lo + "█" * (hi - lo)
            label = "  " * depth + span["name"]
            lines.append(
                f"  {label:<28.28} |{bar:<{width}.{width}}| "
                f"{_fmt_s(span['t_end'] - span['t_start'])}"
            )
            for child in sorted(
                children.get(span["span_id"], []), key=lambda s: s["t_start"]
            ):
                render(child, depth + 1)

        for root_span in sorted(
            children.get(None, []), key=lambda s: s["t_start"]
        ):
            render(root_span, 0)
    return lines


def render_report(
    events: Iterable[dict[str, Any]],
    *,
    top: int = 10,
    n_traces: int = 3,
) -> str:
    """Render the full run report from an event list / loaded JSONL log.

    Parameters
    ----------
    events:
        Telemetry events (``Telemetry.events.events()`` or
        :func:`~repro.streams.telemetry.load_events`); the last
        ``metrics`` event supplies the counter/histogram tables.
    top:
        Row limit of the per-operator tables.
    n_traces:
        How many of the slowest sampled traces to render as waterfalls.
    """
    events = list(events)
    metrics: list[dict[str, Any]] = []
    for e in reversed(events):
        if e.get("kind") == "metrics":
            metrics = e.get("metrics", [])
            break

    header = "telemetry run report"
    run_start = next((e for e in events if e.get("kind") == "run_start"), None)
    run_end = next(
        (e for e in reversed(events) if e.get("kind") == "run_end"), None
    )
    if run_start is not None:
        header += f" — {run_start.get('graph', '?')} ({run_start.get('engine', '?')})"
    lines = [header, "=" * len(header)]
    if run_end is not None and "wall_time_s" in run_end:
        lines.append(
            f"wall time {run_end['wall_time_s']:.3f}s, "
            f"throughput {run_end.get('throughput_tps', 0.0):.0f} tuples/s"
        )
    n_spans = sum(1 for e in events if e.get("kind") == "span")
    n_samples = sum(1 for e in events if e.get("kind") == "sample")
    lines.append(
        f"{len(events)} events: {n_spans} spans, {n_samples} samples"
    )
    lines += _warnings(events)

    lines += _top_operators(metrics, top)
    lines += _hottest_queues(events, top)
    lines += _supervision(events)
    lines += _sync_traffic(events)
    lines += _health(events)
    lines += _waterfall(events, n_traces)
    return "\n".join(lines)
