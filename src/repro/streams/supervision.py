"""Supervised, fault-tolerant execution for the stream engines.

The paper's runtime (InfoSphere Streams) assumes a managed cluster where
failed processing elements are restarted by the platform; our engines
previously had no failure semantics beyond fail-fast abort.  Streaming-PCA
practice treats recovery from interrupted or partial streams as a
first-class requirement (Balzano et al., *Streaming PCA and Subspace
Tracking: The Missing Data Case*), so this module supplies the missing
layer:

* **Failure policies** — per-operator reactions to a raised exception:
  :class:`FailFast` (abort the run, the old behaviour),
  :class:`Retry` (re-dispatch with linear backoff),
  :class:`SkipTuple` (drop the offending tuple and continue), and
  :class:`RestartFromCheckpoint` (roll the operator's state back to the
  last snapshot — optionally persisted through
  :class:`repro.io.checkpoint.CheckpointStore` — then resume).
* **Supervisor** — routes every dispatch through the configured policy
  and accumulates structured failure/recovery counters
  (:class:`SupervisionStats`), which the engines copy into
  :class:`~repro.streams.engine.RunStats`.
* **Watchdog** — a global progress monitor the threaded engine polls to
  detect full-queue backpressure cycles and deadlocks long before the
  wall-clock timeout would fire (:class:`StallDetected`).
* **FaultInjector** — a test harness that injects crashes, delays, and
  tuple drops into named operators at configurable tuple counts.

Checkpoint/restart protocol: an operator opts in by implementing
``snapshot_state() -> state | None`` (an independent copy; ``None`` means
"nothing to snapshot yet") and ``restore_state(state) -> None``.  The
:class:`~repro.parallel.pca_operator.StreamingPCAOperator` implements
both in terms of its eigensystem.
"""

from __future__ import annotations

import time
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operators import Operator
    from .tuples import StreamTuple

__all__ = [
    "EngineAborted",
    "OperatorFailure",
    "StallDetected",
    "FailurePolicy",
    "FailFast",
    "Retry",
    "SkipTuple",
    "RestartFromCheckpoint",
    "SupervisionStats",
    "Supervisor",
    "Watchdog",
    "FaultInjector",
    "InjectedFault",
]


class EngineAborted(Exception):
    """Internal control-flow: the engine is stopping; unwind promptly.

    Raised inside runner/source threads when the stop event is set (e.g. a
    blocked queue put must abort).  Never handled by failure policies.
    """


class OperatorFailure(RuntimeError):
    """An operator exhausted its failure policy; the run must abort.

    Carries the operator name and the last underlying exception so nested
    supervisors (fused dispatch chains) re-raise instead of re-handling.
    """

    def __init__(self, op_name: str, cause: BaseException, detail: str = ""):
        msg = f"operator {op_name!r} failed: {cause!r}"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)
        self.op_name = op_name
        self.cause = cause


class StallDetected(RuntimeError):
    """The watchdog observed no engine progress for its stall window."""


class InjectedFault(RuntimeError):
    """The exception raised by :meth:`FaultInjector.crash` plans."""


# ---------------------------------------------------------------------------
# Failure policies
# ---------------------------------------------------------------------------


class FailurePolicy:
    """Base marker for per-operator failure policies."""


@dataclass
class FailFast(FailurePolicy):
    """Abort the run on the first exception (the engines' default)."""


@dataclass
class Retry(FailurePolicy):
    """Re-dispatch the failing tuple up to ``max_attempts`` extra times.

    ``backoff_s`` sleeps ``attempt * backoff_s`` before each retry (linear
    backoff).  Exhausting all attempts escalates to
    :class:`OperatorFailure`.
    """

    max_attempts: int = 3
    backoff_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")


@dataclass
class SkipTuple(FailurePolicy):
    """Drop the offending tuple and keep going.

    ``max_skips`` bounds the damage: exceeding it escalates.  Punctuation
    is never skipped (dropping an end-of-stream marker would deadlock
    shutdown); a punctuation failure gets one retry, then escalates.
    """

    max_skips: int | None = None

    def __post_init__(self) -> None:
        if self.max_skips is not None and self.max_skips < 1:
            raise ValueError("max_skips must be >= 1 or None")


@dataclass
class RestartFromCheckpoint(FailurePolicy):
    """Roll the operator back to its last state snapshot, then resume.

    Parameters
    ----------
    checkpoint_every:
        Snapshot the operator (``snapshot_state()``) every this many
        successfully processed tuples.
    store:
        Optional :class:`~repro.io.checkpoint.CheckpointStore` persisting
        eigensystem-shaped snapshots to disk; the in-memory copy is still
        the first restore source, the store covers cross-process resume.
    resume:
        ``"retry"`` re-dispatches the failing tuple once after the
        rollback; ``"skip"`` drops it.  Punctuation is always retried.
    max_restarts:
        Escalate after this many rollbacks (``None`` = unlimited).
    """

    checkpoint_every: int = 100
    store: object | None = None
    resume: str = "retry"
    max_restarts: int | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.resume not in ("retry", "skip"):
            raise ValueError(
                f"resume must be 'retry' or 'skip', got {self.resume!r}"
            )
        if self.max_restarts is not None and self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1 or None")


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


@dataclass
class SupervisionStats:
    """Structured failure/recovery counters (per operator name)."""

    failures: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    skipped_tuples: dict[str, int] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    recovery_time_s: dict[str, float] = field(default_factory=dict)

    def total_failures(self) -> int:
        return sum(self.failures.values())

    def total_recoveries(self) -> int:
        """Failures that did *not* abort the run."""
        return (
            sum(self.retries.values())
            + sum(self.skipped_tuples.values())
            + sum(self.restarts.values())
        )


class Supervisor:
    """Applies per-operator failure policies around engine dispatch.

    Parameters
    ----------
    default:
        Policy for operators not named in ``policies``.
    policies:
        Operator name → :class:`FailurePolicy`.

    Both engines call :meth:`dispatch` for every tuple delivery (queued
    and fused); a policy that swallows or repairs the failure lets the run
    continue, otherwise an :class:`OperatorFailure` aborts it.  Note that
    a retried data tuple increments the operator's ``tuples_in`` counter
    once per attempt.
    """

    def __init__(
        self,
        default: FailurePolicy | None = None,
        policies: Mapping[str, FailurePolicy] | None = None,
    ) -> None:
        self.default = default if default is not None else FailFast()
        self.policies = dict(policies or {})
        for name, pol in self.policies.items():
            if not isinstance(pol, FailurePolicy):
                raise TypeError(
                    f"policy for {name!r} is not a FailurePolicy: {pol!r}"
                )
        self.stats = SupervisionStats()
        #: Optional Telemetry; set via Telemetry.attach_supervisor so
        #: failures/recoveries also land in the structured event log.
        self.telemetry = None
        self._snapshots: dict[str, object] = {}
        self._successes: dict[str, int] = {}
        self._lock = threading.Lock()

    def _emit_event(self, event: str, op_name: str, **extra) -> None:
        tel = self.telemetry
        if tel is not None:
            tel.events.append({
                "ts": tel.now(), "kind": "supervision",
                "event": event, "op": op_name, **extra,
            })

    def policy_for(self, op: "Operator") -> FailurePolicy:
        return self.policies.get(op.name, self.default)

    # -- dispatch path ---------------------------------------------------

    def dispatch(self, op: "Operator", tup: "StreamTuple", port: int) -> None:
        """Deliver ``tup`` to ``op`` under the operator's policy."""
        policy = self.policy_for(op)
        if type(policy) is FailFast:
            op._dispatch(tup, port)
            return
        try:
            op._dispatch(tup, port)
        except (EngineAborted, OperatorFailure):
            raise
        except Exception as exc:
            self._recover(op, tup, port, policy, exc)
        else:
            self._note_success(op, policy)

    # -- recovery --------------------------------------------------------

    def _recover(
        self,
        op: "Operator",
        tup: "StreamTuple",
        port: int,
        policy: FailurePolicy,
        exc: Exception,
    ) -> None:
        name = op.name
        started = time.perf_counter()
        with self._lock:
            self.stats.failures[name] = self.stats.failures.get(name, 0) + 1
        self._emit_event(
            "failure", name,
            error=repr(exc), policy=type(policy).__name__,
        )
        try:
            if isinstance(policy, Retry):
                self._retry(op, tup, port, policy, exc)
            elif isinstance(policy, SkipTuple):
                self._skip(op, tup, port, policy, exc)
            elif isinstance(policy, RestartFromCheckpoint):
                self._restart(op, tup, port, policy, exc)
            else:  # pragma: no cover - unknown policy subclass
                raise OperatorFailure(name, exc, "unknown policy") from exc
        finally:
            with self._lock:
                self.stats.recovery_time_s[name] = (
                    self.stats.recovery_time_s.get(name, 0.0)
                    + (time.perf_counter() - started)
                )

    def _retry(self, op, tup, port, policy: Retry, exc: Exception) -> None:
        last = exc
        for attempt in range(1, policy.max_attempts + 1):
            if policy.backoff_s:
                time.sleep(policy.backoff_s * attempt)
            with self._lock:
                self.stats.retries[op.name] = (
                    self.stats.retries.get(op.name, 0) + 1
                )
            self._emit_event("retry", op.name, attempt=attempt)
            try:
                op._dispatch(tup, port)
            except (EngineAborted, OperatorFailure):
                raise
            except Exception as again:
                last = again
                continue
            self._note_success(op, policy)
            return
        raise OperatorFailure(
            op.name, last, f"retries exhausted ({policy.max_attempts})"
        ) from last

    def _skip(self, op, tup, port, policy: SkipTuple, exc: Exception) -> None:
        if tup.is_punctuation:
            # Dropping an end-of-stream marker would wedge shutdown:
            # give close() one more chance, then abort.
            try:
                op._dispatch(tup, port)
                return
            except (EngineAborted, OperatorFailure):
                raise
            except Exception as again:
                raise OperatorFailure(
                    op.name, again, "punctuation cannot be skipped"
                ) from again
        with self._lock:
            n = self.stats.skipped_tuples.get(op.name, 0) + 1
            self.stats.skipped_tuples[op.name] = n
        self._emit_event("skip", op.name, seq=tup.seq)
        if policy.max_skips is not None and n > policy.max_skips:
            raise OperatorFailure(
                op.name, exc, f"skip budget exhausted ({policy.max_skips})"
            ) from exc

    def _restart(
        self, op, tup, port, policy: RestartFromCheckpoint, exc: Exception
    ) -> None:
        name = op.name
        if not (hasattr(op, "snapshot_state") and hasattr(op, "restore_state")):
            raise OperatorFailure(
                name,
                exc,
                "RestartFromCheckpoint needs snapshot_state()/restore_state()",
            ) from exc
        with self._lock:
            n = self.stats.restarts.get(name, 0) + 1
            self.stats.restarts[name] = n
        self._emit_event("restart", name, restart_n=n)
        if policy.max_restarts is not None and n > policy.max_restarts:
            raise OperatorFailure(
                name, exc, f"restart budget exhausted ({policy.max_restarts})"
            ) from exc
        snap = self._snapshots.get(name)
        if snap is None and policy.store is not None:
            snap = policy.store.load_latest()
        if snap is not None:
            op.restore_state(snap)
        if tup.is_punctuation or policy.resume == "retry":
            try:
                op._dispatch(tup, port)
            except (EngineAborted, OperatorFailure):
                raise
            except Exception as again:
                raise OperatorFailure(
                    name, again, "failed again after checkpoint restart"
                ) from again
            self._note_success(op, policy)
        # resume == "skip": the offending tuple is dropped.

    def _note_success(
        self, op: "Operator", policy: FailurePolicy
    ) -> None:
        if not isinstance(policy, RestartFromCheckpoint):
            return
        if not hasattr(op, "snapshot_state"):
            return
        name = op.name
        count = self._successes.get(name, 0) + 1
        self._successes[name] = count
        if count % policy.checkpoint_every:
            return
        snap = op.snapshot_state()
        if snap is None:
            return
        self._snapshots[name] = snap
        if policy.store is not None and hasattr(snap, "n_seen"):
            policy.store.maybe_save(snap)


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------


class Watchdog:
    """Global progress monitor for stall/deadlock detection.

    The threaded engine pokes it on every successful queue put and every
    completed dispatch; the coordinator polls :meth:`stalled_for`.  A
    full-queue backpressure cycle (every producer blocked on a full
    downstream queue) makes all progress stop at once, which this detects
    within ``stall_timeout_s`` — far sooner than the run timeout.

    ``stall_timeout_s`` must exceed the slowest single-tuple processing
    time and any intentional idle gap of the sources, otherwise a healthy
    run is misreported as stalled.
    """

    def __init__(self, stall_timeout_s: float) -> None:
        if stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be positive, got {stall_timeout_s}"
            )
        self.stall_timeout_s = float(stall_timeout_s)
        self._last = time.monotonic()

    def poke(self) -> None:
        """Record that the engine made progress."""
        self._last = time.monotonic()

    def stalled_for(self) -> float | None:
        """Seconds since last progress if over the window, else ``None``."""
        idle = time.monotonic() - self._last
        return idle if idle > self.stall_timeout_s else None


# ---------------------------------------------------------------------------
# Fault injection (test harness)
# ---------------------------------------------------------------------------


@dataclass
class _FaultPlan:
    kind: str  # "crash" | "delay" | "drop"
    at_tuple: int
    repeat: int = 1
    seconds: float = 0.0
    exc: Exception | None = None
    fired: int = 0


class FaultInjector:
    """Inject crashes, delays, and drops into named operators.

    Plans are keyed by operator name and tuple count (the N-th ``process``
    call on that operator, data and control tuples alike, 1-based).
    :meth:`install` wraps each targeted operator's ``process`` so the
    faults fire under either engine; injected crashes flow through the
    active :class:`Supervisor` policy exactly like real failures.

    Example
    -------
    ::

        inj = (FaultInjector()
               .crash("pca-1", at_tuple=500)
               .delay("sink", at_tuple=10, seconds=0.05)
               .drop("split", at_tuple=3))
        inj.install(app.graph)
    """

    def __init__(self) -> None:
        self._plans: dict[str, list[_FaultPlan]] = {}
        #: Chronological record of fired faults: (op, kind, tuple_count).
        self.log: list[tuple[str, str, int]] = []

    # -- plan builders ---------------------------------------------------

    def crash(
        self,
        op_name: str,
        *,
        at_tuple: int,
        repeat: int = 1,
        exc: Exception | None = None,
    ) -> "FaultInjector":
        """Raise on tuples ``[at_tuple, at_tuple + repeat)``."""
        self._add(_FaultPlan("crash", at_tuple, repeat=repeat, exc=exc), op_name)
        return self

    def delay(
        self, op_name: str, *, at_tuple: int, seconds: float, repeat: int = 1
    ) -> "FaultInjector":
        """Sleep ``seconds`` before processing the targeted tuples."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._add(
            _FaultPlan("delay", at_tuple, repeat=repeat, seconds=seconds),
            op_name,
        )
        return self

    def drop(
        self, op_name: str, *, at_tuple: int, repeat: int = 1
    ) -> "FaultInjector":
        """Silently swallow the targeted tuples before processing."""
        self._add(_FaultPlan("drop", at_tuple, repeat=repeat), op_name)
        return self

    def _add(self, plan: _FaultPlan, op_name: str) -> None:
        if plan.at_tuple < 1:
            raise ValueError("at_tuple is 1-based and must be >= 1")
        if plan.repeat < 1:
            raise ValueError("repeat must be >= 1")
        self._plans.setdefault(op_name, []).append(plan)

    # -- installation ----------------------------------------------------

    def install(self, graph) -> "FaultInjector":
        """Wrap the targeted operators of ``graph``; returns self."""
        targeted = set(self._plans)
        found = set()
        for op in graph:
            plans = self._plans.get(op.name)
            if plans:
                found.add(op.name)
                self._wrap(op, plans)
        missing = targeted - found
        if missing:
            raise ValueError(
                f"fault plans target unknown operators: {sorted(missing)}"
            )
        return self

    def _wrap(self, op, plans: list[_FaultPlan]) -> None:
        orig = op.process
        counter = {"n": 0}

        def process(tup, port, _orig=orig, _plans=plans, _ctr=counter):
            _ctr["n"] += 1
            n = _ctr["n"]
            for plan in _plans:
                if plan.fired >= plan.repeat or n < plan.at_tuple:
                    continue
                plan.fired += 1
                self.log.append((op.name, plan.kind, n))
                if plan.kind == "crash":
                    raise plan.exc or InjectedFault(
                        f"injected crash in {op.name!r} at tuple {n}"
                    )
                if plan.kind == "delay":
                    time.sleep(plan.seconds)
                elif plan.kind == "drop":
                    return
            return _orig(tup, port)

        op.process = process
