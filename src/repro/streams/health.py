"""Model-health monitoring: is the *model* still good, not just the runtime?

The telemetry layer (PR 2) answers "is the pipeline moving" — queue
depths, dispatch latency, failure counters.  This module answers the
question an operator of a survey pipeline actually cares about: **is the
tracked subspace still the right one?**  Following the quality criteria
of the eigenspectra-stability literature (PAPERS.md: "Reliable
Eigenspectra for New Generation Surveys"; Cardot–Degras on
accuracy-vs-throughput), a :class:`HealthMonitor` rides along each
:class:`~repro.parallel.pca_operator.StreamingPCAOperator` and tracks:

* **subspace affinity vs an anchor basis** — ``cos`` of the largest
  principal angle between the current basis and the basis captured at
  the first health check (re-anchored on re-seed).  Slow drift is
  expected under forgetting; a collapse says the model lost the signal.
* **eigenspectrum top-k drift** — the largest relative change of the
  leading eigenvalues between consecutive checks; a spectrum that jumps
  around has not converged (or the stream regime changed).
* **reconstruction-error EWMA control chart** — an exponentially
  weighted mean/variance of the per-window mean residual ``r²`` with
  *warn* and *page* bands at ``±kσ``; sustained excursions above the
  band mean the basis no longer explains the stream.
* **gap-rate and outlier-downweight fractions** — how much of the input
  is missing or being robustly down-weighted; a pipeline quietly
  rejecting half its input is degraded even when throughput looks fine.

Checks run every ``check_every`` consumed rows (a handful of small SVDs
per check, amortized to ~nothing on the hot path) and emit structured
``health`` events into the existing :class:`~repro.streams.telemetry.EventLog`
schema plus ``repro_health_*`` gauges.

On top of the monitors sits a declarative rule layer:
:class:`HealthRule` thresholds evaluated by a :class:`HealthRuleEngine`
over a combined snapshot (model monitors + sync-controller membership +
sink watermark lags) into an overall **OK / DEGRADED / CRITICAL**
verdict with the firing rules named.  The
:class:`~repro.streams.obs_server.ObservabilityServer` serves the
verdict live at ``/health``; a :class:`HealthSampler` thread records it
periodically as ``health_verdict`` events for post-mortems
(``python -m repro health <log.jsonl>``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "OK",
    "DEGRADED",
    "CRITICAL",
    "HealthMonitor",
    "HealthRule",
    "HealthVerdict",
    "HealthRuleEngine",
    "HealthSampler",
    "default_rules",
]

#: Verdict levels, ordered by severity; the gauge value is the index.
OK, DEGRADED, CRITICAL = "OK", "DEGRADED", "CRITICAL"
_LEVELS = {OK: 0, DEGRADED: 1, CRITICAL: 2}


def _affinity(a: np.ndarray, b: np.ndarray) -> float:
    """``cos`` of the largest principal angle (1.0 = identical span)."""
    from ..core.metrics import largest_principal_angle

    k = min(a.shape[1], b.shape[1])
    if k == 0:
        return 1.0
    return float(np.cos(largest_principal_angle(a[:, :k], b[:, :k])))


class HealthMonitor:
    """Rolling model-health state of one streaming-PCA engine.

    The operator feeds it two cheap calls per consumed tuple/block —
    :meth:`note_rows` (accumulate window counters) and
    :meth:`maybe_check` (run the actual check once per ``check_every``
    rows) — plus :meth:`on_merge` at every sync merge.  All numerical
    work happens inside the periodic check.

    Parameters
    ----------
    engine_id:
        The engine this monitor watches (labels events and gauges).
    check_every:
        Rows between health checks.
    top_k:
        Leading eigenvalues tracked for spectrum drift.
    ewma_alpha:
        Smoothing factor of the r² control chart (higher = faster).
    warn_sigma / page_sigma:
        Control-band widths; the window mean crossing
        ``ewma + kσ`` sets the chart status to ``warn`` / ``page``.
    baseline_checks:
        Checks consumed before the control bands arm (the chart needs a
        baseline before an excursion is meaningful).
    """

    def __init__(
        self,
        engine_id: int,
        *,
        check_every: int = 256,
        top_k: int = 3,
        ewma_alpha: float = 0.1,
        warn_sigma: float = 3.0,
        page_sigma: float = 6.0,
        baseline_checks: int = 3,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if page_sigma < warn_sigma:
            raise ValueError("page_sigma must be >= warn_sigma")
        self.engine_id = int(engine_id)
        self.check_every = int(check_every)
        self.top_k = int(top_k)
        self.ewma_alpha = float(ewma_alpha)
        self.warn_sigma = float(warn_sigma)
        self.page_sigma = float(page_sigma)
        self.baseline_checks = int(baseline_checks)
        self._telemetry = None
        # window accumulators (since the last check)
        self._w_rows = 0
        self._w_gap_rows = 0
        self._w_outliers = 0
        self._w_weight_sum = 0.0
        self._w_r2_sum = 0.0
        self._rows_since_check = 0
        # lifetime totals
        self.n_rows = 0
        self.n_checks = 0
        self.n_merges = 0
        self.n_reseeds = 0
        # anchor / previous-check state
        self._anchor_basis: np.ndarray | None = None
        self._prev_eigs: np.ndarray | None = None
        # r² control chart
        self._r2_ewma: float | None = None
        self._r2_var: float = 0.0
        # last computed values (the snapshot the rule engine reads)
        self.affinity: float | None = None
        self.eig_drift: float | None = None
        self.gap_rate: float | None = None
        self.outlier_rate: float | None = None
        self.mean_weight: float | None = None
        self.r2_window_mean: float | None = None
        self.chart_status: str = "ok"  # "ok" | "warn" | "page"
        self.last_merge_affinity: float | None = None
        self._lock = threading.Lock()

    # -- telemetry wiring ------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Register the per-engine health gauges (idempotent)."""
        self._telemetry = telemetry
        if telemetry is None or not telemetry.config.metrics:
            return
        eid = str(self.engine_id)
        m = telemetry.metrics
        m.gauge("repro_health_affinity",
                lambda: self.affinity if self.affinity is not None else 1.0,
                engine=eid)
        m.gauge("repro_health_eig_drift",
                lambda: self.eig_drift if self.eig_drift is not None else 0.0,
                engine=eid)
        m.gauge("repro_health_gap_rate",
                lambda: self.gap_rate if self.gap_rate is not None else 0.0,
                engine=eid)
        m.gauge("repro_health_outlier_rate",
                lambda: (self.outlier_rate
                         if self.outlier_rate is not None else 0.0),
                engine=eid)
        m.gauge("repro_health_r2_ewma",
                lambda: self._r2_ewma if self._r2_ewma is not None else 0.0,
                engine=eid)

    # -- per-tuple accumulation (cheap) ----------------------------------

    def note_rows(
        self,
        n_rows: int,
        *,
        n_gap_rows: int = 0,
        n_outliers: int = 0,
        weight_sum: float = 0.0,
        r2_sum: float = 0.0,
    ) -> None:
        """Accumulate one tuple/block's worth of window counters."""
        self._w_rows += n_rows
        self._w_gap_rows += n_gap_rows
        self._w_outliers += n_outliers
        self._w_weight_sum += weight_sum
        self._w_r2_sum += r2_sum
        self._rows_since_check += n_rows
        self.n_rows += n_rows

    def maybe_check(self, estimator) -> bool:
        """Run a health check if the window filled; returns whether it ran."""
        if self._rows_since_check < self.check_every:
            return False
        if not getattr(estimator, "is_initialized", False):
            return False
        self._check(estimator)
        return True

    # -- the periodic check ----------------------------------------------

    def _check(self, estimator) -> None:
        with self._lock:
            state = estimator.state
            basis = np.asarray(state.basis)
            eigs = np.asarray(state.eigenvalues, dtype=float)[: self.top_k]

            if self._anchor_basis is None:
                self._anchor_basis = basis.copy()
            self.affinity = _affinity(basis, self._anchor_basis)

            if self._prev_eigs is not None and self._prev_eigs.size:
                k = min(eigs.size, self._prev_eigs.size)
                prev = self._prev_eigs[:k]
                denom = np.maximum(np.abs(prev), 1e-12)
                self.eig_drift = float(
                    np.max(np.abs(eigs[:k] - prev) / denom)
                ) if k else 0.0
            else:
                self.eig_drift = 0.0
            self._prev_eigs = eigs.copy()

            rows = max(self._w_rows, 1)
            # Gap/outlier/weight fractions are only meaningful when the
            # diagnostics were fed; rows with no weight data keep None.
            self.gap_rate = self._w_gap_rows / rows
            self.outlier_rate = self._w_outliers / rows
            self.mean_weight = (
                self._w_weight_sum / rows if self._w_weight_sum else None
            )
            x = self._w_r2_sum / rows
            self.r2_window_mean = x

            # EWMA control chart on the window mean (Shewhart-style
            # bands over the smoothed statistic).
            a = self.ewma_alpha
            if self._r2_ewma is None:
                self._r2_ewma = x
                self._r2_var = 0.0
                self.chart_status = "ok"
            else:
                mean, var = self._r2_ewma, self._r2_var
                sd = var ** 0.5
                if self.n_checks >= self.baseline_checks and sd > 0.0:
                    if x > mean + self.page_sigma * sd:
                        self.chart_status = "page"
                    elif x > mean + self.warn_sigma * sd:
                        self.chart_status = "warn"
                    else:
                        self.chart_status = "ok"
                else:
                    self.chart_status = "ok"
                # Update the chart *after* judging the new point against
                # the previous baseline (standard control-chart order);
                # excursions are not folded into the baseline when they
                # fire, so a sustained shift keeps paging.
                if self.chart_status == "ok":
                    delta = x - mean
                    self._r2_ewma = mean + a * delta
                    self._r2_var = (1.0 - a) * (var + a * delta * delta)

            self.n_checks += 1
            self._w_rows = 0
            self._w_gap_rows = 0
            self._w_outliers = 0
            self._w_weight_sum = 0.0
            self._w_r2_sum = 0.0
            self._rows_since_check = 0
            event = self._event_locked()
        tel = self._telemetry
        if tel is not None:
            tel.events.append({"ts": tel.now(), **event})

    def on_merge(self, estimator, *, reseed: bool = False) -> None:
        """Record a sync merge (and re-anchor on re-seed).

        The pre/post-merge affinity measures how much the merge rotated
        the local basis — large rotations late in a run mean the engines
        disagree, which is itself a health signal.
        """
        if not getattr(estimator, "is_initialized", False):
            return
        with self._lock:
            basis = np.asarray(estimator.state.basis)
            if reseed:
                # A re-seeded engine adopted the ensemble view: the old
                # anchor no longer describes its lineage.
                self._anchor_basis = basis.copy()
                self.n_reseeds += 1
            if self._anchor_basis is not None:
                self.last_merge_affinity = _affinity(
                    basis, self._anchor_basis
                )
            self.n_merges += 1
            event = {
                "kind": "health",
                "engine": self.engine_id,
                "event": "merge",
                "reseed": bool(reseed),
                "affinity": self.last_merge_affinity,
                "n_merges": self.n_merges,
            }
        tel = self._telemetry
        if tel is not None:
            tel.events.append({"ts": tel.now(), **event})

    # -- snapshots --------------------------------------------------------

    def _event_locked(self) -> dict[str, Any]:
        sd = self._r2_var ** 0.5
        mean = self._r2_ewma if self._r2_ewma is not None else 0.0
        return {
            "kind": "health",
            "engine": self.engine_id,
            "event": "check",
            "n_rows": self.n_rows,
            "affinity": self.affinity,
            "eig_drift": self.eig_drift,
            "gap_rate": self.gap_rate,
            "outlier_rate": self.outlier_rate,
            "mean_weight": self.mean_weight,
            "r2_window_mean": self.r2_window_mean,
            "r2_ewma": mean,
            "r2_band_warn": mean + self.warn_sigma * sd,
            "r2_band_page": mean + self.page_sigma * sd,
            "chart_status": self.chart_status,
        }

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time view for the rule engine / ``/health/model``."""
        with self._lock:
            snap = self._event_locked()
        snap.pop("kind")
        snap.pop("event")
        snap.update(
            n_checks=self.n_checks,
            n_merges=self.n_merges,
            n_reseeds=self.n_reseeds,
            last_merge_affinity=self.last_merge_affinity,
        )
        return snap


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HealthRule:
    """One declarative health threshold.

    ``predicate(snapshot) -> value | None`` returns the offending value
    when firing (``None`` = healthy); ``severity`` maps to the verdict:
    ``"warn"`` → DEGRADED, ``"critical"`` → CRITICAL.
    """

    name: str
    severity: str  # "warn" | "critical"
    predicate: Callable[[Mapping[str, Any]], Any]
    description: str = ""

    def __post_init__(self) -> None:
        if self.severity not in ("warn", "critical"):
            raise ValueError(
                f"severity must be 'warn' or 'critical', got {self.severity!r}"
            )


def default_rules(
    *,
    min_affinity: float = 0.70,
    max_watermark_lag_s: float = 60.0,
    max_gap_rate: float = 0.5,
) -> list[HealthRule]:
    """The built-in rule set (thresholds overridable per deployment)."""

    def dead_peers(s: Mapping[str, Any]):
        n = s.get("peers_dead")
        return n if n else None

    def quorum_lost(s: Mapping[str, Any]):
        quorum, live = s.get("quorum"), s.get("peers_live")
        if quorum is None or live is None:
            return None
        # Only meaningful once membership has tracked anyone at all.
        if not s.get("peers_tracked"):
            return None
        return live if live < quorum else None

    def affinity_low(s: Mapping[str, Any]):
        worst = s.get("min_affinity")
        return worst if worst is not None and worst < min_affinity else None

    def r2_warn(s: Mapping[str, Any]):
        return "warn" if s.get("worst_chart_status") == "warn" else None

    def r2_page(s: Mapping[str, Any]):
        return "page" if s.get("worst_chart_status") == "page" else None

    def wm_lag(s: Mapping[str, Any]):
        lag = s.get("max_watermark_lag_s")
        return lag if lag is not None and lag > max_watermark_lag_s else None

    def gaps(s: Mapping[str, Any]):
        rate = s.get("max_gap_rate")
        return rate if rate is not None and rate > max_gap_rate else None

    return [
        HealthRule("peer-evicted", "warn", dead_peers,
                   "a tracked sync peer is evicted (engine down?)"),
        HealthRule("quorum-lost", "critical", quorum_lost,
                   "fewer live peers than the merge quorum"),
        HealthRule("subspace-affinity-low", "warn", affinity_low,
                   f"subspace affinity vs anchor below {min_affinity}"),
        HealthRule("r2-above-warn-band", "warn", r2_warn,
                   "reconstruction error above the EWMA warn band"),
        HealthRule("r2-above-page-band", "critical", r2_page,
                   "reconstruction error above the EWMA page band"),
        HealthRule("watermark-lag-high", "warn", wm_lag,
                   f"sink watermark lag above {max_watermark_lag_s}s"),
        HealthRule("gap-rate-high", "warn", gaps,
                   f"input gap rate above {max_gap_rate}"),
    ]


@dataclass
class HealthVerdict:
    """One evaluated verdict: the overall status plus the firing rules."""

    status: str
    firing: list[dict[str, Any]] = field(default_factory=list)
    snapshot: dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "firing": list(self.firing),
            "snapshot": dict(self.snapshot),
            "ts": self.ts,
        }


class HealthRuleEngine:
    """Evaluate :class:`HealthRule` thresholds over the live pipeline.

    Aggregates three snapshot sources — the model monitors, the sync
    controller's membership table, and the sink watermark-lag gauges —
    into one flat dict the rules read.  Evaluation is cheap (a metrics
    collection plus a few comparisons) and thread-safe, so the
    observability server runs it per ``/health`` request and the
    :class:`HealthSampler` per tick.
    """

    def __init__(
        self,
        telemetry=None,
        *,
        monitors: Iterable[HealthMonitor] = (),
        controller=None,
        rules: Iterable[HealthRule] | None = None,
    ) -> None:
        self.telemetry = telemetry
        self.monitors = list(monitors)
        self.controller = controller
        self.rules = list(rules) if rules is not None else default_rules()
        self.last_verdict: HealthVerdict | None = None
        if telemetry is not None and telemetry.config.metrics:
            telemetry.metrics.gauge(
                "repro_health_status",
                lambda: float(
                    _LEVELS.get(
                        self.last_verdict.status
                        if self.last_verdict is not None else OK,
                        0,
                    )
                ),
            )

    # -- snapshot aggregation --------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {}
        if self.monitors:
            per_engine = [m.snapshot() for m in self.monitors]
            snap["engines"] = {
                m.engine_id: s for m, s in zip(self.monitors, per_engine)
            }
            affinities = [
                s["affinity"] for s in per_engine
                if s.get("affinity") is not None
            ]
            if affinities:
                snap["min_affinity"] = min(affinities)
            gap_rates = [
                s["gap_rate"] for s in per_engine
                if s.get("gap_rate") is not None
            ]
            if gap_rates:
                snap["max_gap_rate"] = max(gap_rates)
            order = {"ok": 0, "warn": 1, "page": 2}
            snap["worst_chart_status"] = max(
                (s.get("chart_status", "ok") for s in per_engine),
                key=lambda st: order.get(st, 0),
                default="ok",
            )
        ctrl = self.controller
        if ctrl is not None:
            peers = getattr(ctrl, "peers", None) or {}
            tracked = list(peers.values())
            live = [p for p in tracked if getattr(p, "alive", True)]
            snap["peers_tracked"] = len(tracked)
            snap["peers_live"] = len(live)
            snap["peers_dead"] = len(tracked) - len(live)
            snap["dead_engines"] = sorted(
                p.engine for p in tracked if not getattr(p, "alive", True)
            )
            snap["quorum"] = getattr(ctrl, "quorum", None)
            stats = getattr(ctrl, "stats", None)
            if stats is not None:
                snap["n_evictions"] = getattr(stats, "n_evictions", 0)
                snap["n_rejoins"] = getattr(stats, "n_rejoins", 0)
        tel = self.telemetry
        if tel is not None and tel.config.metrics:
            lags = {}
            for metric in tel.metrics.collect():
                name = getattr(metric, "name", None)
                if name == "repro_watermark_lag_seconds":
                    labels = getattr(metric, "labels", {}) or {}
                    lags[labels.get("sink", "?")] = float(metric.value)
            if lags:
                snap["watermark_lag_s"] = lags
                snap["max_watermark_lag_s"] = max(lags.values())
        return snap

    # -- evaluation -------------------------------------------------------

    def evaluate(self) -> HealthVerdict:
        snap = self.snapshot()
        firing: list[dict[str, Any]] = []
        status = OK
        for rule in self.rules:
            try:
                value = rule.predicate(snap)
            except Exception as exc:  # a broken rule must not kill /health
                firing.append({
                    "rule": rule.name, "severity": "warn",
                    "value": f"rule error: {exc}",
                })
                if status == OK:
                    status = DEGRADED
                continue
            if value is None:
                continue
            severity = rule.severity
            firing.append({
                "rule": rule.name,
                "severity": severity,
                "value": value if isinstance(value, (int, float, str))
                else str(value),
                "description": rule.description,
            })
            if severity == "critical":
                status = CRITICAL
            elif status == OK:
                status = DEGRADED
        ts = (
            self.telemetry.now() if self.telemetry is not None
            else time.time()
        )
        verdict = HealthVerdict(
            status=status, firing=firing, snapshot=snap, ts=ts
        )
        self.last_verdict = verdict
        return verdict


class HealthSampler(threading.Thread):
    """Background thread recording periodic ``health_verdict`` events.

    The live endpoint evaluates on demand; this thread gives post-mortem
    logs the same verdicts over time (``python -m repro health`` renders
    the status timeline from them).
    """

    def __init__(
        self,
        engine: HealthRuleEngine,
        *,
        interval_s: float = 0.25,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        super().__init__(name="health-sampler", daemon=True)
        self.engine = engine
        self.interval_s = interval_s
        self.n_samples = 0
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            self.sample()
        self.sample()  # final verdict at shutdown

    def sample(self) -> None:
        verdict = self.engine.evaluate()
        tel = self.engine.telemetry
        if tel is not None:
            tel.events.append({
                "ts": tel.now(),
                "kind": "health_verdict",
                "status": verdict.status,
                "firing": verdict.firing,
            })
        self.n_samples += 1
