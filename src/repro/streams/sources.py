"""Stream sources (Section III-A.1).

"InfoSphere application is flexible in using the different sources of
data": generated test data, CSV files, folders of files, piped streams,
sockets.  We mirror the useful subset for an offline reproduction:

* :class:`VectorSource` — observations from any in-memory stream
  (:class:`~repro.data.streams.VectorStream`), the workhorse.
* :class:`GuardedVectorSource` — the same, with the ingress guards
  (poison-tuple quarantine, load-shedding valve) fused into the emit
  loop so readiness-for-chaos costs no extra dispatch stages.
* :class:`CSVFileSource` — a CSV file (or list of files) of flux vectors.
* :class:`DirectorySource` — every ``*.csv`` in a folder, sorted.
* :class:`CallbackSource` — pull tuples from a user callable (the
  "side service" / custom-operator escape hatch).

All sources emit data tuples with fields ``x`` (the vector) and ``seq``
(the arrival index), the schema the PCA application expects.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Iterator

import numpy as np

from ..data.streams import VectorStream
from ..io.csvio import read_vectors_csv
from .operators import Source
from .resilience import (
    DeadLetterQueue,
    LoadShedValve,
    default_validator,
)
from .tuples import FieldType, StreamSchema, StreamTuple, register_schema

__all__ = [
    "OBSERVATION_SCHEMA",
    "VectorSource",
    "GuardedVectorSource",
    "CSVFileSource",
    "DirectorySource",
    "CallbackSource",
]

#: The observation stream schema: a flux/feature vector plus arrival index.
#: Registered so observation tuples round-trip across process boundaries.
OBSERVATION_SCHEMA = register_schema(
    "observation",
    StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT}),
)


def _observation(x: np.ndarray, seq: int) -> StreamTuple:
    return StreamTuple.data(
        OBSERVATION_SCHEMA, x=np.asarray(x, dtype=np.float64), seq=seq
    )


class VectorSource(Source):
    """Emit observation tuples from a :class:`VectorStream`."""

    def __init__(self, name: str, stream: VectorStream) -> None:
        super().__init__(name)
        self._stream = stream

    @property
    def dim(self) -> int:
        """Vector dimensionality of the stream."""
        return self._stream.dim

    def generate(self) -> Iterator[StreamTuple]:
        for seq, x in enumerate(self._stream):
            yield _observation(x, seq)


class GuardedVectorSource(VectorSource):
    """A :class:`VectorSource` with the ingress guards fused in.

    Functionally equivalent to wiring ``VectorSource →
    QuarantineOperator → CircuitBreaker``, but the validation and the
    shed valve run inline in the emit loop instead of as graph stages.
    The operator form costs a dispatch hop per stage per tuple — on the
    threaded runtime a dedicated PE thread plus a queue transfer each,
    ~8-10 % of fault-free wall time at d=512 — while the guard work
    itself is under a microsecond per row, so fusing it into the source
    makes readiness-for-chaos essentially free on every runtime
    (``benchmarks/bench_chaos_overhead.py`` gates this at ≥ 0.95).

    Counters mirror the operator forms — ``n_quarantined`` when
    quarantine is armed, ``n_shed`` / ``n_trips`` / ``state`` when the
    valve is — and only exist when the matching guard is armed, so the
    telemetry collector exports exactly the armed guards' metrics.

    Parameters mirror :class:`~repro.streams.resilience.QuarantineOperator`
    and :class:`~repro.streams.resilience.CircuitBreaker`; ``quarantine``
    and ``max_rate_hz`` arm the two guards independently.
    """

    def __init__(
        self,
        name: str,
        stream: VectorStream,
        *,
        quarantine: bool = True,
        dlq: DeadLetterQueue | None = None,
        expected_dim: int | None = None,
        validator: Callable[[StreamTuple, int | None], str | None]
        | None = None,
        max_rate_hz: float | None = None,
        burst_s: float = 1.0,
        open_for_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(name, stream)
        self.expected_dim = expected_dim
        self.validator = validator or default_validator
        self.dlq: DeadLetterQueue | None = None
        self._n_quarantined = 0
        if quarantine or dlq is not None:
            self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self._valve: LoadShedValve | None = None
        if max_rate_hz is not None:
            self._valve = LoadShedValve(
                max_rate_hz, burst_s=burst_s, open_for_s=open_for_s,
                clock=clock,
            )
            self._valve._origin = name

    def bind_telemetry(self, telemetry) -> None:
        if self.dlq is not None:
            self.dlq.bind_telemetry(telemetry)
        if self._valve is not None:
            self._valve.bind_telemetry(telemetry, origin=self.name)

    # The guard counters surface only when the matching guard is armed:
    # ``getattr(op, "n_shed", None)`` in the telemetry collector must
    # stay ``None`` for a quarantine-only source.

    @property
    def n_quarantined(self) -> int:
        if self.dlq is None:
            raise AttributeError("quarantine is not armed")
        return self._n_quarantined

    @property
    def n_shed(self) -> int:
        if self._valve is None:
            raise AttributeError("no shed valve armed")
        return self._valve.n_shed

    @property
    def n_trips(self) -> int:
        if self._valve is None:
            raise AttributeError("no shed valve armed")
        return self._valve.n_trips

    @property
    def state(self) -> str:
        if self._valve is None:
            raise AttributeError("no shed valve armed")
        return self._valve.state

    def generate(self) -> Iterator[StreamTuple]:
        dlq = self.dlq
        validator = self.validator
        dim = self.expected_dim
        valve = self._valve
        for tup in super().generate():
            if tup.is_control:
                yield tup
                continue
            if dlq is not None:
                reason = validator(tup, dim)
                if reason is not None:
                    self._n_quarantined += 1
                    dlq.quarantine(
                        self.name,
                        reason,
                        payload=dict(tup.payload),
                        seq=tup.get("seq"),
                    )
                    continue
            if valve is not None and not valve.admit():
                continue
            yield tup


class CSVFileSource(Source):
    """Emit observation tuples from one or more CSV files.

    Each row of each file is one observation vector; empty cells and the
    sentinel ``nan`` become gaps (NaN).
    """

    def __init__(
        self, name: str, paths: str | pathlib.Path | list
    ) -> None:
        super().__init__(name)
        if isinstance(paths, (str, pathlib.Path)):
            paths = [paths]
        self.paths = [pathlib.Path(p) for p in paths]
        for p in self.paths:
            if not p.exists():
                raise FileNotFoundError(p)

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        for path in self.paths:
            for x in read_vectors_csv(path):
                yield _observation(x, seq)
                seq += 1


class DirectorySource(CSVFileSource):
    """Emit observations from every ``*.csv`` in a directory (sorted) —
    the "folder of such files can feed the data" mode."""

    def __init__(self, name: str, directory: str | pathlib.Path) -> None:
        directory = pathlib.Path(directory)
        if not directory.is_dir():
            raise NotADirectoryError(directory)
        files = sorted(directory.glob("*.csv"))
        if not files:
            raise FileNotFoundError(f"no *.csv files in {directory}")
        super().__init__(name, files)


class CallbackSource(Source):
    """Pull vectors from ``next_vector()`` until it returns ``None``.

    The adapter for live feeds (piped streams, sockets, database cursors):
    anything that can be phrased as a blocking "give me the next vector"
    callable.
    """

    def __init__(
        self,
        name: str,
        next_vector: Callable[[], np.ndarray | None],
        *,
        max_tuples: int | None = None,
    ) -> None:
        super().__init__(name)
        self._next = next_vector
        if max_tuples is not None and max_tuples < 0:
            raise ValueError("max_tuples must be >= 0")
        self._max = max_tuples

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        while self._max is None or seq < self._max:
            x = self._next()
            if x is None:
                return
            yield _observation(np.asarray(x, dtype=np.float64), seq)
            seq += 1
