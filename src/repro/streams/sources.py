"""Stream sources (Section III-A.1).

"InfoSphere application is flexible in using the different sources of
data": generated test data, CSV files, folders of files, piped streams,
sockets.  We mirror the useful subset for an offline reproduction:

* :class:`VectorSource` — observations from any in-memory stream
  (:class:`~repro.data.streams.VectorStream`), the workhorse.
* :class:`CSVFileSource` — a CSV file (or list of files) of flux vectors.
* :class:`DirectorySource` — every ``*.csv`` in a folder, sorted.
* :class:`CallbackSource` — pull tuples from a user callable (the
  "side service" / custom-operator escape hatch).

All sources emit data tuples with fields ``x`` (the vector) and ``seq``
(the arrival index), the schema the PCA application expects.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Iterator

import numpy as np

from ..data.streams import VectorStream
from ..io.csvio import read_vectors_csv
from .operators import Source
from .tuples import FieldType, StreamSchema, StreamTuple, register_schema

__all__ = [
    "OBSERVATION_SCHEMA",
    "VectorSource",
    "CSVFileSource",
    "DirectorySource",
    "CallbackSource",
]

#: The observation stream schema: a flux/feature vector plus arrival index.
#: Registered so observation tuples round-trip across process boundaries.
OBSERVATION_SCHEMA = register_schema(
    "observation",
    StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT}),
)


def _observation(x: np.ndarray, seq: int) -> StreamTuple:
    return StreamTuple.data(
        OBSERVATION_SCHEMA, x=np.asarray(x, dtype=np.float64), seq=seq
    )


class VectorSource(Source):
    """Emit observation tuples from a :class:`VectorStream`."""

    def __init__(self, name: str, stream: VectorStream) -> None:
        super().__init__(name)
        self._stream = stream

    @property
    def dim(self) -> int:
        """Vector dimensionality of the stream."""
        return self._stream.dim

    def generate(self) -> Iterator[StreamTuple]:
        for seq, x in enumerate(self._stream):
            yield _observation(x, seq)


class CSVFileSource(Source):
    """Emit observation tuples from one or more CSV files.

    Each row of each file is one observation vector; empty cells and the
    sentinel ``nan`` become gaps (NaN).
    """

    def __init__(
        self, name: str, paths: str | pathlib.Path | list
    ) -> None:
        super().__init__(name)
        if isinstance(paths, (str, pathlib.Path)):
            paths = [paths]
        self.paths = [pathlib.Path(p) for p in paths]
        for p in self.paths:
            if not p.exists():
                raise FileNotFoundError(p)

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        for path in self.paths:
            for x in read_vectors_csv(path):
                yield _observation(x, seq)
                seq += 1


class DirectorySource(CSVFileSource):
    """Emit observations from every ``*.csv`` in a directory (sorted) —
    the "folder of such files can feed the data" mode."""

    def __init__(self, name: str, directory: str | pathlib.Path) -> None:
        directory = pathlib.Path(directory)
        if not directory.is_dir():
            raise NotADirectoryError(directory)
        files = sorted(directory.glob("*.csv"))
        if not files:
            raise FileNotFoundError(f"no *.csv files in {directory}")
        super().__init__(name, files)


class CallbackSource(Source):
    """Pull vectors from ``next_vector()`` until it returns ``None``.

    The adapter for live feeds (piped streams, sockets, database cursors):
    anything that can be phrased as a blocking "give me the next vector"
    callable.
    """

    def __init__(
        self,
        name: str,
        next_vector: Callable[[], np.ndarray | None],
        *,
        max_tuples: int | None = None,
    ) -> None:
        super().__init__(name)
        self._next = next_vector
        if max_tuples is not None and max_tuples < 0:
            raise ValueError("max_tuples must be >= 0")
        self._max = max_tuples

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        while self._max is None or seq < self._max:
            x = self._next()
            if x is None:
                return
            yield _observation(np.asarray(x, dtype=np.float64), seq)
            seq += 1
