"""Live stream sources: TCP sockets and growing ("piped") files.

Section III-A.1 lists InfoSphere's out-of-the-box inputs beyond files:
"Side service can feed the data using piped stream file, and InfoSphere
will lock on the stream end until a new data is streamed through.
Network TCP sockets and http URLs are also supported out of the box as a
source of data."  The two live variants we rebuild:

* :class:`TCPVectorSource` — connects to ``host:port`` and reads
  newline-delimited CSV vectors until the peer closes the connection.
  (:func:`serve_vectors` is the matching test/demo-side feeder.)
* :class:`TailingFileSource` — follows a file that another process keeps
  appending to, blocking at EOF ("lock on the stream end") until new
  lines arrive or a terminator line / idle timeout ends the stream.

Both emit the standard observation tuples (``x``, ``seq``).

Robustness (heavy-traffic reality):

* **Reconnect with backoff** — the network sources survive a peer reset
  mid-stream: they reconnect with exponential backoff plus jitter, up to
  a ``max_retries`` budget, counting every successful re-establishment
  in ``n_reconnects`` (``repro_source_reconnects_total``).  A *clean*
  close (EOF or the ``__END__`` terminator) still ends the stream.
* **Dead-letter routing** — an unparsable CSV line no longer raises out
  of the source thread and kills the pipeline; it is quarantined to the
  source's :class:`~repro.streams.resilience.DeadLetterQueue` (payload
  captured, ``repro_dlq_total`` counter) and the stream continues.
  ``strict=True`` restores the raising behaviour.
"""

from __future__ import annotations

import pathlib
import random
import socket
import threading
import time
from typing import Iterator

import numpy as np

from .operators import Source
from .resilience import DeadLetterQueue
from .sources import OBSERVATION_SCHEMA
from .tuples import StreamTuple

__all__ = [
    "HTTPVectorSource",
    "TCPVectorSource",
    "TailingFileSource",
    "serve_vectors",
]

#: Conventional end-of-stream line for text protocols.
END_OF_STREAM = "__END__"


def _parse_csv_line(line: str, lineno: int, origin: str) -> np.ndarray | None:
    line = line.strip()
    if not line:
        return None
    try:
        return np.array(
            [
                float("nan") if cell.strip() in ("", "nan", "NaN")
                else float(cell)
                for cell in line.split(",")
            ],
            dtype=np.float64,
        )
    except ValueError as exc:
        raise ValueError(f"{origin}:{lineno}: unparsable line ({exc})") from None


class _RetryBudget:
    """Exponential backoff with jitter and a bounded retry budget.

    ``wait()`` consumes one retry and sleeps ``base * 2**attempt`` capped
    at ``cap_s``, stretched by up to ``jitter`` (fraction, seeded RNG so
    tests are reproducible).  Returns ``False`` — without sleeping — once
    the budget is exhausted.
    """

    def __init__(
        self,
        max_retries: int,
        base_s: float,
        cap_s: float,
        jitter: float,
        seed: int,
    ) -> None:
        self.left = int(max_retries)
        self._delay = float(base_s)
        self._cap = float(cap_s)
        self._jitter = float(jitter)
        self._rng = random.Random(seed)

    def wait(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        time.sleep(self._delay * (1.0 + self._jitter * self._rng.random()))
        self._delay = min(self._delay * 2.0, self._cap)
        return True


class _ResilientCSVSource(Source):
    """Shared malformed-line handling for the CSV-over-anything sources."""

    def __init__(
        self,
        name: str,
        *,
        dlq: DeadLetterQueue | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(name)
        #: Destination for unparsable lines (private queue by default).
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.strict = bool(strict)
        self.n_quarantined = 0
        self.n_reconnects = 0

    def bind_telemetry(self, telemetry) -> None:
        self.dlq.bind_telemetry(telemetry)

    def _safe_parse(
        self, line: str, lineno: int, origin: str
    ) -> np.ndarray | None:
        """Parse one line; poison goes to the DLQ instead of raising."""
        try:
            return _parse_csv_line(line, lineno, origin)
        except ValueError as exc:
            if self.strict:
                raise
            self.n_quarantined += 1
            self.dlq.quarantine(
                self.name, str(exc), payload=line.strip(), seq=lineno
            )
            return None


class TCPVectorSource(_ResilientCSVSource):
    """Read newline-delimited CSV vectors from a TCP connection.

    The stream ends when the peer *cleanly* closes the socket or sends
    the ``__END__`` terminator line.  A connection *failure* — refused
    connect, reset mid-stream — triggers reconnection with exponential
    backoff + jitter until ``max_retries`` is exhausted, at which point
    the last error propagates.  Sequence numbering continues across
    reconnects (the feeder is expected to resume, not replay).

    Parameters
    ----------
    host / port:
        Peer to connect to.
    connect_timeout_s:
        Time allowed for each TCP connect attempt.
    max_retries:
        Total reconnect budget (connect failures and mid-stream drops
        share it).  0 restores the seed single-attempt behaviour.
    backoff_base_s / backoff_cap_s / backoff_jitter / retry_seed:
        Backoff schedule: ``base * 2**attempt`` capped at ``cap``, each
        stretched by up to ``jitter`` (seeded, reproducible).
    dlq / strict:
        Unparsable-line routing (see module docstring).
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 10.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_jitter: float = 0.5,
        retry_seed: int = 0,
        dlq: DeadLetterQueue | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(name, dlq=dlq, strict=strict)
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = float(connect_timeout_s)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self.retry_seed = int(retry_seed)

    def generate(self) -> Iterator[StreamTuple]:
        budget = _RetryBudget(
            self.max_retries, self.backoff_base_s, self.backoff_cap_s,
            self.backoff_jitter, self.retry_seed,
        )
        origin = f"tcp://{self.host}:{self.port}"
        seq = 0
        lineno = 0
        connected_before = False
        while True:
            try:
                conn = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout_s
                )
            except OSError:
                if not budget.wait():
                    raise
                continue
            if connected_before:
                self.n_reconnects += 1
            connected_before = True
            try:
                conn.settimeout(None)
                reader = conn.makefile("r", encoding="utf-8")
                for line in reader:
                    lineno += 1
                    if line.strip() == END_OF_STREAM:
                        return
                    vec = self._safe_parse(line, lineno, origin)
                    if vec is None:
                        continue
                    yield StreamTuple.data(
                        OBSERVATION_SCHEMA, x=vec, seq=seq
                    )
                    seq += 1
            except OSError:
                # Network flap mid-stream: reconnect within budget.
                conn.close()
                if not budget.wait():
                    raise
                continue
            conn.close()
            return  # clean EOF from the peer


def serve_vectors(
    vectors,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    delay_s: float = 0.0,
) -> tuple[int, threading.Thread]:
    """Serve vectors over TCP for one client (the demo/test feeder).

    Binds, listens for a single connection in a daemon thread, writes one
    CSV line per vector (``delay_s`` apart), then the ``__END__``
    terminator.  Returns ``(bound_port, thread)``.
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(1)
    bound_port = server.getsockname()[1]

    def run() -> None:
        try:
            conn, _ = server.accept()
            with conn, conn.makefile("w", encoding="utf-8") as writer:
                for vec in vectors:
                    vec = np.asarray(vec, dtype=np.float64)
                    writer.write(
                        ",".join(
                            "" if not np.isfinite(v) else repr(float(v))
                            for v in vec
                        )
                        + "\n"
                    )
                    writer.flush()
                    if delay_s:
                        time.sleep(delay_s)
                writer.write(END_OF_STREAM + "\n")
                writer.flush()
        finally:
            server.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return bound_port, thread


class TailingFileSource(_ResilientCSVSource):
    """Follow a growing CSV file — the "piped stream file" input.

    Reads vectors line by line; at EOF it *waits* for more data ("lock on
    the stream end until a new data is streamed through").  The stream
    ends on a ``__END__`` line, or after ``idle_timeout_s`` with no new
    data (``None`` waits forever).  Unparsable lines go to the
    dead-letter queue (see module docstring) unless ``strict=True``.

    Parameters
    ----------
    path:
        The file being appended to (must exist before the run starts).
    poll_interval_s:
        How often to re-check for new lines at EOF.
    idle_timeout_s:
        Give up after this much quiet time (safety for tests/pipelines
        whose writer died); ``None`` disables.
    """

    def __init__(
        self,
        name: str,
        path: str | pathlib.Path,
        *,
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = 10.0,
        dlq: DeadLetterQueue | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(name, dlq=dlq, strict=strict)
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise FileNotFoundError(self.path)
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive or None")
        self.poll_interval_s = float(poll_interval_s)
        self.idle_timeout_s = idle_timeout_s

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        lineno = 0
        last_data = time.monotonic()
        with self.path.open("r", encoding="utf-8") as fh:
            buffer = ""
            while True:
                chunk = fh.readline()
                if not chunk:
                    if (
                        self.idle_timeout_s is not None
                        and time.monotonic() - last_data > self.idle_timeout_s
                    ):
                        return
                    time.sleep(self.poll_interval_s)
                    continue
                buffer += chunk
                if not buffer.endswith("\n"):
                    # Partial line: the writer is mid-append; wait for the
                    # rest.
                    continue
                line, buffer = buffer, ""
                last_data = time.monotonic()
                lineno += 1
                if line.strip() == END_OF_STREAM:
                    return
                vec = self._safe_parse(line, lineno, str(self.path))
                if vec is None:
                    continue
                yield StreamTuple.data(OBSERVATION_SCHEMA, x=vec, seq=seq)
                seq += 1


class HTTPVectorSource(_ResilientCSVSource):
    """Fetch a CSV vector stream from an HTTP URL (§III-A.1).

    "Network TCP sockets and http URLs are also supported out of the box
    as a source of data."  The body is newline-delimited CSV, one
    observation per line; the stream ends at the end of the response (or
    an ``__END__`` line for chunked feeds).

    Connection failures and mid-body drops are retried with exponential
    backoff + jitter up to ``max_retries``.  Because a plain re-GET
    replays the body from the start, the source skips the observations
    it already delivered, so downstream sees no duplicates.
    """

    def __init__(
        self,
        name: str,
        url: str,
        *,
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_jitter: float = 0.5,
        retry_seed: int = 0,
        dlq: DeadLetterQueue | None = None,
        strict: bool = False,
    ) -> None:
        super().__init__(name, dlq=dlq, strict=strict)
        if not url.startswith(("http://", "https://")):
            raise ValueError(f"not an http(s) URL: {url!r}")
        self.url = url
        self.timeout_s = float(timeout_s)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self.retry_seed = int(retry_seed)

    def generate(self) -> Iterator[StreamTuple]:
        import http.client
        import urllib.request

        budget = _RetryBudget(
            self.max_retries, self.backoff_base_s, self.backoff_cap_s,
            self.backoff_jitter, self.retry_seed,
        )
        seq = 0
        fetched_before = False
        while True:
            skip = seq  # rows already delivered from a previous attempt
            try:
                with urllib.request.urlopen(
                    self.url, timeout=self.timeout_s
                ) as response:
                    if fetched_before:
                        self.n_reconnects += 1
                    fetched_before = True
                    for lineno, raw in enumerate(response, start=1):
                        line = raw.decode("utf-8")
                        if line.strip() == END_OF_STREAM:
                            return
                        vec = self._safe_parse(line, lineno, self.url)
                        if vec is None:
                            continue
                        if skip > 0:
                            skip -= 1
                            continue
                        yield StreamTuple.data(
                            OBSERVATION_SCHEMA, x=vec, seq=seq
                        )
                        seq += 1
                return  # complete body read
            except (OSError, http.client.HTTPException):
                # URLError subclasses OSError; a dropped keep-alive body
                # surfaces as http.client.IncompleteRead.
                if not budget.wait():
                    raise
