"""Live stream sources: TCP sockets and growing ("piped") files.

Section III-A.1 lists InfoSphere's out-of-the-box inputs beyond files:
"Side service can feed the data using piped stream file, and InfoSphere
will lock on the stream end until a new data is streamed through.
Network TCP sockets and http URLs are also supported out of the box as a
source of data."  The two live variants we rebuild:

* :class:`TCPVectorSource` — connects to ``host:port`` and reads
  newline-delimited CSV vectors until the peer closes the connection.
  (:func:`serve_vectors` is the matching test/demo-side feeder.)
* :class:`TailingFileSource` — follows a file that another process keeps
  appending to, blocking at EOF ("lock on the stream end") until new
  lines arrive or a terminator line / idle timeout ends the stream.

Both emit the standard observation tuples (``x``, ``seq``).
"""

from __future__ import annotations

import pathlib
import socket
import threading
import time
from typing import Iterator

import numpy as np

from .operators import Source
from .sources import OBSERVATION_SCHEMA
from .tuples import StreamTuple

__all__ = [
    "HTTPVectorSource",
    "TCPVectorSource",
    "TailingFileSource",
    "serve_vectors",
]

#: Conventional end-of-stream line for text protocols.
END_OF_STREAM = "__END__"


def _parse_csv_line(line: str, lineno: int, origin: str) -> np.ndarray | None:
    line = line.strip()
    if not line:
        return None
    try:
        return np.array(
            [
                float("nan") if cell.strip() in ("", "nan", "NaN")
                else float(cell)
                for cell in line.split(",")
            ],
            dtype=np.float64,
        )
    except ValueError as exc:
        raise ValueError(f"{origin}:{lineno}: unparsable line ({exc})") from None


class TCPVectorSource(Source):
    """Read newline-delimited CSV vectors from a TCP connection.

    The stream ends when the peer closes the socket or sends the
    ``__END__`` terminator line.

    Parameters
    ----------
    host / port:
        Peer to connect to.
    connect_timeout_s:
        Time allowed for the TCP connect.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 10.0,
    ) -> None:
        super().__init__(name)
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = float(connect_timeout_s)

    def generate(self) -> Iterator[StreamTuple]:
        with socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        ) as conn:
            conn.settimeout(None)
            reader = conn.makefile("r", encoding="utf-8")
            seq = 0
            for lineno, line in enumerate(reader, start=1):
                if line.strip() == END_OF_STREAM:
                    return
                vec = _parse_csv_line(
                    line, lineno, f"tcp://{self.host}:{self.port}"
                )
                if vec is None:
                    continue
                yield StreamTuple.data(OBSERVATION_SCHEMA, x=vec, seq=seq)
                seq += 1


def serve_vectors(
    vectors,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    delay_s: float = 0.0,
) -> tuple[int, threading.Thread]:
    """Serve vectors over TCP for one client (the demo/test feeder).

    Binds, listens for a single connection in a daemon thread, writes one
    CSV line per vector (``delay_s`` apart), then the ``__END__``
    terminator.  Returns ``(bound_port, thread)``.
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(1)
    bound_port = server.getsockname()[1]

    def run() -> None:
        try:
            conn, _ = server.accept()
            with conn, conn.makefile("w", encoding="utf-8") as writer:
                for vec in vectors:
                    vec = np.asarray(vec, dtype=np.float64)
                    writer.write(
                        ",".join(
                            "" if not np.isfinite(v) else repr(float(v))
                            for v in vec
                        )
                        + "\n"
                    )
                    writer.flush()
                    if delay_s:
                        time.sleep(delay_s)
                writer.write(END_OF_STREAM + "\n")
                writer.flush()
        finally:
            server.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return bound_port, thread


class TailingFileSource(Source):
    """Follow a growing CSV file — the "piped stream file" input.

    Reads vectors line by line; at EOF it *waits* for more data ("lock on
    the stream end until a new data is streamed through").  The stream
    ends on a ``__END__`` line, or after ``idle_timeout_s`` with no new
    data (``None`` waits forever).

    Parameters
    ----------
    path:
        The file being appended to (must exist before the run starts).
    poll_interval_s:
        How often to re-check for new lines at EOF.
    idle_timeout_s:
        Give up after this much quiet time (safety for tests/pipelines
        whose writer died); ``None`` disables.
    """

    def __init__(
        self,
        name: str,
        path: str | pathlib.Path,
        *,
        poll_interval_s: float = 0.05,
        idle_timeout_s: float | None = 10.0,
    ) -> None:
        super().__init__(name)
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise FileNotFoundError(self.path)
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive or None")
        self.poll_interval_s = float(poll_interval_s)
        self.idle_timeout_s = idle_timeout_s

    def generate(self) -> Iterator[StreamTuple]:
        seq = 0
        lineno = 0
        last_data = time.monotonic()
        with self.path.open("r", encoding="utf-8") as fh:
            buffer = ""
            while True:
                chunk = fh.readline()
                if not chunk:
                    if (
                        self.idle_timeout_s is not None
                        and time.monotonic() - last_data > self.idle_timeout_s
                    ):
                        return
                    time.sleep(self.poll_interval_s)
                    continue
                buffer += chunk
                if not buffer.endswith("\n"):
                    # Partial line: the writer is mid-append; wait for the
                    # rest.
                    continue
                line, buffer = buffer, ""
                last_data = time.monotonic()
                lineno += 1
                if line.strip() == END_OF_STREAM:
                    return
                vec = _parse_csv_line(line, lineno, str(self.path))
                if vec is None:
                    continue
                yield StreamTuple.data(OBSERVATION_SCHEMA, x=vec, seq=seq)
                seq += 1


class HTTPVectorSource(Source):
    """Fetch a CSV vector stream from an HTTP URL (§III-A.1).

    "Network TCP sockets and http URLs are also supported out of the box
    as a source of data."  The body is newline-delimited CSV, one
    observation per line; the stream ends at the end of the response (or
    an ``__END__`` line for chunked feeds).
    """

    def __init__(
        self, name: str, url: str, *, timeout_s: float = 30.0
    ) -> None:
        super().__init__(name)
        if not url.startswith(("http://", "https://")):
            raise ValueError(f"not an http(s) URL: {url!r}")
        self.url = url
        self.timeout_s = float(timeout_s)

    def generate(self) -> Iterator[StreamTuple]:
        import urllib.request

        seq = 0
        with urllib.request.urlopen(
            self.url, timeout=self.timeout_s
        ) as response:
            for lineno, raw in enumerate(response, start=1):
                line = raw.decode("utf-8")
                if line.strip() == END_OF_STREAM:
                    return
                vec = _parse_csv_line(line, lineno, self.url)
                if vec is None:
                    continue
                yield StreamTuple.data(OBSERVATION_SCHEMA, x=vec, seq=seq)
                seq += 1
