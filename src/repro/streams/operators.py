"""Operator model of the stream engine.

Operators are the vertices of the dataflow graph (Fig. 2): each has a
fixed number of input and output ports, a lifecycle
(``open → process* → close``), and emits tuples downstream via
:meth:`Operator.submit`.  The runtime (synchronous or threaded; see
:mod:`repro.streams.engine`) wires ``submit`` to the actual delivery
mechanism, so operator code is identical under both runtimes — the same
property InfoSphere exploits when *fusing* operators into one process.

Per-operator tuple counters are maintained automatically; they are the
"rich statistics of components performance" the paper's profiling
workflow relies on.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Iterator

from .tuples import StreamTuple, inherit_event_time, stamp_event_time

__all__ = [
    "Operator",
    "Source",
    "Sink",
    "Functor",
    "FilterOperator",
    "Union",
]


class Operator:
    """Base class for all stream operators.

    Subclasses override :meth:`process` (per data/control tuple),
    optionally :meth:`open`, :meth:`close`, and
    :meth:`on_punctuation`.  Downstream emission goes through
    :meth:`submit`; the runtime injects the delivery function at wiring
    time.

    Stateful operators may additionally implement the checkpoint/restart
    protocol used by :mod:`repro.streams.supervision`:
    ``snapshot_state() -> state | None`` returning an *independent copy*
    of the recoverable state, and ``restore_state(state)`` installing a
    previous snapshot.  Operators run under retrying failure policies
    should keep :meth:`close` idempotent.

    Attributes
    ----------
    n_inputs / n_outputs:
        Port counts; fixed per operator instance.
    punctuation_ports:
        Input ports whose punctuation is *required* before the operator
        completes.  Defaults to all input ports; operators with auxiliary
        control ports (e.g. the PCA engine's sync port) exclude them so a
        silent controller doesn't stall shutdown.
    """

    def __init__(
        self,
        name: str,
        *,
        n_inputs: int = 1,
        n_outputs: int = 1,
        punctuation_ports: Iterable[int] | None = None,
    ) -> None:
        if n_inputs < 0 or n_outputs < 0:
            raise ValueError("port counts must be non-negative")
        self.name = name
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        if punctuation_ports is None:
            self.punctuation_ports = set(range(n_inputs))
        else:
            self.punctuation_ports = set(punctuation_ports)
            bad = self.punctuation_ports - set(range(n_inputs))
            if bad:
                raise ValueError(f"punctuation_ports out of range: {bad}")
        self.tuples_in = 0
        self.tuples_out = 0
        #: Observability hooks, installed by Telemetry.attach_graph on
        #: terminal operators only: an e2e-latency histogram and a
        #: watermark tracker.  Class-level ``None`` defaults keep the
        #: per-tuple check a single attribute load on the hot path.
        self._e2e_hist: Any = None
        self._watermark: Any = None
        #: Punctuation tuples emitted (counted explicitly so statistics
        #: never have to assume "exactly one punctuation per port").
        self.punct_out = 0
        #: Exclusive processing time (seconds); populated when the
        #: runtime enables profiling (see repro.streams.profiling).
        self.processing_time_s = 0.0
        self._profiled = False
        self._emit: Callable[[StreamTuple, int], None] | None = None
        self._punctuated: set[int] = set()
        self._closed = False
        self._completing = False

    # -- runtime wiring -------------------------------------------------

    def bind(self, emit: Callable[[StreamTuple, int], None]) -> None:
        """Install the runtime's delivery function (engine-internal)."""
        self._emit = emit

    def submit(self, tup: StreamTuple, port: int = 0) -> None:
        """Emit ``tup`` on output ``port``."""
        if self._emit is None:
            raise RuntimeError(
                f"operator {self.name!r} is not wired into a running graph"
            )
        if not 0 <= port < self.n_outputs:
            raise ValueError(
                f"operator {self.name!r} has no output port {port}"
            )
        self.tuples_out += 1
        if tup.is_punctuation:
            self.punct_out += 1
        self._emit(tup, port)

    # -- lifecycle --------------------------------------------------------

    def open(self) -> None:
        """Called once before any tuple is processed."""

    def process(self, tup: StreamTuple, port: int) -> None:
        """Handle one data or control tuple arriving on input ``port``."""
        raise NotImplementedError

    def on_punctuation(self, port: int) -> None:
        """Hook invoked when an input port reaches end-of-stream."""

    def close(self) -> None:
        """Called once after all required input ports have punctuated."""

    # -- engine-facing dispatch (not for subclasses) ----------------------

    def _dispatch(self, tup: StreamTuple, port: int) -> None:
        if self._profiled:
            from .profiling import profiled_dispatch

            profiled_dispatch(self, self._dispatch_inner, tup, port)
        else:
            self._dispatch_inner(tup, port)

    def _dispatch_inner(self, tup: StreamTuple, port: int) -> None:
        if tup.is_punctuation:
            if port not in self._punctuated:
                self._punctuated.add(port)
                self.on_punctuation(port)
            # Completion is re-checked on every punctuation dispatch (not
            # only the first per port) so a supervisor that re-dispatches
            # after a failed close() can drive completion to success.
            if self.punctuation_ports <= self._punctuated and not self._closed:
                self._complete()
            return
        self.tuples_in += 1
        if self._e2e_hist is not None and tup.event_ts is not None:
            # Sink-side observation: event time was stamped with
            # time.time() at the source (possibly on another host), so
            # the difference is ingest→here latency *plus* any clock
            # offset between the two hosts.  The raw (signed) value goes
            # to the watermark tracker, which surfaces negative readings
            # as the repro_clock_skew_seconds gauge instead of letting
            # the clamp below hide them.
            raw_lag = time.time() - tup.event_ts
            self._e2e_hist.observe(max(0.0, raw_lag))
            if self._watermark is not None:
                self._watermark.note(tup.event_ts, raw_lag)
        self.process(tup, port)

    def _complete(self) -> None:
        """Close and propagate punctuation downstream (exactly once).

        ``close()`` runs before the operator is marked closed: if it
        raises, a failure policy may re-dispatch the punctuation and
        retry completion.  Re-entrant completion (a fused cycle bouncing
        punctuation straight back) is guarded separately.
        """
        if self._closed or self._completing:
            return
        self._completing = True
        try:
            self.close()
        finally:
            self._completing = False
        self._closed = True
        if self._emit is not None:
            for port in range(self.n_outputs):
                self.tuples_out += 1
                self.punct_out += 1
                self._emit(StreamTuple.punctuation(), port)

    @property
    def is_closed(self) -> bool:
        """Whether the operator has completed."""
        return self._closed


class Source(Operator):
    """Operator with no inputs that produces its own tuples.

    Subclasses implement :meth:`generate`; the runtime pulls from it.
    Alternatively pass ``items`` (any iterable of tuples).
    """

    def __init__(
        self,
        name: str,
        items: Iterable[StreamTuple] | None = None,
        *,
        n_outputs: int = 1,
    ) -> None:
        super().__init__(name, n_inputs=0, n_outputs=n_outputs)
        self._items = items

    def generate(self) -> Iterator[StreamTuple]:
        """Yield the source's tuples (punctuation appended by the engine)."""
        if self._items is None:
            raise NotImplementedError(
                f"Source {self.name!r}: pass items= or override generate()"
            )
        yield from self._items

    def submit(self, tup: StreamTuple, port: int = 0) -> None:
        """Emit ``tup``, stamping event time at the ingest boundary.

        Every runtime drives sources through ``submit``, so stamping
        here (rather than in each engine's source loop) gives all three
        runtimes the same event-time semantics for free.  Replayed
        tuples that already carry an ``event_ts`` keep it.
        """
        if not tup.is_punctuation and tup.event_ts is None:
            stamp_event_time(tup, time.time())
        super().submit(tup, port)

    def process(self, tup: StreamTuple, port: int) -> None:  # pragma: no cover
        raise RuntimeError("sources receive no input")


class Sink(Operator):
    """Operator with no outputs; override :meth:`consume`."""

    def __init__(self, name: str, *, n_inputs: int = 1) -> None:
        super().__init__(name, n_inputs=n_inputs, n_outputs=0)

    def consume(self, tup: StreamTuple, port: int) -> None:
        raise NotImplementedError

    def process(self, tup: StreamTuple, port: int) -> None:
        self.consume(tup, port)


class Functor(Operator):
    """Per-tuple transformation, the SPL ``Functor`` analog.

    ``fn(tuple) -> StreamTuple | list[StreamTuple] | None``; ``None``
    drops the tuple.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[StreamTuple], Any],
    ) -> None:
        super().__init__(name, n_inputs=1, n_outputs=1)
        self._fn = fn

    def process(self, tup: StreamTuple, port: int) -> None:
        out = self._fn(tup)
        if out is None:
            return
        # Derived tuples inherit the input's event time so end-to-end
        # latency and watermarks survive per-tuple transformations.
        if isinstance(out, StreamTuple):
            self.submit(inherit_event_time(out, tup))
        else:
            for t in out:
                self.submit(inherit_event_time(t, tup))


class FilterOperator(Operator):
    """Forward only tuples for which ``predicate`` is true."""

    def __init__(
        self, name: str, predicate: Callable[[StreamTuple], bool]
    ) -> None:
        super().__init__(name, n_inputs=1, n_outputs=1)
        self._predicate = predicate

    def process(self, tup: StreamTuple, port: int) -> None:
        if self._predicate(tup):
            self.submit(tup)


class Union(Operator):
    """Merge any number of input streams into one output stream."""

    def __init__(self, name: str, n_inputs: int) -> None:
        if n_inputs < 1:
            raise ValueError("Union needs at least one input")
        super().__init__(name, n_inputs=n_inputs, n_outputs=1)

    def process(self, tup: StreamTuple, port: int) -> None:
        self.submit(tup)
