"""Operator fusion: partitioning the graph into processing elements.

InfoSphere "fuses" operators into a single process so they "exchange data
in local memory where possible" instead of paying network/queue costs
(Section III-A); the paper's performance tuning is largely about choosing
this partition.  A :class:`FusionPlan` assigns every operator to exactly
one processing element (PE).  Under the threaded runtime, intra-PE edges
are direct function calls (zero copy, same thread) and inter-PE edges are
bounded queues — the same cost asymmetry the paper measures in Fig. 6.

Sources always get their own PE: a source drives itself and cannot share
a thread with operators that must stay responsive to their inboxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Graph, GraphError
from .operators import Operator, Source

__all__ = ["ProcessingElement", "FusionPlan", "optimize_fusion"]


@dataclass(frozen=True)
class ProcessingElement:
    """A group of operators executed by one thread."""

    pe_id: int
    operators: tuple[Operator, ...]

    def __contains__(self, op: Operator) -> bool:
        return any(o is op for o in self.operators)

    def label(self) -> str:
        """Human-readable id used in stall reports and diagnostics."""
        names = ",".join(op.name for op in self.operators)
        return f"pe-{self.pe_id}[{names}]"


@dataclass
class FusionPlan:
    """A complete assignment of operators to processing elements."""

    pes: list[ProcessingElement] = field(default_factory=list)

    def pe_of(self, op: Operator) -> ProcessingElement:
        """The PE containing ``op``."""
        for pe in self.pes:
            if op in pe:
                return pe
        raise KeyError(f"operator {op.name!r} is not in the plan")

    def validate(self, graph: Graph) -> None:
        """Every graph operator in exactly one PE; sources isolated."""
        seen: set[int] = set()
        for pe in self.pes:
            for op in pe.operators:
                if id(op) in seen:
                    raise GraphError(
                        f"operator {op.name!r} appears in multiple PEs"
                    )
                seen.add(id(op))
        missing = [op.name for op in graph if id(op) not in seen]
        if missing:
            raise GraphError(f"operators missing from fusion plan: {missing}")
        extra = len(seen) - len(graph)
        if extra:
            raise GraphError(f"fusion plan contains {extra} unknown operators")
        for pe in self.pes:
            if len(pe.operators) > 1 and any(
                isinstance(op, Source) for op in pe.operators
            ):
                raise GraphError(
                    "sources must be alone in their PE "
                    f"(PE {pe.pe_id} mixes a source with other operators)"
                )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def per_operator(cls, graph: Graph) -> "FusionPlan":
        """One PE per operator — maximum parallelism, maximum queueing."""
        return cls(
            pes=[
                ProcessingElement(i, (op,))
                for i, op in enumerate(graph.operators)
            ]
        )

    @classmethod
    def fused(cls, graph: Graph) -> "FusionPlan":
        """Everything (except sources) in one PE — the "single node with
        default fusion" configuration of Fig. 6's single-placement runs."""
        sources = [op for op in graph.operators if isinstance(op, Source)]
        rest = tuple(
            op for op in graph.operators if not isinstance(op, Source)
        )
        pes = [ProcessingElement(i, (s,)) for i, s in enumerate(sources)]
        if rest:
            pes.append(ProcessingElement(len(pes), rest))
        return cls(pes=pes)

    @classmethod
    def from_groups(
        cls, graph: Graph, groups: list[list[Operator]]
    ) -> "FusionPlan":
        """Explicit grouping; ungrouped operators get singleton PEs."""
        plan = cls()
        grouped: set[int] = set()
        next_id = 0
        for group in groups:
            plan.pes.append(ProcessingElement(next_id, tuple(group)))
            next_id += 1
            grouped.update(id(op) for op in group)
        for op in graph.operators:
            if id(op) not in grouped:
                plan.pes.append(ProcessingElement(next_id, (op,)))
                next_id += 1
        plan.validate(graph)
        return plan

    @classmethod
    def fuse_chains(cls, graph: Graph) -> "FusionPlan":
        """Fuse maximal linear chains (the profiler-driven optimization of
        Section III-D in its simplest form).

        Two adjacent operators are fused when the edge between them is the
        *only* edge on both its output and input ports and neither side is
        a source — i.e. pure pipeline segments collapse into one PE while
        fan-out/fan-in points (split, controller) stay on PE boundaries.
        """
        parent: dict[int, Operator] = {}

        def find(op: Operator) -> Operator:
            while id(op) in parent:
                op = parent[id(op)]
            return op

        for e in graph.edges:
            if isinstance(e.src, Source) or isinstance(e.dst, Source):
                continue
            src_fan_out = len(graph.out_edges(e.src))
            dst_fan_in = len(graph.in_edges(e.dst))
            if (
                src_fan_out == 1
                and dst_fan_in == 1
                and e.src.n_outputs == 1
                and e.dst.n_inputs == 1
            ):
                a, b = find(e.src), find(e.dst)
                if a is not b:
                    parent[id(b)] = a

        clusters: dict[int, list[Operator]] = {}
        for op in graph.operators:
            root = find(op)
            clusters.setdefault(id(root), []).append(op)
        plan = cls(
            pes=[
                ProcessingElement(i, tuple(ops))
                for i, ops in enumerate(clusters.values())
            ]
        )
        plan.validate(graph)
        return plan


def optimize_fusion(
    graph: Graph,
    stats,
    *,
    target_pes: int | None = None,
    balance_slack: float = 1.25,
) -> FusionPlan:
    """Profile-driven fusion — the paper's optimization loop (§III-D).

    "The optimisation component analyses the logs of profiler and fuses
    the operators together for optimized data throughput."  Given a
    profiled :class:`~repro.streams.engine.RunStats` (run an engine with
    ``profile=True``), greedily fuse the hottest edges — the channels
    carrying the most tuples, where queue hops cost the most — while
    keeping every processing element's total compute below
    ``balance_slack × (total_time / target_pes)`` so one PE cannot become
    the bottleneck.

    Parameters
    ----------
    graph:
        The application graph (same operator names as the profiled run).
    stats:
        ``RunStats`` with ``processing_time_s`` populated.
    target_pes:
        Desired parallelism; defaults to the number of non-source
        operators (i.e. only clearly-free fusions are taken).
    balance_slack:
        How far above the perfectly balanced per-PE load a fused PE may
        go.  Larger values fuse more aggressively (less queueing, less
        parallelism).

    Returns
    -------
    FusionPlan
        A valid plan; sources always isolated.
    """
    if not stats.processing_time_s:
        raise ValueError(
            "stats carry no processing_time_s — run the engine with "
            "profile=True first"
        )
    times = {
        op.name: stats.processing_time_s.get(op.name, 0.0)
        for op in graph.operators
    }
    non_sources = [
        op for op in graph.operators if not isinstance(op, Source)
    ]
    if target_pes is None:
        target_pes = max(len(non_sources), 1)
    total_time = sum(times[op.name] for op in non_sources)
    budget = balance_slack * total_time / max(target_pes, 1)

    # Union-find over non-source operators.
    parent: dict[int, Operator] = {}

    def find(op: Operator) -> Operator:
        while id(op) in parent:
            op = parent[id(op)]
        return op

    load: dict[int, float] = {id(op): times[op.name] for op in non_sources}

    # Hottest edges first: traffic measured at the destination port
    # (tuples delivered over that channel during the profiled run).
    def edge_traffic(e) -> int:
        return stats.tuples_out.get(e.src.name, 0)

    for e in sorted(graph.edges, key=edge_traffic, reverse=True):
        if isinstance(e.src, Source) or isinstance(e.dst, Source):
            continue
        a, b = find(e.src), find(e.dst)
        if a is b:
            continue
        merged_load = load[id(a)] + load[id(b)]
        if merged_load > budget:
            continue
        parent[id(b)] = a
        load[id(a)] = merged_load

    clusters: dict[int, list[Operator]] = {}
    for op in graph.operators:
        if isinstance(op, Source):
            clusters[id(op)] = [op]
        else:
            clusters.setdefault(id(find(op)), []).append(op)
    plan = FusionPlan(
        pes=[
            ProcessingElement(i, tuple(ops))
            for i, ops in enumerate(clusters.values())
        ]
    )
    plan.validate(graph)
    return plan
