"""Unified telemetry: metrics registry, tuple tracing, backpressure sampling.

The paper relies on InfoSphere's profiling tools to measure "the
performance of each component and the data channels traffic" (§III-D)
and feeds those measurements into the fusion/placement optimization.
This module is that observability layer for our reproduction, one level
up from the ad-hoc counters of :class:`~repro.streams.engine.RunStats`:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and
  fixed-bucket histograms (p50/p95/p99 summaries), labelled per operator
  and per processing element.  Cheap *collectors* read existing
  operator-side counters at export time, so the hot path pays nothing
  for metrics and there is exactly one source of truth: the operator's
  own counter attributes.
* :class:`Tracer` — span-based tuple tracing.  A sampled source tuple
  (default 1-in-N) starts a *root span*; the trace context propagates
  through fused synchronous dispatch chains (thread-local current span),
  through :class:`~repro.streams.split.Split` fan-out (the forwarded
  tuple keeps its context), and across
  :class:`~repro.streams.engine.ThreadedEngine` queue hops (contexts are
  keyed by the globally unique ``StreamTuple.seq``, which crosses the
  queue with the tuple; the wait itself becomes a ``queue`` span).
* :class:`BackpressureSampler` — a background thread that periodically
  records per-PE queue depth, the global in-flight count, and
  throughput, so backpressure is visible *over time* instead of only in
  a post-mortem stall report.
* Exporters — :meth:`Telemetry.to_prometheus` (Prometheus text
  format), :meth:`Telemetry.write_jsonl` (structured event log incl. a
  final metrics snapshot), and :func:`repro.streams.telemetry_report.render_report`
  (human-readable run report; also ``python -m repro telemetry <log>``).

Overhead tiers (see ``benchmarks/bench_telemetry_overhead.py``):

========================  =============================================
``TelemetryConfig``       per-tuple cost
========================  =============================================
metrics only (default)    ~zero — counters are read at export time
``timing=True``           one ``perf_counter`` pair per dispatch
``tracing=True``          one dict probe per dispatch; spans only for
                          the sampled 1-in-N traces
========================  =============================================
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import Graph
    from .operators import Operator
    from .tuples import StreamTuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "EventLog",
    "WatermarkTracker",
    "BackpressureSampler",
    "TelemetryConfig",
    "Telemetry",
    "load_events",
    "operator_counter_snapshot",
    "operator_metric_samples",
    "DEFAULT_LATENCY_BUCKETS",
]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

#: Exponential latency buckets in seconds, 1 µs … 10 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (per label set).

    Incremented by the instrumented component itself; components that
    already keep their own counters are exposed through registry
    *collectors* instead, so the count is never kept twice.
    """

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value; either set directly or computed by ``fn``."""

    __slots__ = ("name", "labels", "value", "fn")
    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> float:
        return float(self.fn()) if self.fn is not None else self.value


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``observe`` takes a per-histogram lock: the registry advertises
    thread safety, and histograms *are* shared across threads — the same
    ``(name, labels)`` pair handed to two PEs, or an e2e-latency
    histogram observed from a sink while an exporter reads it.  The lock
    is uncontended in the common single-writer case (a few tens of ns);
    exporters read without it and tolerate a slightly stale view.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "min", "max", "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError("bucket bounds must be a sorted non-empty list")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_right(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile estimate, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            lo = self.buckets[i - 1] if i > 0 else max(min(self.min, self.buckets[0]), 0.0)
            hi = self.buckets[i] if i < len(self.buckets) else max(self.max, self.buckets[-1])
            if cum + c >= rank:
                frac = (rank - cum) / c
                return lo + frac * (hi - lo)
            cum += c
        return self.max  # pragma: no cover - unreachable

    def summary(self) -> dict[str, float]:
        """Mean and p50/p95/p99 for reports and the metrics snapshot."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


@dataclass(frozen=True)
class _Sample:
    """One exported metric value (collector output)."""

    name: str
    kind: str  # "counter" | "gauge"
    labels: Mapping[str, str]
    value: float


class MetricsRegistry:
    """Thread-safe home of every metric in a run.

    Metrics come from two places: *objects* handed out by
    :meth:`counter` / :meth:`gauge` / :meth:`histogram` (get-or-create by
    ``(name, labels)``), and *collectors* — callables registered with
    :meth:`register_collector` that yield ``(name, kind, labels, value)``
    at export time.  Collectors are how pre-existing counters (operator
    ``tuples_in``, supervisor stats, split per-target counts) are exposed
    without double bookkeeping.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], Iterable[tuple]]] = []
        self._lock = threading.Lock()

    # -- creation --------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, {k: str(v) for k, v in labels.items()}, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r}{dict(labels)!r} already registered "
                    f"as {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: Any
    ) -> Gauge:
        g = self._get_or_create(Gauge, name, labels)
        if fn is not None:
            g.fn = fn
        return g

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels: Any
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def register_collector(
        self, fn: Callable[[], Iterable[tuple]]
    ) -> None:
        """Register ``fn() -> iterable of (name, kind, labels, value)``."""
        with self._lock:
            self._collectors.append(fn)

    # -- export ----------------------------------------------------------

    def collect(self) -> list[_Sample | Histogram]:
        """All current values: scalar samples plus histogram objects."""
        out: list[_Sample | Histogram] = []
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        for m in metrics:
            if isinstance(m, Histogram):
                out.append(m)
            else:
                out.append(_Sample(m.name, m.kind, m.labels, m.read()))
        for fn in collectors:
            for name, kind, labels, value in fn():
                out.append(_Sample(name, kind, labels, float(value)))
        return out

    def value(self, name: str, **labels: Any) -> float | None:
        """Look up one scalar value from a full collection (tests, reports)."""
        want = _label_key(labels)
        for s in self.collect():
            if isinstance(s, _Sample) and s.name == name and _label_key(s.labels) == want:
                return s.value
        return None

    def to_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        samples = self.collect()
        by_name: dict[str, list] = {}
        kinds: dict[str, str] = {}
        for s in samples:
            by_name.setdefault(s.name, []).append(s)
            kinds[s.name] = s.kind
        lines: list[str] = []
        for name in sorted(by_name):
            lines.append(f"# TYPE {name} {kinds[name]}")
            for s in sorted(
                by_name[name], key=lambda m: _label_key(m.labels)
            ):
                if isinstance(s, Histogram):
                    cum = 0
                    for bound, c in zip(s.buckets, s.counts):
                        cum += c
                        labels = dict(s.labels, le=repr(bound))
                        lines.append(
                            f"{name}_bucket{_fmt_labels(labels)} {cum}"
                        )
                    lines.append(
                        f"{name}_bucket{_fmt_labels(dict(s.labels, le='+Inf'))} "
                        f"{s.count}"
                    )
                    lines.append(
                        f"{name}_sum{_fmt_labels(s.labels)} {s.sum:.9g}"
                    )
                    lines.append(
                        f"{name}_count{_fmt_labels(s.labels)} {s.count}"
                    )
                else:
                    value = s.value
                    text = repr(value) if isinstance(value, float) else str(value)
                    lines.append(f"{name}{_fmt_labels(s.labels)} {text}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-able dump of every metric (for the ``metrics`` event)."""
        out = []
        for s in self.collect():
            if isinstance(s, Histogram):
                out.append({
                    "name": s.name, "kind": "histogram", "labels": s.labels,
                    **s.summary(),
                })
            else:
                out.append({
                    "name": s.name, "kind": s.kind,
                    "labels": dict(s.labels), "value": s.value,
                })
        return out


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class EventLog:
    """Bounded, thread-safe list of structured telemetry events.

    Every event is a JSON-able dict with at least ``ts`` (seconds since
    telemetry start, monotonic) and ``kind`` (``run_start``, ``span``,
    ``sample``, ``supervision``, ``sync``, ``health``,
    ``health_verdict``, ``run_end``, ``metrics``).
    """

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.n_dropped = 0
        self._events: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def append(self, event: dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.n_dropped += 1
                return
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._events)


# ---------------------------------------------------------------------------
# Watermarks
# ---------------------------------------------------------------------------


class WatermarkTracker:
    """Low-watermark state of one terminal operator (sink).

    ``note`` is called per delivered tuple with its source-stamped
    ``event_ts``; :meth:`lag` is read at scrape time as the
    ``repro_watermark_lag_seconds`` gauge.  The watermark is the maximum
    event time this sink has *completed* — because derived tuples carry
    the minimum event time of their inputs (see
    :mod:`repro.streams.tuples`), every observation stamped at or before
    it has been fully processed here.  Lock-free on purpose: ``note``
    writes a single float, torn reads are impossible for Python floats,
    and the gauge tolerates a one-tuple-stale view.

    **Clock skew.**  Event times are wall-clock stamps from the
    *producing* host (see ``stamp_event_time``); on the cluster runtime
    that is a different machine.  A producer clock running ahead of this
    host makes ``time.time() - event_ts`` negative — clamping that to
    0.0 silently (the old behaviour) corrupts every latency reading
    derived from it with no signal.  The tracker therefore records the
    most negative raw lag ever observed and exposes it signed via
    :meth:`skew` (the ``repro_clock_skew_seconds`` gauge: 0.0 = clocks
    consistent, negative = producer ahead by at least that much), and
    warns once when it first exceeds :data:`SKEW_WARN_THRESHOLD_S`.
    A producer clock running *behind* inflates lag instead and is
    indistinguishable from genuine latency — the gauge bounds the error
    in one direction only, which is exactly what NTP-disciplined hosts
    need monitored.
    """

    #: Warn-once threshold on the observed negative raw lag (seconds).
    SKEW_WARN_THRESHOLD_S = 0.25

    __slots__ = ("watermark_ts", "n_noted", "min_raw_lag_s", "_skew_warned")

    def __init__(self) -> None:
        #: Max event_ts seen (epoch seconds); None before the first tuple.
        self.watermark_ts: float | None = None
        self.n_noted = 0
        #: Most negative (now - event_ts) observed; 0.0 when clocks are
        #: consistent.
        self.min_raw_lag_s = 0.0
        self._skew_warned = False

    def note(self, event_ts: float, raw_lag: float | None = None) -> None:
        wm = self.watermark_ts
        if wm is None or event_ts > wm:
            self.watermark_ts = event_ts
        self.n_noted += 1
        if raw_lag is not None and raw_lag < self.min_raw_lag_s:
            self.min_raw_lag_s = raw_lag
            if (
                not self._skew_warned
                and raw_lag < -self.SKEW_WARN_THRESHOLD_S
            ):
                self._skew_warned = True
                import warnings

                warnings.warn(
                    f"event time from the future: tuple stamped "
                    f"{-raw_lag:.3f}s ahead of this host's clock — "
                    f"producer/consumer clocks are skewed; e2e-latency "
                    f"and watermark-lag readings are untrustworthy "
                    f"beyond that bound (repro_clock_skew_seconds)",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def lag(self) -> float:
        """Seconds between now and the watermark (0.0 before any tuple).

        Clamped at 0.0 — a negative value means clock skew, not negative
        lag, and is reported via :meth:`skew` instead.
        """
        wm = self.watermark_ts
        if wm is None:
            return 0.0
        return max(0.0, time.time() - wm)

    def skew(self) -> float:
        """Signed clock-skew bound: most negative raw lag observed.

        0.0 when producer clocks never ran ahead of this host; negative
        values mean at least that much producer-ahead skew exists and
        latency readings are biased by up to its magnitude.
        """
        return min(0.0, self.min_raw_lag_s)


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


@dataclass
class Span:
    """One timed unit of work inside a trace."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    span_kind: str  # "root" | "dispatch" | "queue" | "merge"
    t_start: float
    t_end: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> dict[str, Any]:
        return {
            "ts": self.t_start,
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "span_kind": self.span_kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration_s": self.t_end - self.t_start,
            **self.attrs,
        }


class _TraceCtx:
    """What rides along with a traced tuple (by ``seq``)."""

    __slots__ = ("trace_id", "parent_span_id")

    def __init__(self, trace_id: int, parent_span_id: int) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id


class Tracer:
    """Sampled span tracing with cross-thread context propagation.

    Contexts are keyed by the globally unique ``StreamTuple.seq``; the
    same key works for fused (same-thread) edges, ``Split`` fan-out (the
    forwarded tuple object is unchanged), and ``ThreadedEngine`` queue
    hops (the tuple object crosses the queue).  Derived tuples created by
    an operator during a traced dispatch inherit the *current* span via a
    thread-local, so traces survive ``Functor``-style re-emission too.

    Live-context tables are cleared by :meth:`reset` (called from
    ``Telemetry.run_finished``), so no per-thread or per-run state leaks
    between runs; ``max_live`` bounds the tables during a run.
    """

    def __init__(
        self,
        events: EventLog,
        *,
        sample_every: int = 128,
        clock: Callable[[], float] = time.perf_counter,
        max_live: int = 100_000,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.events = events
        self._clock = clock
        self.max_live = max_live
        self._live: dict[int, _TraceCtx] = {}
        self._enqueued: dict[int, tuple[float, str]] = {}
        self._tls = threading.local()
        self._ids_lock = threading.Lock()
        self._next_id = 0
        self._n_source = 0
        self.n_traces = 0

    # -- ids -------------------------------------------------------------

    def _new_id(self) -> int:
        with self._ids_lock:
            self._next_id += 1
            return self._next_id

    # -- context plumbing ------------------------------------------------

    def ctx_of(self, tup: "StreamTuple") -> _TraceCtx | None:
        return self._live.get(tup.seq)

    def current_ctx(self) -> _TraceCtx | None:
        return getattr(self._tls, "current", None)

    def propagate(self, tup: "StreamTuple") -> None:
        """Tag ``tup`` with the active span's context (emit-time hook).

        A tuple *forwarded* during a traced dispatch (``Split``/``Union``
        re-emit the same object) is re-parented to the forwarding span so
        waterfalls show true causality; a tuple already owned by a
        *different* trace is left alone.
        """
        ctx = getattr(self._tls, "current", None)
        if ctx is None:
            return
        existing = self._live.get(tup.seq)
        if existing is not None:
            if existing.trace_id == ctx.trace_id:
                self._live[tup.seq] = ctx
            return
        if len(self._live) < self.max_live:
            self._live[tup.seq] = ctx

    # -- root spans ------------------------------------------------------

    def maybe_start_root(
        self, op: "Operator", tup: "StreamTuple"
    ) -> Span | None:
        """Start a root span for every ``sample_every``-th source tuple."""
        if not tup.is_data:
            return None
        with self._ids_lock:
            self._n_source += 1
            if (self._n_source - 1) % self.sample_every:
                return None
        trace_id = self._new_id()
        span = Span(
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=None,
            name=op.name,
            span_kind="root",
            t_start=self._clock(),
            attrs={"op": op.name, "seq": tup.seq},
        )
        self.n_traces += 1
        if len(self._live) < self.max_live:
            self._live[tup.seq] = _TraceCtx(trace_id, span.span_id)
        return span

    def finish_span(self, span: Span) -> None:
        span.t_end = self._clock()
        self.events.append(span.to_event())

    # -- queue hops ------------------------------------------------------

    def note_enqueued(self, tup: "StreamTuple", pe_label: str) -> None:
        """Record queue entry for a traced tuple (threaded engine)."""
        if tup.seq in self._live and len(self._enqueued) < self.max_live:
            self._enqueued[tup.seq] = (self._clock(), pe_label)

    # -- dispatch spans --------------------------------------------------

    @contextmanager
    def dispatch_span(
        self, op: "Operator", tup: "StreamTuple", ctx: _TraceCtx
    ) -> Iterator[Span]:
        """Wrap one dispatch of a traced tuple in a child span.

        If the tuple crossed a queue since it was tagged, a ``queue``
        span covering the wait is emitted first and becomes the dispatch
        span's parent, so waterfalls show where time was spent.
        """
        parent_id = ctx.parent_span_id
        queued = self._enqueued.pop(tup.seq, None)
        now = self._clock()
        if queued is not None:
            t_enq, pe_label = queued
            qspan = Span(
                trace_id=ctx.trace_id,
                span_id=self._new_id(),
                parent_id=parent_id,
                name=f"queue:{pe_label}",
                span_kind="queue",
                t_start=t_enq,
                t_end=now,
                attrs={"pe": pe_label, "seq": tup.seq},
            )
            self.events.append(qspan.to_event())
            parent_id = qspan.span_id
        span = Span(
            trace_id=ctx.trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            name=op.name,
            span_kind="dispatch",
            t_start=now,
            attrs={"op": op.name, "seq": tup.seq},
        )
        prev = getattr(self._tls, "current", None)
        self._tls.current = _TraceCtx(ctx.trace_id, span.span_id)
        try:
            yield span
        finally:
            self._tls.current = prev
            self.finish_span(span)

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Drop all live contexts (between runs; prevents state leaks)."""
        self._live.clear()
        self._enqueued.clear()
        self._tls = threading.local()


# ---------------------------------------------------------------------------
# Backpressure sampler
# ---------------------------------------------------------------------------


class BackpressureSampler(threading.Thread):
    """Background thread recording queue depth / in-flight / throughput.

    ``probe`` returns the instantaneous engine state:
    ``(per_pe, inflight, total_dispatched)`` where ``per_pe`` is a list
    of ``(pe_label, depth, capacity)``.  Each tick emits one ``sample``
    event per PE plus one engine-wide sample, and updates the matching
    gauges so a mid-run Prometheus scrape sees the same numbers.
    """

    def __init__(
        self,
        telemetry: "Telemetry",
        probe: Callable[[], tuple[list[tuple[str, int, int]], int, int]],
        *,
        interval_s: float = 0.05,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        super().__init__(name="telemetry-sampler", daemon=True)
        self.telemetry = telemetry
        self.probe = probe
        self.interval_s = interval_s
        self.n_samples = 0
        # NB: not named _stop — threading.Thread has a private _stop().
        self._halt = threading.Event()
        self._last_dispatched = 0
        self._last_t = telemetry.now()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            self.sample()
        self.sample()  # final sample at shutdown: capture the drain state

    def sample(self) -> None:
        tel = self.telemetry
        try:
            per_pe, inflight, dispatched = self.probe()
        except Exception:  # engine tearing down mid-probe
            return
        now = tel.now()
        dt = max(now - self._last_t, 1e-9)
        rate = (dispatched - self._last_dispatched) / dt
        self._last_dispatched = dispatched
        self._last_t = now
        for label, depth, capacity in per_pe:
            tel.metrics.gauge("repro_queue_depth", pe=label).set(depth)
            tel.events.append({
                "ts": now, "kind": "sample", "pe": label,
                "depth": depth, "capacity": capacity,
            })
        tel.metrics.gauge("repro_inflight_tuples").set(inflight)
        tel.metrics.gauge("repro_dispatch_rate_tps").set(rate)
        tel.events.append({
            "ts": now, "kind": "sample", "pe": None,
            "inflight": inflight, "dispatched_total": dispatched,
            "throughput_tps": rate,
        })
        self.n_samples += 1


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """What the telemetry layer records.

    Attributes
    ----------
    metrics:
        Counter/gauge views over operators (≈zero per-tuple cost).
    timing:
        Per-dispatch exclusive-time histograms (enables profiled
        dispatch; one ``perf_counter`` pair per delivery).
    tracing:
        Sampled span tracing (one dict probe per dispatch; spans only on
        sampled traces).
    trace_sample_every:
        Trace 1 source tuple in this many (the first is always traced).
    sampler_interval_s:
        Backpressure sampling period for the threaded engine; ``None``
        disables the sampler thread.
    max_events:
        Event-log bound; excess events are counted, not stored.
    """

    metrics: bool = True
    timing: bool = False
    tracing: bool = False
    trace_sample_every: int = 128
    sampler_interval_s: float | None = None
    max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.trace_sample_every < 1:
            raise ValueError("trace_sample_every must be >= 1")
        if self.sampler_interval_s is not None and self.sampler_interval_s <= 0:
            raise ValueError("sampler_interval_s must be positive")


class Telemetry:
    """One run's worth of metrics, traces, and events.

    Pass an instance to either engine (``telemetry=...``); it may be
    shared across runs (metrics accumulate, trace state is reset at each
    ``run_finished``).
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry()
        self.events = EventLog(max_events=self.config.max_events)
        self.tracer = Tracer(
            self.events, sample_every=self.config.trace_sample_every
        )
        self._t0 = time.perf_counter()
        self.tracer._clock = self.now
        if self.config.metrics:
            # Dropped telemetry events are themselves a telemetry signal:
            # a saturated event log silently losing data is exactly what
            # an operator scraping /metrics needs to notice.
            self.metrics.register_collector(
                lambda: (
                    ("repro_events_dropped_total", "counter", {},
                     self.events.n_dropped),
                )
            )

    def now(self) -> float:
        """Seconds since this telemetry object was created (monotonic)."""
        return time.perf_counter() - self._t0

    # -- wiring ----------------------------------------------------------

    def attach_graph(self, graph: "Graph", fusion=None) -> None:
        """Expose a graph's own counters through the registry.

        Registers one collector that reads every operator's counter
        attributes at export time (single source of truth), installs
        per-dispatch latency histograms when ``timing`` is on, and gives
        telemetry-aware operators (``bind_telemetry`` hook, e.g. the
        sync controller) a reference to this object.
        """
        from .operators import Source

        pe_of: dict[str, str] = {}
        if fusion is not None:
            for pe in fusion.pes:
                for op in pe.operators:
                    pe_of[op.name] = str(pe.pe_id)

        operators = list(graph)

        def collect() -> Iterator[tuple]:
            return operator_metric_samples(operators, pe_of)

        if self.config.metrics:
            self.metrics.register_collector(collect)
            # End-to-end observability on terminal operators: sinks get
            # an ingest→sink latency histogram and a watermark tracker
            # driven from Operator._dispatch_inner (a single attribute
            # check per tuple when not installed).
            for op in operators:
                if op.n_outputs != 0 or isinstance(op, Source):
                    continue
                op._e2e_hist = self.metrics.histogram(
                    "repro_e2e_latency_seconds", sink=op.name
                )
                tracker = WatermarkTracker()
                op._watermark = tracker
                self.metrics.gauge(
                    "repro_watermark_lag_seconds", tracker.lag, sink=op.name
                )
                self.metrics.gauge(
                    "repro_clock_skew_seconds", tracker.skew, sink=op.name
                )
        if self.config.timing:
            from .profiling import enable_profiling

            enable_profiling(operators)
            for op in operators:
                if isinstance(op, Source):
                    continue
                op._latency_hist = self.metrics.histogram(
                    "repro_dispatch_seconds", operator=op.name
                )
        for op in operators:
            hook = getattr(op, "bind_telemetry", None)
            if hook is not None:
                hook(self)

    def attach_supervisor(self, supervisor) -> None:
        """Expose supervision counters and route its events here."""
        supervisor.telemetry = self
        stats = supervisor.stats

        def collect() -> Iterator[tuple]:
            for metric, table in (
                ("repro_failures_total", stats.failures),
                ("repro_retries_total", stats.retries),
                ("repro_skipped_tuples_total", stats.skipped_tuples),
                ("repro_restarts_total", stats.restarts),
                ("repro_recovery_seconds_total", stats.recovery_time_s),
            ):
                for name, value in table.items():
                    yield (metric, "counter", {"operator": name}, value)

        if self.config.metrics:
            self.metrics.register_collector(collect)

    def merge_shard(
        self,
        process_label: str,
        samples: Iterable[tuple],
    ) -> None:
        """Merge a per-process metrics shard into this registry.

        The multi-process engine's workers each run their own
        :class:`MetricsRegistry`; at shutdown every worker ships
        ``registry → collect → (name, kind, labels, value)`` rows back to
        the coordinator, which re-exposes them here with a
        ``process=<label>`` label.  The shard is a *labelled breakdown*
        of the run totals (the coordinator's own operator collector
        reports the authoritative per-operator totals after worker state
        is merged back) — aggregations across processes should filter on
        the ``process`` label rather than sum both views.
        """
        frozen = [
            (name, kind, dict(labels, process=process_label), value)
            for name, kind, labels, value in samples
        ]
        if self.config.metrics and frozen:
            self.metrics.register_collector(lambda: iter(frozen))

    # -- run lifecycle ---------------------------------------------------

    def run_started(self, *, engine: str, graph: str) -> None:
        self.events.append({
            "ts": self.now(), "kind": "run_start",
            "engine": engine, "graph": graph,
            "unix_time": time.time(),
        })

    def run_finished(self, stats=None, **extra: Any) -> None:
        event = {"ts": self.now(), "kind": "run_end", **extra}
        if stats is not None:
            event["wall_time_s"] = stats.wall_time_s
            event["throughput_tps"] = stats.throughput()
        self.events.append(event)
        self.tracer.reset()

    # -- exporters -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text-format export of every metric."""
        return self.metrics.to_prometheus()

    def write_jsonl(self, path) -> int:
        """Write the event log (plus a final metrics snapshot) as JSONL.

        Returns the number of lines written.  Values that are not
        JSON-native (numpy scalars) are coerced via ``float``/``str``.
        """
        events = self.events.events()
        events.append({
            "ts": self.now(), "kind": "metrics",
            "n_dropped_events": self.events.n_dropped,
            "metrics": self.metrics.snapshot(),
        })

        def default(obj):
            try:
                return float(obj)
            except (TypeError, ValueError):
                return str(obj)

        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event, default=default) + "\n")
        return len(events)

    def render_report(self, **kwargs) -> str:
        """Human-readable run report (see ``telemetry_report``)."""
        from .telemetry_report import render_report

        events = self.events.events()
        events.append({
            "ts": self.now(), "kind": "metrics",
            "metrics": self.metrics.snapshot(),
        })
        return render_report(events, **kwargs)


def load_events(path, *, strict: bool = False) -> list[dict[str, Any]]:
    """Load a JSONL event log written by :meth:`Telemetry.write_jsonl`.

    Real logs get truncated (a killed run, a partial upload), so by
    default unparseable lines are skipped and surfaced as a synthetic
    ``{"kind": "load_error", "n_bad_lines": N}`` event appended at the
    end — reports can warn without the loader throwing away the ~all
    good lines around one torn write.  ``strict=True`` restores the
    raise-on-garbage behaviour.
    """
    events = []
    n_bad = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise
                n_bad += 1
                continue
            if not isinstance(event, dict):
                if strict:
                    raise TypeError(f"event line is not an object: {line!r}")
                n_bad += 1
                continue
            events.append(event)
    if n_bad:
        events.append({"kind": "load_error", "n_bad_lines": n_bad})
    return events


# ---------------------------------------------------------------------------
# Shared counter snapshot (RunStats is a thin view over this)
# ---------------------------------------------------------------------------


def operator_metric_samples(
    operators: Iterable["Operator"],
    pe_of: Mapping[str, str] | None = None,
) -> Iterator[tuple]:
    """Metric samples for a set of operators: the one collector body.

    Yields ``(name, kind, labels, value)`` rows for every operator's own
    counters (plus the Split/Throttle/Batcher specials).  Used both by
    :meth:`Telemetry.attach_graph` (coordinator-side collector) and by
    multi-process workers building their per-process metrics shard — the
    sample schema is identical on both sides by construction.
    """
    from .batcher import Batcher
    from .split import Split
    from .throttle import Throttle

    pe_of = pe_of or {}
    for op in operators:
        labels = {"operator": op.name}
        if op.name in pe_of:
            labels["pe"] = pe_of[op.name]
        yield ("repro_tuples_in_total", "counter", labels, op.tuples_in)
        yield ("repro_tuples_out_total", "counter", labels, op.tuples_out)
        yield ("repro_punct_out_total", "counter", labels, op.punct_out)
        if op._profiled:
            yield ("repro_exclusive_seconds_total", "counter",
                   labels, op.processing_time_s)
        if isinstance(op, Split):
            for t, n in enumerate(op.sent_per_target):
                yield ("repro_split_sent_total", "counter",
                       dict(labels, target=str(t)), int(n))
        if isinstance(op, Throttle):
            yield ("repro_throttle_dropped_total", "counter",
                   labels, op.n_dropped)
            yield ("repro_throttle_achieved_hz", "gauge",
                   labels, op.achieved_rate_hz())
        if isinstance(op, Batcher):
            yield ("repro_batch_achieved_size", "gauge",
                   labels, op.achieved_batch_size())
            for reason, n in op.flush_counts.items():
                yield ("repro_batch_flush_total", "counter",
                       dict(labels, reason=reason), int(n))
        # Resilience counters are duck-typed: quarantining operators and
        # network sources expose ``n_quarantined``, the circuit breaker
        # ``n_shed``/``n_trips``, reconnecting sources ``n_reconnects``.
        n_quarantined = getattr(op, "n_quarantined", None)
        if n_quarantined is not None:
            yield ("repro_dlq_total", "counter", labels, int(n_quarantined))
        n_shed = getattr(op, "n_shed", None)
        if n_shed is not None:
            yield ("repro_shed_total", "counter", labels, int(n_shed))
            yield ("repro_breaker_trips_total", "counter",
                   labels, int(getattr(op, "n_trips", 0)))
            yield ("repro_breaker_open", "gauge", labels,
                   1.0 if getattr(op, "state", "closed") == "open" else 0.0)
        n_reconnects = getattr(op, "n_reconnects", None)
        if n_reconnects is not None:
            yield ("repro_source_reconnects_total", "counter",
                   labels, int(n_reconnects))


def operator_counter_snapshot(graph: "Graph") -> dict[str, dict[str, Any]]:
    """Read every operator's counters once.

    This is the *single* read path for per-operator counters: both
    :meth:`RunStats.collect <repro.streams.engine.RunStats.collect>` and
    the registry collectors installed by :meth:`Telemetry.attach_graph`
    read the same operator attributes — counts are never kept twice.
    """
    from .operators import Source

    snap: dict[str, dict[str, Any]] = {
        "tuples_in": {}, "tuples_out": {}, "source_tuples": {},
        "processing_time_s": {},
    }
    for op in graph:
        snap["tuples_in"][op.name] = op.tuples_in
        snap["tuples_out"][op.name] = op.tuples_out
        if op._profiled:
            snap["processing_time_s"][op.name] = op.processing_time_s
        if isinstance(op, Source):
            # tuples_out includes punctuation; sources count emitted
            # punctuation explicitly, so extra markers (window markers,
            # early EOS on one port) are not miscounted.
            snap["source_tuples"][op.name] = max(
                op.tuples_out - op.punct_out, 0
            )
    return snap
