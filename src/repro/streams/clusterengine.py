"""ClusterEngine: a multi-node TCP runtime completing the engine quartet.

The process runtime scales the parallel PCA across the cores of one
machine; the paper's Figs 6–7 scale *out* — engines on separate hosts
exchanging sync tuples over the network.  :class:`ClusterEngine` is that
fourth runtime: a **coordinator** process keeps the sources, sinks and
control operators (split, sync controller) and places every other
operator on **engine hosts** — separate OS processes reached over real
TCP sockets speaking the length-prefixed framed protocol of
:mod:`repro.streams.wireproto`.  On localhost the hosts are spawned
processes (how the tests and ``python -m repro cluster`` run); the
protocol itself is host-agnostic.

Topology and transport
----------------------
The graph is cut into a star: every cross-host edge is relayed through
the coordinator (the PCA application has no engine↔engine edges, and a
star keeps membership, eviction and punctuation injection in one
place).  Each host holds one :class:`~repro.streams.wireproto.
ReconnectingChannel` to the coordinator:

* tuples travel as ``to_wire`` dicts inside coalesced ``"tuples"``
  frames — numpy blocks cross as raw buffers, never pickled;
* the receive side decodes with ``from_wire(..., allow_pickle=False)``
  and the ``register_wire_type`` allowlist: socket bytes are untrusted
  (see ``docs/robustness.md``);
* outbound traffic on both sides goes through an **unbounded deque
  drained by a dedicated sender thread**, so neither end ever blocks on
  a socket write while the peer is itself mid-write (the classic TCP
  backpressure deadlock cycle);
* the host channel redials with the ``network_sources`` backoff budget
  and re-sends its hello, and the coordinator's accept loop
  re-associates the stream by host id — a network flap costs a counted
  reconnect, not the run.

Remote graph execution
----------------------
Each host rebuilds a *local* graph around its operators — a channel
source feeding a demultiplexer that routes inbound tuples (data, sync
control, punctuation) to the right (operator, port), and a relay sink
forwarding every off-host emission — and runs it under an unmodified
existing runtime (:class:`~repro.streams.engine.SynchronousEngine` or
:class:`~repro.streams.engine.ThreadedEngine`, per ``host_runtime``).
The SyncController's ring merges, membership/eviction/quorum and
late-rejoin reseeding run unchanged over the wire: the controller only
ever sees tuples on ports.

Completion and fault tolerance
------------------------------
Shutdown extends the drain protocol of the other runtimes with wire
counters: the coordinator finishes when its sources are done, its local
operators are closed, and every live host reports *quiesced* with
matching sent/received tuple counts in both directions (nothing in
flight on the sockets).  Only then does it send ``finish``; hosts reply
``done`` with their operators' final state (folded back into the
coordinator-side graph, exactly like the process runtime) plus their
telemetry shard, merged under an ``h<id>`` process label.

A host that dies is detected by the coordinator.  With
``tolerate_host_loss=True`` (the chaos scenarios and the CLI kill runs)
the coordinator injects punctuation on the dead host's routes so the
controller's punctuation contract holds, drops (and counts) traffic
bound for it, and lets the SyncController's staleness eviction + quorum
carry the run — the paper's degraded-mode story over a real wire.
Without the flag a host death fails fast, matching the other engines.

After a death or a flap, frames that were in the kernel's socket
buffers may be lost (delivery is at-least-once across reconnects, see
:class:`~repro.streams.wireproto.ReconnectingChannel`); the coordinator
then accepts completion once every surviving counter has been frozen
for a grace period and records the residue in
``cluster_stats["tuples_lost"]``.
"""

from __future__ import annotations

import ipaddress
import os
import signal
import socket
import threading
import time
import traceback
import uuid
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from .engine import RunStats, SynchronousEngine, ThreadedEngine, _SourceRunner
from .graph import Graph
from .operators import Operator, Sink, Source
from .procengine import _sanitize, _strip_payload
from .shm import safe_mp_context
from .split import Split
from .supervision import OperatorFailure, Supervisor
from .telemetry import Telemetry, operator_metric_samples
from .tuples import (
    StreamTuple,
    _decode_value,
    _encode_value,
    from_wire,
    reseed_sequence,
    to_wire,
)
from .wireproto import (
    FrameError,
    ReconnectingChannel,
    recv_frame,
    send_frame,
    wait_readable,
)

__all__ = ["ClusterEngine"]

#: Coordinator location marker in route tables (host locations are ints).
_COORD = "c"

#: Tuples per coalesced ``"tuples"`` frame.
_BATCH_MAX = 64

def _is_loopback_bind(host: str) -> bool:
    """Whether ``host`` binds only the loopback interface.

    ``""``/``"0.0.0.0"``/``"::"`` bind every interface; hostnames other
    than ``localhost`` are conservatively treated as non-loopback rather
    than resolved (resolution is racy and the answer gates a trust
    decision).
    """
    if host == "localhost":
        return True
    if not host:
        return False
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


#: Default redial budget for host channels (≈ 4 s worst case), matching
#: the reconnecting network sources' shape.
_DEFAULT_RECONNECT = {
    "max_retries": 10,
    "base_s": 0.05,
    "cap_s": 1.0,
    "jitter": 0.3,
}


# ---------------------------------------------------------------------------
# Host-side proxy operators
# ---------------------------------------------------------------------------


class _ChannelSource(Source):
    """Local source materializing the coordinator's frame stream.

    Every inbound tuple is wrapped in a control envelope carrying its
    demux output index: engines drive sources through ``submit(tup, 0)``
    only, so routing happens one hop downstream in :class:`_Demux`.
    Decoding is strict — ``allow_pickle=False`` — because these bytes
    arrived over TCP.
    """

    def __init__(
        self,
        name: str,
        channel: ReconnectingChannel,
        portmap: dict[tuple[str, int], int],
        counters: dict[str, int],
        stop: threading.Event,
    ) -> None:
        super().__init__(name, n_outputs=1)
        self._channel = channel
        self._portmap = portmap
        self._counters = counters
        self._stop = stop

    def generate(self):
        while not self._stop.is_set():
            msg = self._channel.recv(timeout_s=0.05)
            if msg is None:
                continue
            t = msg.get("t")
            if t == "tuples":
                for dst, port, wire in msg["items"]:
                    tup = from_wire(wire, allow_pickle=False)
                    out = self._portmap[(dst, int(port))]
                    self._counters["received"] += 1
                    yield StreamTuple.control(out=out, tup=tup)
            elif t == "finish":
                return


class _Demux(Operator):
    """Unwrap channel envelopes onto the right local (operator, port)."""

    def __init__(self, name: str, n_outputs: int) -> None:
        super().__init__(name, n_inputs=1, n_outputs=max(1, n_outputs))

    def process(self, tup: StreamTuple, port: int) -> None:
        self.submit(tup.payload["tup"], tup.payload["out"])


class _RelaySink(Sink):
    """Forward every off-host emission (and its punctuation) upstream.

    One input port per outgoing cross-host edge; tuples are wire-encoded
    here (with schema descriptors, so the receiver's registry never has
    to be warm) and drained to the socket by the host's sender thread.
    """

    def __init__(
        self,
        name: str,
        targets: list[tuple[str, int]],
        outq: deque,
        out_cv: threading.Condition,
    ) -> None:
        super().__init__(name, n_inputs=max(1, len(targets)))
        self._targets = targets
        self._outq = outq
        self._out_cv = out_cv

    def _forward(self, port: int, tup: StreamTuple) -> None:
        dst_name, dst_port = self._targets[port]
        item = (dst_name, dst_port, to_wire(tup, describe_schema=True))
        with self._out_cv:
            self._outq.append(item)
            self._out_cv.notify()

    def consume(self, tup: StreamTuple, port: int) -> None:
        self._forward(port, tup)

    def on_punctuation(self, port: int) -> None:
        # Sinks normally absorb punctuation; a relay must pass the
        # end-of-stream marker through so the remote consumer's
        # punctuation contract holds across the wire.
        self._forward(port, StreamTuple.punctuation())


# ---------------------------------------------------------------------------
# Host process
# ---------------------------------------------------------------------------


@dataclass
class _HostSpec:
    """Everything an engine host needs, picklable under any start method.

    The spec itself crosses the trusted ``multiprocessing`` spawn
    channel; only *tuple traffic* crosses TCP.
    """

    host_id: int
    addr: tuple[str, int]
    run_id: str
    ops: list[Operator]
    #: op name -> out port -> [(dst_loc, dst_name, dst_port)]
    routes: dict[str, dict[int, list[tuple[Any, str, int]]]]
    #: (op name, in port) pairs fed from off-host, in demux-port order.
    inbound: list[tuple[str, int]]
    host_runtime: str = "synchronous"
    policies: dict[str, Any] = field(default_factory=dict)
    metrics: bool = True
    timeout_s: float = 300.0
    flap_after: int | None = None
    reconnect: dict[str, Any] = field(default_factory=dict)


def _host_main(spec: _HostSpec) -> None:
    """Engine-host entry point (top-level: importable under spawn)."""
    reseed_sequence(spec.host_id + 1)
    channel = ReconnectingChannel(
        spec.addr,
        {"t": "hello", "host": spec.host_id, "run": spec.run_id},
        flap_after=spec.flap_after,
        seed=spec.host_id,
        **{**_DEFAULT_RECONNECT, **spec.reconnect},
    )
    try:
        channel.connect()
        _host_loop(spec, channel)
    except BaseException as exc:
        try:
            channel.send({
                "t": "error",
                "host": spec.host_id,
                "error": repr(exc),
                "traceback": traceback.format_exc(),
            })
        except Exception:
            pass
        raise SystemExit(1)
    finally:
        channel.close()


def _build_host_graph(
    spec: _HostSpec,
    channel: ReconnectingChannel,
    outq: deque,
    out_cv: threading.Condition,
    counters: dict[str, int],
    stop: threading.Event,
) -> Graph:
    hid = spec.host_id
    ops_by_name = {op.name: op for op in spec.ops}
    portmap = {key: i for i, key in enumerate(spec.inbound)}

    relay_targets: list[tuple[str, int]] = []
    local_edges: list[tuple[Operator, int, Operator, int]] = []
    relay_edges: list[tuple[Operator, int, int]] = []
    for op in spec.ops:
        for out_port, dests in spec.routes.get(op.name, {}).items():
            for dst_loc, dst_name, dst_port in dests:
                if dst_loc == hid:
                    local_edges.append(
                        (op, out_port, ops_by_name[dst_name], dst_port)
                    )
                else:
                    relay_edges.append((op, out_port, len(relay_targets)))
                    relay_targets.append((dst_name, dst_port))

    g = Graph(f"host{hid}")
    src = _ChannelSource(
        f"__chan_h{hid}", channel, portmap, counters, stop
    )
    demux = _Demux(f"__demux_h{hid}", len(spec.inbound))
    g.add(src)
    g.add(demux)
    for op in spec.ops:
        g.add(op)
    g.connect(src, demux)
    for (dst_name, dst_port), i in portmap.items():
        g.connect(
            demux, ops_by_name[dst_name], out_port=i, in_port=dst_port
        )
    for op, out_port, dst, dst_port in local_edges:
        g.connect(op, dst, out_port=out_port, in_port=dst_port)
    if relay_targets:
        relay = _RelaySink(f"__relay_h{hid}", relay_targets, outq, out_cv)
        g.add(relay)
        for op, out_port, in_port in relay_edges:
            g.connect(op, relay, out_port=out_port, in_port=in_port)
    return g


def _host_thread_failed(host_id: int, where: str) -> None:
    """Kill the host process after a daemon-thread failure.

    The sender/status threads are the host's only voice to the
    coordinator.  If one dies (typically ``channel.send`` exhausting its
    redial budget) while the engine thread keeps running, the host turns
    into a zombie: it keeps computing, its output silently never leaves
    the process, and the coordinator sees a live, never-quiescing host
    until the run timeout.  Exiting the whole process instead hands the
    failure to the coordinator's death detection, which either fails the
    run fast or (``tolerate_host_loss=True``) degrades it cleanly.
    """
    traceback.print_exc()
    print(
        f"host{host_id}: {where} thread failed; exiting so the "
        f"coordinator's death detection takes over",
        flush=True,
    )
    os._exit(1)


def _host_sender_loop(
    channel: ReconnectingChannel,
    outq: deque,
    out_cv: threading.Condition,
    counters: dict[str, int],
    stop: threading.Event,
    host_id: int,
) -> None:
    try:
        while True:
            batch: list = []
            with out_cv:
                while outq and len(batch) < _BATCH_MAX:
                    batch.append(outq.popleft())
                if not batch:
                    if stop.is_set():
                        return
                    out_cv.wait(timeout=0.05)
                    continue
            channel.send({"t": "tuples", "items": batch})
            counters["sent"] += len(batch)
    except BaseException:
        _host_thread_failed(host_id, "sender")


def _host_loop(spec: _HostSpec, channel: ReconnectingChannel) -> None:
    outq: deque = deque()
    out_cv = threading.Condition()
    counters = {"received": 0, "sent": 0}
    stop = threading.Event()
    sender_stop = threading.Event()

    graph = _build_host_graph(spec, channel, outq, out_cv, counters, stop)
    supervisor = (
        Supervisor(policies=spec.policies) if spec.policies else None
    )
    if spec.host_runtime == "threaded":
        engine: Any = ThreadedEngine(graph, supervisor=supervisor)
    else:
        engine = SynchronousEngine(graph, supervisor=supervisor)

    sender = threading.Thread(
        target=_host_sender_loop,
        args=(channel, outq, out_cv, counters, sender_stop, spec.host_id),
        name=f"host{spec.host_id}-sender",
        daemon=True,
    )
    sender.start()

    def _status_loop() -> None:
        # Heartbeat: quiesce state + cumulative counters.  The counters
        # lag the sockets by design; the coordinator waits for equality.
        try:
            last = None
            while not stop.wait(0.03):
                state = (
                    all(op.is_closed for op in spec.ops),
                    counters["received"],
                    counters["sent"],
                )
                if state == last:
                    continue
                last = state
                channel.send({
                    "t": "status",
                    "host": spec.host_id,
                    "quiesced": state[0],
                    "received": state[1],
                    "sent": state[2],
                })
        except BaseException:
            _host_thread_failed(spec.host_id, "status")

    status = threading.Thread(
        target=_status_loop, name=f"host{spec.host_id}-status", daemon=True
    )
    status.start()

    try:
        if isinstance(engine, SynchronousEngine):
            engine.run()
        else:
            engine.run(timeout_s=spec.timeout_s)
    finally:
        stop.set()
        status.join(timeout=2.0)

    # Drain the outbound queue, then retire the sender before touching
    # the channel from this thread.
    deadline = time.perf_counter() + 30.0
    while outq and time.perf_counter() < deadline:
        time.sleep(0.005)
    sender_stop.set()
    with out_cv:
        out_cv.notify_all()
    sender.join(timeout=5.0)

    payloads = {
        op.name: {
            k: _encode_value(v)
            for k, v in _strip_payload(dict(op.__dict__)).items()
        }
        for op in spec.ops
    }
    shard = (
        [
            [name, kind, dict(labels), float(value)]
            for name, kind, labels, value in operator_metric_samples(spec.ops)
        ]
        if spec.metrics
        else []
    )
    channel.send({
        "t": "done",
        "host": spec.host_id,
        "ops": payloads,
        "metrics": shard,
        "counters": dict(counters),
        "transport": channel.counters(),
    })


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _HostLink:
    """Coordinator-side state for one engine host."""

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.proc: Any = None
        self.sock: socket.socket | None = None
        self.cv = threading.Condition()
        self.outq: deque = deque()
        self.sent_to = 0
        self.received_from = 0
        self.report: dict[str, Any] = {}
        self.done: dict[str, Any] | None = None
        self.dead = False
        self.reconnects = 0
        self.dropped = 0
        self.death_seen: float | None = None
        self._ever_attached = False

    def enqueue(self, item: Any) -> None:
        with self.cv:
            if self.dead:
                self.dropped += 1
                return
            self.outq.append(item)
            self.cv.notify()

    def attach(self, sock: socket.socket) -> None:
        with self.cv:
            if self.sock is not None:
                try:
                    self.sock.close()
                except OSError:  # pragma: no cover - already dead
                    pass
            if self._ever_attached:
                # Any attach after the first is a reconnect, whether or
                # not the sender already tore down the dead socket (the
                # EPIPE may land before or after the redial arrives).
                self.reconnects += 1
            self._ever_attached = True
            self.sock = sock
            self.cv.notify_all()

    def mark_dead(self) -> int:
        """Flag the host dead; returns the dropped outbound backlog."""
        with self.cv:
            self.dead = True
            n = len(self.outq)
            self.dropped += n
            self.outq.clear()
            self.cv.notify_all()
        return n


class ClusterEngine:
    """Coordinator of the multi-node TCP runtime.

    Parameters
    ----------
    graph:
        The application graph — unchanged operator code runs under all
        four engines.
    main_ops:
        Operator names pinned to the coordinator (sources and sinks are
        always pinned).  Every unpinned operator is placed on an engine
        host, round-robin over ``n_hosts``.
    n_hosts:
        Engine-host process count; default one host per unpinned
        operator (the parallel-PCA runner passes ``n_hosts`` = engine
        count so each PCA engine gets its own host).
    host_runtime:
        Runtime each host runs its local graph under:
        ``"synchronous"`` (default; deterministic, the parity
        configuration) or ``"threaded"``.
    bind_host / port:
        Coordinator listen address; port 0 picks a free port.
    tolerate_host_loss:
        ``False`` (default): a dying host fails the run fast, like a
        worker death without a restart policy.  ``True``: the run
        degrades — punctuation is injected on the dead host's routes,
        its traffic is dropped (counted), and the SyncController's
        eviction/quorum machinery owns correctness.
    flap_hosts:
        Chaos hook: ``{host_id: n_frames}`` makes that host's channel
        sever itself once after receiving ``n_frames`` frames,
        exercising the reconnect path.
    reconnect:
        Overrides for the hosts' redial budget
        (``max_retries``/``base_s``/``cap_s``/``jitter``).
    supervisor / telemetry / mp_context:
        As in the other engines.  Host-side operator failures surface as
        :class:`OperatorFailure`; host metrics shards merge back under
        ``process="h<id>"`` labels.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        main_ops: Iterable[str] = (),
        n_hosts: int | None = None,
        host_runtime: str = "synchronous",
        bind_host: str = "127.0.0.1",
        port: int = 0,
        tolerate_host_loss: bool = False,
        flap_hosts: dict[int, int] | None = None,
        reconnect: dict[str, Any] | None = None,
        supervisor: Supervisor | None = None,
        telemetry: Telemetry | None = None,
        mp_context: str | None = None,
    ) -> None:
        graph.validate()
        if host_runtime not in ("synchronous", "threaded"):
            raise ValueError(
                f"host_runtime must be 'synchronous' or 'threaded', "
                f"got {host_runtime!r}"
            )
        self.graph = graph
        self.host_runtime = host_runtime
        self.bind_host = bind_host
        #: Pickled ``done`` payload values are only trusted on a
        #: loopback bind: the hello is authenticated by nothing stronger
        #: than the run_id, which travels in cleartext on the same
        #: connection — on a shared network an on-path observer could
        #: replay it and deliver a pickle.
        self._pickle_ok = _is_loopback_bind(bind_host)
        if not self._pickle_ok:
            warnings.warn(
                f"ClusterEngine bound to non-loopback {bind_host!r}: "
                f"pickled host-state payloads will be refused "
                f"(cleartext run_id is not an authentication boundary); "
                f"operator state that lacks a registered wire form will "
                f"fail to fold back",
                RuntimeWarning,
                stacklevel=2,
            )
        self.port = port
        self.tolerate_host_loss = tolerate_host_loss
        self.flap_hosts = dict(flap_hosts or {})
        self.reconnect = dict(reconnect or {})
        self.supervisor = supervisor
        self.telemetry = telemetry
        self._ctx = safe_mp_context(mp_context)
        if telemetry is not None:
            telemetry.attach_graph(graph)
            if supervisor is not None:
                telemetry.attach_supervisor(supervisor)

        known = {op.name for op in graph}
        self.main_ops = set(main_ops)
        unknown = self.main_ops - known
        if unknown:
            raise ValueError(
                f"main_ops name unknown operators: {sorted(unknown)}"
            )

        self._ops_by_name = {op.name: op for op in graph}
        unpinned = [
            op
            for op in graph.operators
            if not (
                isinstance(op, (Source, Sink)) or op.name in self.main_ops
            )
        ]
        if not unpinned:
            raise ValueError(
                "cluster runtime has no operators to place on hosts; "
                "use the synchronous/threaded runtime instead"
            )
        if n_hosts is None:
            n_hosts = len(unpinned)
        if not 1 <= n_hosts:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        n_hosts = min(n_hosts, len(unpinned))
        self._host_ops: dict[int, list[Operator]] = {
            hid: [] for hid in range(n_hosts)
        }
        self._loc_of: dict[str, Any] = {
            op.name: _COORD for op in graph.operators
        }
        for i, op in enumerate(unpinned):
            hid = i % n_hosts
            self._host_ops[hid].append(op)
            self._loc_of[op.name] = hid
        self._local_ops = [
            op for op in graph.operators if self._loc_of[op.name] == _COORD
        ]

        self._links: dict[int, _HostLink] = {
            hid: _HostLink(hid) for hid in self._host_ops
        }
        self._lock = threading.RLock()
        self._work: deque = deque()
        self._draining = False
        self._stop = threading.Event()
        self._errors: list[BaseException] = []
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._run_id = ""
        self._host_deaths = 0
        #: Wire/transport totals, populated at shutdown.
        self.cluster_stats: dict[str, int] = {}

    # -- placement views --------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return len(self._host_ops)

    def _routes_for(
        self, op: Operator
    ) -> dict[int, list[tuple[Any, str, int]]]:
        routes: dict[int, list[tuple[Any, str, int]]] = {}
        for port in range(op.n_outputs):
            entries = [
                (self._loc_of[dst.name], dst.name, in_port)
                for dst, in_port in self.graph.successors(op, port)
            ]
            if entries:
                routes[port] = entries
        return routes

    def _inbound_for(self, hid: int) -> list[tuple[str, int]]:
        pairs: set[tuple[str, int]] = set()
        for op in self.graph.operators:
            src_loc = self._loc_of[op.name]
            for port in range(op.n_outputs):
                for dst, in_port in self.graph.successors(op, port):
                    if self._loc_of[dst.name] == hid and src_loc != hid:
                        pairs.add((dst.name, in_port))
        return sorted(pairs)

    def _build_spec(self, hid: int, addr: tuple[str, int]) -> _HostSpec:
        ops = self._host_ops[hid]
        policies = {}
        if self.supervisor is not None:
            policies = {
                op.name: self.supervisor.policies[op.name]
                for op in ops
                if op.name in self.supervisor.policies
            }
        return _HostSpec(
            host_id=hid,
            addr=addr,
            run_id=self._run_id,
            ops=[_sanitize(op) for op in ops],
            routes={op.name: self._routes_for(op) for op in ops},
            inbound=self._inbound_for(hid),
            host_runtime=self.host_runtime,
            policies=policies,
            metrics=(
                self.telemetry is not None and self.telemetry.config.metrics
            ),
            timeout_s=self._timeout_s,
            flap_after=self.flap_hosts.get(hid),
            reconnect=self.reconnect,
        )

    # -- local dispatch ---------------------------------------------------

    def _deliver(self, dst: Operator, tup: StreamTuple, port: int) -> None:
        if self.supervisor is not None:
            self.supervisor.dispatch(dst, tup, port)
        else:
            dst._dispatch(tup, port)

    def _local_dispatch(
        self, dst: Operator, tup: StreamTuple, port: int
    ) -> None:
        """FIFO run-to-quiescence dispatch, safe across threads.

        Source threads and per-connection receiver threads all feed the
        same work deque under one re-entrant lock; nested emissions
        during a drain append and return, preserving SynchronousEngine's
        breadth-first order for the coordinator-local subgraph.
        """
        with self._lock:
            self._work.append((dst, port, tup))
            if self._draining:
                return
            self._draining = True
            try:
                while self._work:
                    d, p, t = self._work.popleft()
                    self._deliver(d, t, p)
            finally:
                self._draining = False

    def _send_tuple(
        self, loc: int, dst_name: str, dst_port: int, tup: StreamTuple
    ) -> None:
        self._links[loc].enqueue(
            (dst_name, dst_port, to_wire(tup, describe_schema=True))
        )

    def _wire_local(self) -> None:
        for op in self._local_ops:
            routes = self._routes_for(op)

            def emit(
                tup: StreamTuple, port: int, _routes: dict = routes
            ) -> None:
                for dst_loc, dst_name, dst_port in _routes.get(port, ()):
                    if dst_loc == _COORD:
                        self._local_dispatch(
                            self._ops_by_name[dst_name], tup, dst_port
                        )
                    else:
                        self._send_tuple(dst_loc, dst_name, dst_port, tup)

            op.bind(emit)
            if isinstance(op, Split):
                op.set_load_probe(self._make_probe(op))

    def _make_probe(self, split: Split):
        def probe(port: int) -> int:
            succ = self.graph.successors(split, port)
            if not succ:
                return 0
            loc = self._loc_of[succ[0][0].name]
            if loc == _COORD:
                return 0
            return len(self._links[loc].outq)

        return probe

    # -- sockets ----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                hello = recv_frame(conn)
            except Exception:
                # The listener is the untrusted boundary: one garbage or
                # hostile connection must never take down the accept
                # thread (hosts could then never redial after a flap).
                # decode_frame maps malformed bytes to FrameError, but
                # nothing short of a broad except makes that guarantee
                # structural.
                conn.close()
                continue
            if (
                not hello
                or hello.get("t") != "hello"
                or hello.get("run") != self._run_id
                or hello.get("host") not in self._links
            ):
                # Wrong run id or malformed hello: not our host.
                conn.close()
                continue
            # Blocking from here on; the receiver polls with select so
            # the sender thread's sendall never hits a socket timeout.
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = self._links[hello["host"]]
            link.attach(conn)
            t = threading.Thread(
                target=self._receiver_loop,
                args=(link, conn),
                name=f"cluster-recv-h{link.host_id}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
            if self.telemetry is not None:
                self.telemetry.events.append({
                    "ts": self.telemetry.now(),
                    "kind": "cluster_host_connected",
                    "host": link.host_id,
                    "reconnects": link.reconnects,
                })

    def _receiver_loop(self, link: _HostLink, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                if not wait_readable(conn, 0.2):
                    continue
                try:
                    msg = recv_frame(conn)
                except (ConnectionError, FrameError, OSError):
                    return  # reconnect (or death detection) takes over
                if msg is None:
                    return
                self._handle(link, msg)
        except BaseException as exc:  # pragma: no cover - defensive
            self._errors.append(exc)
            self._stop.set()

    def _handle(self, link: _HostLink, msg: dict) -> None:
        t = msg.get("t")
        if t == "tuples":
            for dst, port, wire in msg["items"]:
                tup = from_wire(wire, allow_pickle=False)
                link.received_from += 1
                loc = self._loc_of[dst]
                if loc == _COORD:
                    self._local_dispatch(
                        self._ops_by_name[dst], tup, int(port)
                    )
                else:
                    # Star relay for host→host edges (unused by the PCA
                    # app, but the protocol supports arbitrary cuts).
                    self._links[loc].enqueue((dst, int(port), wire))
        elif t == "status":
            link.report = msg
        elif t == "done":
            link.report = {
                "quiesced": True,
                "received": msg["counters"]["received"],
                "sent": msg["counters"]["sent"],
            }
            link.done = msg
        elif t == "error":
            self._errors.append(
                OperatorFailure(
                    f"host{link.host_id}",
                    RuntimeError(msg.get("error", "host error")),
                    msg.get("traceback", ""),
                )
            )
            self._stop.set()

    def _sender_loop(self, link: _HostLink) -> None:
        pending: list = []
        while True:
            if not pending:
                with link.cv:
                    while link.outq and len(pending) < _BATCH_MAX:
                        pending.append(link.outq.popleft())
                    if not pending:
                        if self._stop.is_set() or link.dead:
                            return
                        link.cv.wait(timeout=0.05)
                        continue
            # Split pending into tuple batches and control frames,
            # preserving order.
            frames: list[tuple[dict, int]] = []
            batch: list = []
            for item in pending:
                if isinstance(item, dict):
                    if batch:
                        frames.append(({"t": "tuples", "items": batch}, len(batch)))
                        batch = []
                    frames.append((item, 0))
                else:
                    batch.append(item)
            if batch:
                frames.append(({"t": "tuples", "items": batch}, len(batch)))
            for i, (frame, n_tuples) in enumerate(frames):
                if not self._send_one(link, frame):
                    # Host declared dead mid-send: drop the remainder.
                    link.dropped += sum(n for _, n in frames[i:])
                    pending = []
                    break
                link.sent_to += n_tuples
            else:
                pending = []

    def _send_one(self, link: _HostLink, frame: dict) -> bool:
        while True:
            with link.cv:
                sock = link.sock
                while sock is None:
                    if link.dead or self._stop.is_set():
                        return False
                    link.cv.wait(timeout=0.1)
                    sock = link.sock
            try:
                send_frame(sock, frame)
                return True
            except OSError:
                with link.cv:
                    if link.sock is sock:
                        try:
                            sock.close()
                        except OSError:  # pragma: no cover
                            pass
                        link.sock = None
                # Loop: wait for the accept loop to attach a fresh
                # socket (host redial) or for death detection.

    # -- host lifecycle ---------------------------------------------------

    def kill_host(self, host_id: int) -> None:
        """SIGKILL an engine host (chaos/blackout hook)."""
        proc = self._links[host_id].proc
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)

    def _check_hosts(self) -> None:
        for hid, link in self._links.items():
            if link.done is not None or link.dead:
                continue
            proc = link.proc
            if proc is None or proc.is_alive():
                link.death_seen = None
                continue
            if proc.exitcode == 0:
                # Clean exit: the final "done" frame may still be in the
                # socket; give the receiver a grace window.
                if link.death_seen is None:
                    link.death_seen = time.perf_counter()
                if time.perf_counter() - link.death_seen < 5.0:
                    continue
            if not self.tolerate_host_loss:
                raise OperatorFailure(
                    f"host{hid}",
                    RuntimeError(
                        f"engine host exited with code {proc.exitcode}"
                    ),
                    "tolerate_host_loss=False",
                )
            self._host_deaths += 1
            dropped = link.mark_dead()
            if self.telemetry is not None:
                self.telemetry.events.append({
                    "ts": self.telemetry.now(),
                    "kind": "cluster_host_dead",
                    "host": hid,
                    "dropped": dropped,
                })
            # The dead host will never emit its punctuation; inject it on
            # every route out of its operators so the controller's and
            # sinks' punctuation contracts hold (eviction + quorum own
            # state correctness from here).
            for op in self._host_ops[hid]:
                for dests in self._routes_for(op).values():
                    for dst_loc, dst_name, dst_port in dests:
                        punct = StreamTuple.punctuation()
                        if dst_loc == _COORD:
                            self._local_dispatch(
                                self._ops_by_name[dst_name], punct, dst_port
                            )
                        elif not self._links[dst_loc].dead:
                            self._send_tuple(
                                dst_loc, dst_name, dst_port, punct
                            )

    def _live_links(self) -> list[_HostLink]:
        return [l for l in self._links.values() if not l.dead]

    def _links_quiet(self) -> tuple[bool, tuple]:
        """(all live hosts drained?, counter signature for grace logic).

        Counter comparisons are ``>=`` on purpose: reconnect retries can
        duplicate a frame (at-least-once), so a receiver may count more
        tuples than the sender believes it sent.
        """
        ok = True
        sig = []
        for link in self._live_links():
            rep = link.report
            drained = (
                bool(rep.get("quiesced"))
                and rep.get("received", -1) >= link.sent_to
                and link.received_from >= rep.get("sent", float("inf"))
                and not link.outq
            )
            ok = ok and drained
            sig.append((
                link.host_id,
                rep.get("quiesced"),
                rep.get("received"),
                rep.get("sent"),
                link.sent_to,
                link.received_from,
                len(link.outq),
            ))
        return ok, tuple(sig)

    # -- run --------------------------------------------------------------

    def run(self, *, timeout_s: float = 300.0) -> RunStats:
        """Execute to completion; raises on host/operator failure."""
        self._timeout_s = timeout_s
        self._run_id = uuid.uuid4().hex
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.port))
        listener.listen(len(self._links) + 2)
        listener.settimeout(0.2)
        self._listener = listener
        addr = (self.bind_host, listener.getsockname()[1])

        if self.telemetry is not None:
            self.telemetry.run_started(
                engine="cluster", graph=self.graph.name
            )

        start = time.perf_counter()
        accept = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        accept.start()
        senders = []
        for link in self._links.values():
            t = threading.Thread(
                target=self._sender_loop,
                args=(link,),
                name=f"cluster-send-h{link.host_id}",
                daemon=True,
            )
            t.start()
            senders.append(t)

        for hid, link in self._links.items():
            spec = self._build_spec(hid, addr)
            link.proc = self._ctx.Process(
                target=_host_main,
                args=(spec,),
                name=f"repro-host{hid}",
                daemon=True,
            )
            link.proc.start()

        self._wire_local()
        for op in self._local_ops:
            op.open()
        src_threads = [
            _SourceRunner(src, self._errors, self._stop)
            for src in self.graph.sources
        ]
        for t in src_threads:
            t.start()

        deadline = start + timeout_s
        stable: tuple[float, tuple] | None = None
        nudged = False
        lost = 0
        try:
            while True:
                if self._errors:
                    raise self._errors[0]
                self._check_hosts()
                links_ok, sig = self._links_quiet()
                sources_done = all(not t.is_alive() for t in src_threads)
                quiet = sources_done and all(
                    op.is_closed for op in self._local_ops
                )
                if quiet and links_ok:
                    break
                degraded = self._host_deaths > 0 or any(
                    l.reconnects for l in self._links.values()
                )
                if sources_done and degraded:
                    # Frames can be lost across a death or flap — and
                    # the loss can swallow end-of-stream punctuation, in
                    # which case no amount of waiting completes the run.
                    # Watch the *full* progress signature (wire counters
                    # plus local-operator closure and tuple counts); if
                    # it freezes for a grace period, first *nudge*:
                    # "finish" makes every host's channel source return,
                    # punctuating the host graph and, via the relays,
                    # the coordinator's operators.  A second frozen
                    # period means the residue is truly gone — accept
                    # completion and count it as lost.
                    now = time.perf_counter()
                    full_sig = (
                        sig,
                        tuple(op.is_closed for op in self._local_ops),
                        sum(op.tuples_in for op in self._local_ops),
                    )
                    if stable is None or stable[1] != full_sig:
                        stable = (now, full_sig)
                    elif now - stable[0] > 2.0:
                        if not nudged:
                            nudged = True
                            stable = None
                            for link in self._live_links():
                                link.enqueue({"t": "finish"})
                        else:
                            for link in self._live_links():
                                rep = link.report
                                lost += max(
                                    0,
                                    link.sent_to - rep.get("received", 0),
                                )
                                lost += max(
                                    0,
                                    rep.get("sent", 0) - link.received_from,
                                )
                            break
                else:
                    stable = None
                if time.perf_counter() > deadline:
                    alive = [
                        f"h{hid}"
                        for hid, l in self._links.items()
                        if l.proc is not None and l.proc.is_alive()
                    ]
                    raise RuntimeError(
                        f"graph {self.graph.name!r} did not finish within "
                        f"{timeout_s}s (hosts still running: {alive}, "
                        f"links: {sig})"
                    )
                time.sleep(0.002)

            # Global quiescence: tell every live host to finish and
            # collect final state.
            for link in self._live_links():
                link.enqueue({"t": "finish"})
            done_deadline = time.perf_counter() + 60.0
            while any(l.done is None for l in self._live_links()):
                if self._errors:
                    raise self._errors[0]
                self._check_hosts()
                if time.perf_counter() > done_deadline:
                    missing = [
                        l.host_id
                        for l in self._live_links()
                        if l.done is None
                    ]
                    raise RuntimeError(
                        f"hosts {missing} did not report final state"
                    )
                time.sleep(0.002)
        finally:
            self._stop.set()
            for link in self._links.values():
                with link.cv:
                    link.cv.notify_all()
            for t in src_threads + senders:
                t.join(timeout=2.0)
            for link in self._links.values():
                if link.proc is not None:
                    link.proc.join(timeout=5.0)
                    if link.proc.is_alive():  # pragma: no cover - hung
                        link.proc.terminate()
                with link.cv:
                    if link.sock is not None:
                        try:
                            link.sock.close()
                        except OSError:  # pragma: no cover
                            pass
                        link.sock = None
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
            accept.join(timeout=2.0)
            for t in self._threads:
                t.join(timeout=2.0)

        self._apply_done(lost)
        stats = RunStats.collect(
            self.graph, time.perf_counter() - start, self.supervisor
        )
        if self.telemetry is not None:
            self.telemetry.run_finished(stats)
        return stats

    # -- shutdown bookkeeping ---------------------------------------------

    def _apply_done(self, lost: int) -> None:
        """Fold host results back into coordinator-side objects.

        ``done`` payload values may carry pickled attributes; decoding
        them with ``allow_pickle=True`` is a deliberate trust decision —
        the frame arrived on a connection whose hello echoed this run's
        random ``run_id``, which only processes we spawned were given.
        That holds **only on a loopback bind**: the run_id travels in
        cleartext, so on a shared network it authenticates nothing.  A
        non-loopback engine therefore decodes with
        ``allow_pickle=False`` (set in ``__init__``, with a warning) and
        a pickled attribute raises ``WireDecodeError`` instead of
        executing.  Data-plane frames stay pickle-free regardless.
        """
        totals = {
            "hosts": len(self._links),
            "host_deaths": self._host_deaths,
            "reconnects": sum(
                l.reconnects for l in self._links.values()
            ),
            "tuples_to_hosts": sum(
                l.sent_to for l in self._links.values()
            ),
            "tuples_from_hosts": sum(
                l.received_from for l in self._links.values()
            ),
            "tuples_dropped": sum(
                l.dropped for l in self._links.values()
            ),
            "tuples_lost": lost,
            "frames_in": 0,
            "frames_out": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        for hid, link in self._links.items():
            msg = link.done
            if msg is None:
                continue
            for name, payload in msg["ops"].items():
                op = self._ops_by_name.get(name)
                if op is None:
                    continue
                state = {
                    k: _decode_value(v, allow_pickle=self._pickle_ok)
                    for k, v in payload.items()
                }
                op.__dict__.update(_strip_payload(state))
            if self.telemetry is not None and msg.get("metrics"):
                self.telemetry.merge_shard(
                    f"h{hid}",
                    [
                        (name, kind, labels, value)
                        for name, kind, labels, value in msg["metrics"]
                    ],
                )
            for key in ("frames_in", "frames_out", "bytes_in", "bytes_out"):
                totals[key] += msg.get("transport", {}).get(key, 0)
        self.cluster_stats = totals
