"""Typed stream tuples — the data currency of the engine.

InfoSphere Streams applications exchange "tuples, having the data
structure specified by the application" (Section III).  We model the same
idea: a :class:`StreamSchema` declares named, typed fields; a
:class:`StreamTuple` is a validated record flowing along a stream, tagged
as data / control / punctuation.  Control tuples implement the
synchronization messages of Section III-B; punctuation marks end-of-stream
(used for orderly shutdown and final-state flushes).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = [
    "FieldType",
    "StreamSchema",
    "TupleKind",
    "StreamTuple",
    "SchemaError",
    "UnknownSchemaError",
    "WireDecodeError",
    "register_schema",
    "register_wire_type",
    "lookup_schema",
    "schema_name",
    "to_wire",
    "from_wire",
    "reseed_sequence",
    "wire_stats",
    "reset_wire_stats",
    "stamp_event_time",
    "inherit_event_time",
]

_seq_counter = itertools.count()


def reseed_sequence(namespace: int, stride: int = 1 << 40) -> None:
    """Restart the global tuple-sequence counter in a disjoint band.

    Each process assigns tuple ``seq`` ids from its own module-level
    counter; without namespacing, a worker process and the coordinator
    would mint colliding ids.  The multi-process runtime calls this once
    per worker with its worker number, giving every process a private
    ``stride``-wide band (2^40 ids is unreachable within a run).
    """
    global _seq_counter
    if namespace < 0:
        raise ValueError(f"namespace must be >= 0, got {namespace}")
    _seq_counter = itertools.count(namespace * stride)


class SchemaError(TypeError):
    """A tuple payload does not match its declared schema."""


class UnknownSchemaError(SchemaError):
    """A wire message names a schema this process has not registered.

    Silently dropping the schema (the old behaviour) disabled validation
    and ``BLOCK_SCHEMA`` identity dispatch downstream without any
    signal — on a remote host with a different import order that is a
    correctness trap, not a convenience.  Senders that cannot guarantee
    the receiver's registry is warm should ship a descriptor
    (``to_wire(..., describe_schema=True)``) so the receiver can
    register the schema lazily instead of failing.
    """


class WireDecodeError(ValueError):
    """A wire payload value failed safe decoding.

    Raised for ``__wire__ == "dict"`` payloads naming a type outside the
    :func:`register_wire_type` allowlist, and for pickled payloads when
    the transport decodes with ``allow_pickle=False`` (the TCP cluster
    channels — unpickling bytes from a socket executes arbitrary code).
    Every rejection is counted in ``wire_stats()["rejected_payloads"]``.
    """


class FieldType(enum.Enum):
    """Field types supported by stream schemas."""

    FLOAT = "float"
    INT = "int"
    STRING = "str"
    VECTOR = "vector"  # 1-D float64 numpy array
    MATRIX = "matrix"  # 2-D float64 numpy array (a (k, d) micro-batch)
    OBJECT = "object"  # opaque payload (e.g. a serialized eigensystem)

    def check(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for this field type."""
        if self is FieldType.FLOAT:
            return isinstance(value, (float, int)) and not isinstance(value, bool)
        if self is FieldType.INT:
            return isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            )
        if self is FieldType.STRING:
            return isinstance(value, str)
        if self is FieldType.VECTOR:
            return isinstance(value, np.ndarray) and value.ndim == 1
        if self is FieldType.MATRIX:
            return isinstance(value, np.ndarray) and value.ndim == 2
        return True  # OBJECT


@dataclass(frozen=True)
class StreamSchema:
    """Ordered, named, typed fields of a stream.

    Example::

        OBS = StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT})
    """

    fields: Mapping[str, FieldType]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("schema must declare at least one field")
        for name, ftype in self.fields.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"invalid field name {name!r}")
            if not isinstance(ftype, FieldType):
                raise ValueError(f"field {name!r} has non-FieldType {ftype!r}")

    def validate(self, payload: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``payload`` matches exactly."""
        missing = set(self.fields) - set(payload)
        extra = set(payload) - set(self.fields)
        if missing or extra:
            raise SchemaError(
                f"payload fields mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for name, ftype in self.fields.items():
            if not ftype.check(payload[name]):
                raise SchemaError(
                    f"field {name!r} expects {ftype.value}, got "
                    f"{type(payload[name]).__name__}"
                )

    def __contains__(self, name: str) -> bool:
        return name in self.fields


class TupleKind(enum.Enum):
    """What a tuple means to the runtime."""

    DATA = "data"
    CONTROL = "control"
    PUNCTUATION = "punctuation"


@dataclass(frozen=True)
class StreamTuple:
    """One record on a stream.

    Attributes
    ----------
    payload:
        Field name → value; validated against ``schema`` when one is given.
    kind:
        Data / control / punctuation.
    seq:
        Globally-unique monotone sequence id (assigned automatically).
    event_ts:
        Event time (``time.time()`` epoch seconds) stamped at source
        ingest, or ``None`` for tuples without an event-time lineage
        (control traffic, punctuation).  Derived tuples — blocks, rows
        unbatched from a block, diagnostics — carry the *minimum* event
        time of their inputs, so at any sink the value is a low
        watermark: every contributing observation entered the pipeline
        at or after ``event_ts``.
    """

    payload: Mapping[str, Any] = field(default_factory=dict)
    kind: TupleKind = TupleKind.DATA
    schema: StreamSchema | None = None
    seq: int = field(default_factory=lambda: next(_seq_counter))
    event_ts: float | None = None

    def __post_init__(self) -> None:
        if self.schema is not None and self.kind is TupleKind.DATA:
            self.schema.validate(self.payload)

    @classmethod
    def data(
        cls, schema: StreamSchema | None = None, **payload: Any
    ) -> "StreamTuple":
        """A data tuple (validated against ``schema`` when provided)."""
        return cls(payload=payload, kind=TupleKind.DATA, schema=schema)

    @classmethod
    def control(cls, **payload: Any) -> "StreamTuple":
        """A control tuple (sync messages; schema-free by design)."""
        return cls(payload=payload, kind=TupleKind.CONTROL)

    @classmethod
    def punctuation(cls) -> "StreamTuple":
        """An end-of-stream marker."""
        return cls(kind=TupleKind.PUNCTUATION)

    @property
    def is_data(self) -> bool:
        return self.kind is TupleKind.DATA

    @property
    def is_control(self) -> bool:
        return self.kind is TupleKind.CONTROL

    @property
    def is_punctuation(self) -> bool:
        return self.kind is TupleKind.PUNCTUATION

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-style access with default."""
        return self.payload.get(key, default)

    def nbytes(self) -> int:
        """Approximate wire size — used by the cluster cost model.

        Vectors dominate; scalars are costed at 8 bytes, strings at their
        UTF-8 length, opaque objects at 64 bytes unless they expose
        ``nbytes``.
        """
        total = 16  # header
        for value in self.payload.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, str):
                total += len(value.encode())
            elif hasattr(value, "nbytes"):
                total += int(value.nbytes)  # type: ignore[arg-type]
            else:
                total += 8 if isinstance(value, (int, float)) else 64
        return total


# ---------------------------------------------------------------------------
# Wire serialization: explicit cross-process round-tripping
# ---------------------------------------------------------------------------
#
# Tuples that cross a process boundary must not rely on implicit pickling
# of operator-attached payloads: schemas are interned singletons (pickling
# one per tuple breaks identity checks and wastes bytes), Eigensystem
# payloads carry numpy state with a documented dict form, and anything
# falling back to raw pickle should be *visible* so tests can assert the
# hot path never takes it.  ``to_wire``/``from_wire`` make every schema —
# BLOCK_SCHEMA, OBSERVATION_SCHEMA, control and punctuation tuples —
# round-trip explicitly.

_SCHEMA_REGISTRY: dict[str, StreamSchema] = {}
_SCHEMA_NAMES: dict[int, str] = {}

#: Wire-level accounting, exposed so transports and tests can verify the
#: hot path: ``pickled_payloads`` counts payload values that fell back to
#: opaque pickling (must stay 0 for block traffic);
#: ``unknown_schema`` counts messages rejected for naming a schema the
#: receiver has not registered; ``schemas_registered`` counts schemas
#: lazily interned from wire-carried descriptors; ``rejected_payloads``
#: counts payload values refused by the decode allowlist / no-pickle
#: policy.
_WIRE_STATS = {
    "tuples": 0,
    "pickled_payloads": 0,
    "unknown_schema": 0,
    "schemas_registered": 0,
    "rejected_payloads": 0,
}

#: Decode allowlist for ``__wire__ == "dict"`` payloads: (module,
#: qualname) -> class.  Wire messages can arrive from a TCP socket, so
#: the receiver must never import a module named by the message itself.
_WIRE_TYPES: dict[tuple[str, str], type] = {}
_wire_types_seeded = False

#: Cached wire descriptors (field name -> FieldType value) per interned
#: schema object, so ``describe_schema=True`` costs one dict build per
#: schema, not per tuple.
_SCHEMA_DESCRIPTORS: dict[int, dict[str, str]] = {}


def register_wire_type(cls: type) -> type:
    """Allow ``cls`` to be decoded from ``__wire__ == "dict"`` payloads.

    ``cls`` must implement the documented dict round-trip
    (``to_dict``/``from_dict``).  Decoding is restricted to registered
    types because the module/qualname in a wire message is attacker
    input on a TCP transport — importing it verbatim would execute
    arbitrary code.  Usable as a class decorator; returns ``cls``.
    """
    if not (hasattr(cls, "from_dict") and hasattr(cls, "to_dict")):
        raise TypeError(
            f"{cls!r} must implement to_dict/from_dict to be a wire type"
        )
    _WIRE_TYPES[(cls.__module__, cls.__qualname__)] = cls
    return cls


def _seed_wire_types() -> None:
    """Register the library's own dict-capable payload classes (lazy)."""
    global _wire_types_seeded
    if _wire_types_seeded:
        return
    _wire_types_seeded = True
    from ..core.eigensystem import Eigensystem

    register_wire_type(Eigensystem)


def register_schema(name: str, schema: StreamSchema) -> StreamSchema:
    """Intern ``schema`` under ``name`` for wire round-tripping.

    Registration is idempotent for the same object; re-registering a
    *different* schema under an existing name is an error (the name is
    the cross-process identity).
    """
    existing = _SCHEMA_REGISTRY.get(name)
    if existing is not None and existing is not schema:
        raise ValueError(f"schema name {name!r} already registered")
    _SCHEMA_REGISTRY[name] = schema
    _SCHEMA_NAMES[id(schema)] = name
    return schema


def lookup_schema(name: str) -> StreamSchema | None:
    """The interned schema for ``name`` (``None`` when unknown)."""
    return _SCHEMA_REGISTRY.get(name)


def schema_name(schema: StreamSchema | None) -> str | None:
    """The registered name of ``schema`` (``None`` when unregistered)."""
    if schema is None:
        return None
    return _SCHEMA_NAMES.get(id(schema))


def wire_stats() -> dict[str, int]:
    """A snapshot of the wire-serialization counters."""
    return dict(_WIRE_STATS)


def reset_wire_stats() -> None:
    """Zero the wire counters (test isolation)."""
    for key in _WIRE_STATS:
        _WIRE_STATS[key] = 0


def _encode_value(value: Any) -> Any:
    # numpy arrays and plain scalars ship as-is: multiprocessing's
    # transport pickles them efficiently (arrays via buffer protocol).
    if value is None or isinstance(
        value, (bool, int, float, str, bytes, np.ndarray, np.generic)
    ):
        return value
    to_dict = getattr(value, "to_dict", None)
    if to_dict is not None and hasattr(type(value), "from_dict"):
        cls = type(value)
        return {
            "__wire__": "dict",
            "module": cls.__module__,
            "qualname": cls.__qualname__,
            "data": to_dict(),
        }
    import pickle

    _WIRE_STATS["pickled_payloads"] += 1
    return {"__wire__": "pickle", "data": pickle.dumps(value)}


def _decode_value(value: Any, *, allow_pickle: bool = True) -> Any:
    if isinstance(value, dict) and "__wire__" in value:
        if value["__wire__"] == "dict":
            # Never import from the message: the (module, qualname) pair
            # is untrusted input over TCP.  Only classes registered via
            # register_wire_type decode; everything else is a counted
            # rejection.
            _seed_wire_types()
            cls = _WIRE_TYPES.get((value["module"], value["qualname"]))
            if cls is None:
                _WIRE_STATS["rejected_payloads"] += 1
                raise WireDecodeError(
                    f"wire payload names unregistered type "
                    f"{value['module']}.{value['qualname']}; the receiver "
                    f"must register_wire_type() it explicitly"
                )
            return cls.from_dict(value["data"])
        if value["__wire__"] == "pickle":
            if not allow_pickle:
                _WIRE_STATS["rejected_payloads"] += 1
                raise WireDecodeError(
                    "pickled wire payload refused: this transport decodes "
                    "with allow_pickle=False (unpickling socket bytes "
                    "executes arbitrary code)"
                )
            import pickle

            return pickle.loads(value["data"])
    return value


def _schema_descriptor(schema: StreamSchema) -> dict[str, str]:
    desc = _SCHEMA_DESCRIPTORS.get(id(schema))
    if desc is None:
        desc = {name: ftype.value for name, ftype in schema.fields.items()}
        _SCHEMA_DESCRIPTORS[id(schema)] = desc
    return desc


def to_wire(
    tup: StreamTuple, *, describe_schema: bool = False
) -> dict[str, Any]:
    """Encode ``tup`` as a transport-friendly plain dict.

    The schema travels by registered *name* (interned on arrival), the
    ``seq`` id is preserved exactly, and payload values are encoded via
    :func:`_encode_value` — arrays/scalars pass through, ``to_dict``
    -capable objects (e.g. :class:`~repro.core.eigensystem.Eigensystem`)
    use their documented dict form, and anything else falls back to a
    counted pickle.

    ``describe_schema=True`` additionally ships the schema's field
    descriptor so a receiver whose registry does not know the name (a
    remote host with a different import order) can register it lazily
    instead of raising :class:`UnknownSchemaError`.  The cluster
    transport turns this on; same-image transports (the process
    runtime's queues) do not need the extra bytes.
    """
    _WIRE_STATS["tuples"] += 1
    name = schema_name(tup.schema)
    msg = {
        "kind": tup.kind.value,
        "seq": tup.seq,
        "schema": name,
        "event_ts": tup.event_ts,
        "payload": {k: _encode_value(v) for k, v in tup.payload.items()},
    }
    if describe_schema and name is not None:
        msg["schema_fields"] = _schema_descriptor(tup.schema)
    return msg


def from_wire(
    msg: Mapping[str, Any], *, allow_pickle: bool = True
) -> StreamTuple:
    """Rebuild the :class:`StreamTuple` encoded by :func:`to_wire`.

    Payloads were validated at origin, so reconstruction skips
    re-validation (the frozen dataclass is built schema-less, then the
    interned schema and original ``seq`` are restored in place).

    A message naming a schema this process has not registered raises
    :class:`UnknownSchemaError` (counted in
    ``wire_stats()["unknown_schema"]``) unless it carries a
    ``schema_fields`` descriptor, in which case the schema is built and
    registered on the spot (counted in ``schemas_registered``).
    ``allow_pickle=False`` refuses pickle-fallback payload values with
    :class:`WireDecodeError` — required for sockets, where pickled
    bytes are untrusted.
    """
    payload = {
        k: _decode_value(v, allow_pickle=allow_pickle)
        for k, v in msg["payload"].items()
    }
    tup = StreamTuple(payload=payload, kind=TupleKind(msg["kind"]))
    name = msg.get("schema")
    if name is not None:
        schema = _SCHEMA_REGISTRY.get(name)
        if schema is None:
            fields = msg.get("schema_fields")
            if fields:
                schema = register_schema(
                    name,
                    StreamSchema(
                        {k: FieldType(v) for k, v in fields.items()}
                    ),
                )
                _WIRE_STATS["schemas_registered"] += 1
            else:
                _WIRE_STATS["unknown_schema"] += 1
                raise UnknownSchemaError(
                    f"wire message names schema {name!r}, which this "
                    f"process has not registered; import the module that "
                    f"registers it, or have the sender use "
                    f"to_wire(..., describe_schema=True)"
                )
        object.__setattr__(tup, "schema", schema)
    object.__setattr__(tup, "seq", int(msg["seq"]))
    event_ts = msg.get("event_ts")
    if event_ts is not None:
        object.__setattr__(tup, "event_ts", float(event_ts))
    return tup


def tuple_from_fields(
    payload: Mapping[str, Any],
    kind: TupleKind,
    schema: StreamSchema | None,
    seq: int,
    event_ts: float | None = None,
) -> StreamTuple:
    """Build a tuple with an explicit ``seq``, skipping validation.

    Used by transports reconstructing tuples from already-validated
    bytes (e.g. shared-memory ring slots) where re-validation would cost
    a payload copy.
    """
    tup = StreamTuple(payload=payload, kind=kind)
    if schema is not None:
        object.__setattr__(tup, "schema", schema)
    object.__setattr__(tup, "seq", int(seq))
    if event_ts is not None:
        object.__setattr__(tup, "event_ts", float(event_ts))
    return tup


def stamp_event_time(tup: StreamTuple, ts: float) -> StreamTuple:
    """Stamp ``event_ts`` on a frozen tuple in place (returns it).

    Engines call this at source emission — the single point where wall
    clock becomes event time.  ``time.time()`` (not ``perf_counter``) is
    the clock on purpose: it is comparable across processes, which the
    shm/queue transports rely on.  Tuples already stamped are left
    untouched so replayed/restored tuples keep their original lineage.

    **Wall-clock contract.**  ``event_ts`` is epoch seconds from the
    *stamping host's* clock.  Consumers on the same machine may subtract
    it from their own ``time.time()`` directly (the e2e-latency
    histograms and watermark gauges do).  Across machines — the cluster
    runtime ships stamped tuples over TCP — that difference additionally
    absorbs the clock offset between the two hosts; hosts are expected
    to be NTP-disciplined, and the telemetry layer reports the observed
    signed offset as the ``repro_clock_skew_seconds`` gauge (see
    :class:`~repro.streams.telemetry.WatermarkTracker`) instead of
    silently clamping it away, warning once when it exceeds the
    threshold.  Latency/lag readings are only trustworthy up to that
    reported skew.
    """
    if tup.event_ts is None:
        object.__setattr__(tup, "event_ts", float(ts))
    return tup


def inherit_event_time(
    derived: StreamTuple, source: StreamTuple
) -> StreamTuple:
    """Propagate event-time lineage from ``source`` onto ``derived``.

    Used by operators producing derived tuples (unbatched rows,
    diagnostics) so the low watermark survives transformation.  Keeps
    the *older* timestamp when both carry one — a derived tuple can
    never be fresher than its inputs.
    """
    src_ts = source.event_ts
    if src_ts is None:
        return derived
    if derived.event_ts is None or src_ts < derived.event_ts:
        object.__setattr__(derived, "event_ts", src_ts)
    return derived
