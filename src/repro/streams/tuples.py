"""Typed stream tuples — the data currency of the engine.

InfoSphere Streams applications exchange "tuples, having the data
structure specified by the application" (Section III).  We model the same
idea: a :class:`StreamSchema` declares named, typed fields; a
:class:`StreamTuple` is a validated record flowing along a stream, tagged
as data / control / punctuation.  Control tuples implement the
synchronization messages of Section III-B; punctuation marks end-of-stream
(used for orderly shutdown and final-state flushes).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["FieldType", "StreamSchema", "TupleKind", "StreamTuple", "SchemaError"]

_seq_counter = itertools.count()


class SchemaError(TypeError):
    """A tuple payload does not match its declared schema."""


class FieldType(enum.Enum):
    """Field types supported by stream schemas."""

    FLOAT = "float"
    INT = "int"
    STRING = "str"
    VECTOR = "vector"  # 1-D float64 numpy array
    MATRIX = "matrix"  # 2-D float64 numpy array (a (k, d) micro-batch)
    OBJECT = "object"  # opaque payload (e.g. a serialized eigensystem)

    def check(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for this field type."""
        if self is FieldType.FLOAT:
            return isinstance(value, (float, int)) and not isinstance(value, bool)
        if self is FieldType.INT:
            return isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            )
        if self is FieldType.STRING:
            return isinstance(value, str)
        if self is FieldType.VECTOR:
            return isinstance(value, np.ndarray) and value.ndim == 1
        if self is FieldType.MATRIX:
            return isinstance(value, np.ndarray) and value.ndim == 2
        return True  # OBJECT


@dataclass(frozen=True)
class StreamSchema:
    """Ordered, named, typed fields of a stream.

    Example::

        OBS = StreamSchema({"x": FieldType.VECTOR, "seq": FieldType.INT})
    """

    fields: Mapping[str, FieldType]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("schema must declare at least one field")
        for name, ftype in self.fields.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"invalid field name {name!r}")
            if not isinstance(ftype, FieldType):
                raise ValueError(f"field {name!r} has non-FieldType {ftype!r}")

    def validate(self, payload: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``payload`` matches exactly."""
        missing = set(self.fields) - set(payload)
        extra = set(payload) - set(self.fields)
        if missing or extra:
            raise SchemaError(
                f"payload fields mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for name, ftype in self.fields.items():
            if not ftype.check(payload[name]):
                raise SchemaError(
                    f"field {name!r} expects {ftype.value}, got "
                    f"{type(payload[name]).__name__}"
                )

    def __contains__(self, name: str) -> bool:
        return name in self.fields


class TupleKind(enum.Enum):
    """What a tuple means to the runtime."""

    DATA = "data"
    CONTROL = "control"
    PUNCTUATION = "punctuation"


@dataclass(frozen=True)
class StreamTuple:
    """One record on a stream.

    Attributes
    ----------
    payload:
        Field name → value; validated against ``schema`` when one is given.
    kind:
        Data / control / punctuation.
    seq:
        Globally-unique monotone sequence id (assigned automatically).
    """

    payload: Mapping[str, Any] = field(default_factory=dict)
    kind: TupleKind = TupleKind.DATA
    schema: StreamSchema | None = None
    seq: int = field(default_factory=lambda: next(_seq_counter))

    def __post_init__(self) -> None:
        if self.schema is not None and self.kind is TupleKind.DATA:
            self.schema.validate(self.payload)

    @classmethod
    def data(
        cls, schema: StreamSchema | None = None, **payload: Any
    ) -> "StreamTuple":
        """A data tuple (validated against ``schema`` when provided)."""
        return cls(payload=payload, kind=TupleKind.DATA, schema=schema)

    @classmethod
    def control(cls, **payload: Any) -> "StreamTuple":
        """A control tuple (sync messages; schema-free by design)."""
        return cls(payload=payload, kind=TupleKind.CONTROL)

    @classmethod
    def punctuation(cls) -> "StreamTuple":
        """An end-of-stream marker."""
        return cls(kind=TupleKind.PUNCTUATION)

    @property
    def is_data(self) -> bool:
        return self.kind is TupleKind.DATA

    @property
    def is_control(self) -> bool:
        return self.kind is TupleKind.CONTROL

    @property
    def is_punctuation(self) -> bool:
        return self.kind is TupleKind.PUNCTUATION

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Dict-style access with default."""
        return self.payload.get(key, default)

    def nbytes(self) -> int:
        """Approximate wire size — used by the cluster cost model.

        Vectors dominate; scalars are costed at 8 bytes, strings at their
        UTF-8 length, opaque objects at 64 bytes unless they expose
        ``nbytes``.
        """
        total = 16  # header
        for value in self.payload.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, str):
                total += len(value.encode())
            elif hasattr(value, "nbytes"):
                total += int(value.nbytes)  # type: ignore[arg-type]
            else:
                total += 8 if isinstance(value, (int, float)) else 64
        return total
