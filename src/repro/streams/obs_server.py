"""Live observability endpoint: ``/metrics``, ``/health``, ``/health/model``.

A tiny stdlib-only HTTP server (no new dependencies — the container
rule) that exposes the running pipeline to scrapers and operators:

* ``GET /metrics`` — the full :class:`~repro.streams.telemetry.MetricsRegistry`
  in the Prometheus text exposition format (``text/plain; version=0.0.4``).
* ``GET /health`` — the rule engine's verdict evaluated *live* for this
  request: ``{"status": "OK"|"DEGRADED"|"CRITICAL", "firing": [...]}``.
  The HTTP status code mirrors the verdict (200 for OK/DEGRADED so load
  balancers don't yank a degraded-but-serving replica, 503 for
  CRITICAL).
* ``GET /health/model`` — per-engine model-health snapshots (subspace
  affinity, eigenspectrum drift, r² control chart, gap/outlier rates)
  plus the full rule-engine snapshot, for humans debugging *why* a
  verdict fired.
* ``GET /health/model/<engine_id>`` — one engine's snapshot; unknown
  ids answer with a JSON 404 listing the known ids.

Unknown paths also answer JSON 404, and every accepted connection gets
a socket timeout (``conn_timeout_s``) so slow or hung clients can't pin
handler threads.

The server runs on a daemon :class:`~http.server.ThreadingHTTPServer`
thread; ``port=0`` picks a free port (``server.port`` reports it), so
tests and multi-run hosts never collide.  Use as a context manager or
call :meth:`start`/:meth:`stop` explicitly::

    with ObservabilityServer(telemetry, rule_engine=engine) as srv:
        engine_.run(graph)
        print(srv.url)  # scrape while running
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

__all__ = ["ObservabilityServer"]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_default(obj: Any):
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in ObservabilityServer.start().
    server_ref: "ObservabilityServer"

    # Per-connection socket timeout: StreamRequestHandler.setup()
    # applies this to the accepted socket, so a client that connects
    # and then hangs (or dribbles a request line forever) releases its
    # handler thread instead of pinning it for the life of the run.
    # Overridden per-server via the factory in start().
    timeout = 10.0

    # Silence the default stderr request log (one line per scrape would
    # drown a soak run); requests are counted on the server instead.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def log_error(self, format: str, *args: Any) -> None:  # noqa: A002
        # handle_one_request routes read/write timeouts here before
        # dropping the connection; count them so tests/operators can see
        # stuck-client churn (everything else stays silent like
        # log_message).
        if format.startswith("Request timed out"):
            self.server_ref.n_timeouts += 1

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        srv = self.server_ref
        srv.n_requests += 1
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = srv.telemetry.to_prometheus().encode()
                self._reply(200, _PROM_CONTENT_TYPE, body)
            elif path == "/health":
                self._reply_json(*srv.health_payload())
            elif path == "/health/model":
                self._reply_json(200, srv.model_payload())
            elif path.startswith("/health/model/"):
                engine_id = path[len("/health/model/"):]
                self._reply_json(*srv.engine_payload(engine_id))
            else:
                self._reply_json(404, {
                    "error": f"no such path: {path}",
                    "paths": [
                        "/metrics", "/health", "/health/model",
                        "/health/model/<engine_id>",
                    ],
                })
        except Exception as exc:  # the obs plane must not take down a run
            srv.n_errors += 1
            try:
                self._reply_json(500, {"error": str(exc)})
            except Exception:
                pass

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=_json_default).encode()
        self._reply(status, "application/json", body)


class ObservabilityServer:
    """Background HTTP server exposing a run's telemetry and health.

    Parameters
    ----------
    telemetry:
        The run's :class:`~repro.streams.telemetry.Telemetry` (serves
        ``/metrics``).
    rule_engine:
        Optional :class:`~repro.streams.health.HealthRuleEngine`.
        Without one, ``/health`` reports OK with a note that no rules
        are wired (liveness-only mode).
    host / port:
        Bind address; ``port=0`` (default) auto-assigns a free port.
    conn_timeout_s:
        Per-connection socket timeout applied to every accepted
        handler: a client that connects and goes silent is dropped
        after this many seconds instead of pinning a handler thread
        (counted in ``n_timeouts``).
    """

    def __init__(
        self,
        telemetry,
        *,
        rule_engine=None,
        host: str = "127.0.0.1",
        port: int = 0,
        conn_timeout_s: float = 10.0,
    ) -> None:
        if conn_timeout_s <= 0:
            raise ValueError("conn_timeout_s must be positive")
        self.telemetry = telemetry
        self.rule_engine = rule_engine
        self.host = host
        self.conn_timeout_s = float(conn_timeout_s)
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.n_requests = 0
        self.n_errors = 0
        self.n_timeouts = 0

    # -- payloads (also callable directly, e.g. from tests) --------------

    def health_payload(self) -> tuple[int, dict[str, Any]]:
        """(HTTP status, JSON body) for ``/health``."""
        if self.rule_engine is None:
            return 200, {"status": "OK", "firing": [], "rules_wired": False}
        verdict = self.rule_engine.evaluate()
        status = 503 if verdict.status == "CRITICAL" else 200
        return status, {
            "status": verdict.status,
            "firing": verdict.firing,
            "ts": verdict.ts,
            "rules_wired": True,
        }

    def model_payload(self) -> dict[str, Any]:
        """JSON body for ``/health/model``."""
        if self.rule_engine is None:
            return {"engines": {}, "rules_wired": False}
        snap = self.rule_engine.snapshot()
        return {
            "engines": snap.get("engines", {}),
            "snapshot": {
                k: v for k, v in snap.items() if k != "engines"
            },
            "rules_wired": True,
        }

    def engine_payload(self, engine_id: str) -> tuple[int, dict[str, Any]]:
        """(HTTP status, JSON body) for ``/health/model/<engine_id>``.

        Unknown ids get a JSON 404 naming the known ids, not a bare
        error page.
        """
        payload = self.model_payload()
        engines = payload.get("engines", {})
        # Monitor ids are ints; the URL path hands us a string.
        for key, snapshot in engines.items():
            if str(key) == engine_id:
                return 200, {
                    "engine": str(key),
                    "snapshot": snapshot,
                    "rules_wired": payload.get("rules_wired", False),
                }
        return 404, {
            "error": f"no such engine: {engine_id}",
            "known_engines": sorted(str(k) for k in engines),
            "rules_wired": payload.get("rules_wired", False),
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (only valid after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._httpd is not None:
            return self
        handler = type("_BoundHandler", (_Handler,), {
            "server_ref": self,
            "timeout": self.conn_timeout_s,
        })
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
