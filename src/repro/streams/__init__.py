"""A from-scratch stream-processing engine (the InfoSphere substitute).

Typed tuples, operators with ports and lifecycle, a dataflow graph that
allows the cyclic control topologies of the paper's sync pattern, operator
fusion into processing elements, and three runtimes: a deterministic
synchronous engine, a threaded engine with bounded queues and
backpressure, and a multi-process engine with shared-memory block
transport.
"""

from .batcher import BLOCK_SCHEMA, FLUSH_REASONS, Batcher, Unbatcher
from .engine import RunStats, SynchronousEngine, ThreadedEngine
from .fusion import FusionPlan, ProcessingElement, optimize_fusion
from .graph import Edge, Graph, GraphError
from .network_sources import (
    HTTPVectorSource,
    TailingFileSource,
    TCPVectorSource,
    serve_vectors,
)
from .operators import FilterOperator, Functor, Operator, Sink, Source, Union
from .procengine import ProcessEngine
from .shm import BlockRing, RingFull, RingItem, safe_mp_context
from .sinks import CallbackSink, CheckpointSink, CollectingSink, CSVSink, RateProbe
from .sources import (
    OBSERVATION_SCHEMA,
    CallbackSource,
    CSVFileSource,
    DirectorySource,
    VectorSource,
)
from .split import Split
from .supervision import (
    EngineAborted,
    FailFast,
    FailurePolicy,
    FaultInjector,
    InjectedFault,
    OperatorFailure,
    RestartFromCheckpoint,
    Retry,
    SkipTuple,
    StallDetected,
    SupervisionStats,
    Supervisor,
    Watchdog,
)
from .telemetry import (
    BackpressureSampler,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Telemetry,
    TelemetryConfig,
    Tracer,
    load_events,
)
from .telemetry_report import render_report
from .throttle import Throttle
from .tuples import (
    FieldType,
    SchemaError,
    StreamSchema,
    StreamTuple,
    TupleKind,
    from_wire,
    lookup_schema,
    register_schema,
    reseed_sequence,
    schema_name,
    to_wire,
    wire_stats,
)

__all__ = [
    "BLOCK_SCHEMA",
    "BackpressureSampler",
    "Batcher",
    "Counter",
    "FLUSH_REASONS",
    "CSVFileSource",
    "CSVSink",
    "CallbackSink",
    "CallbackSource",
    "CheckpointSink",
    "CollectingSink",
    "DirectorySource",
    "Edge",
    "EngineAborted",
    "EventLog",
    "FailFast",
    "FailurePolicy",
    "FaultInjector",
    "FieldType",
    "FilterOperator",
    "Functor",
    "FusionPlan",
    "Gauge",
    "Graph",
    "HTTPVectorSource",
    "GraphError",
    "Histogram",
    "InjectedFault",
    "MetricsRegistry",
    "BlockRing",
    "OBSERVATION_SCHEMA",
    "Operator",
    "OperatorFailure",
    "optimize_fusion",
    "ProcessEngine",
    "ProcessingElement",
    "RateProbe",
    "RestartFromCheckpoint",
    "Retry",
    "RingFull",
    "RingItem",
    "RunStats",
    "SchemaError",
    "Sink",
    "SkipTuple",
    "Source",
    "Span",
    "Split",
    "StallDetected",
    "SupervisionStats",
    "Supervisor",
    "TCPVectorSource",
    "TailingFileSource",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "StreamSchema",
    "StreamTuple",
    "SynchronousEngine",
    "ThreadedEngine",
    "Throttle",
    "TupleKind",
    "Unbatcher",
    "Union",
    "Watchdog",
    "from_wire",
    "load_events",
    "lookup_schema",
    "register_schema",
    "render_report",
    "reseed_sequence",
    "safe_mp_context",
    "schema_name",
    "serve_vectors",
    "to_wire",
    "wire_stats",
]
