"""Operator-level profiling — the InfoSphere profiler stand-in.

"IBM InfoSphere Streams provides a set of tools for profiling the
application.  The profiling tool measures the performance of each
component and the data channels traffic" (§III-D).  Our engines already
count per-operator tuple traffic; this module adds per-operator
*exclusive processing time*, correctly attributed even when fused
operators call each other synchronously (a fused downstream dispatch
runs inside the upstream's ``process()`` — its time must not be billed
to the upstream operator).

Attribution uses a per-thread dispatch stack: each profiled dispatch
measures its wall time, subtracts the accumulated time of nested child
dispatches, and reports the nested total upward.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operators import Operator
    from .tuples import StreamTuple

__all__ = ["profiled_dispatch", "enable_profiling", "supervision_report"]

_tls = threading.local()


def profiled_dispatch(
    op: "Operator",
    inner: Callable[["StreamTuple", int], None],
    tup: "StreamTuple",
    port: int,
) -> None:
    """Run ``inner(tup, port)`` and bill exclusive time to ``op``."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(0.0)
    start = time.perf_counter()
    try:
        inner(tup, port)
    finally:
        elapsed = time.perf_counter() - start
        child_time = stack.pop()
        exclusive = max(elapsed - child_time, 0.0)
        op.processing_time_s += exclusive
        # Telemetry view: when a registry histogram is attached (see
        # Telemetry.attach_graph with timing=True) the same measurement
        # also feeds the per-operator latency distribution — one clock,
        # two read paths.
        hist = getattr(op, "_latency_hist", None)
        if hist is not None:
            hist.observe(exclusive)
        if stack:
            stack[-1] += elapsed


def enable_profiling(operators) -> None:
    """Mark every operator in ``operators`` for profiled dispatch."""
    for op in operators:
        op._profiled = True


def supervision_report(stats) -> str:
    """Render a run's failure/recovery counters as an aligned table.

    ``stats`` is a :class:`~repro.streams.engine.RunStats` from an engine
    run with a :class:`~repro.streams.supervision.Supervisor` attached;
    operators with no recorded activity are omitted.  Returns a one-line
    note when the run was fault-free.
    """
    names = sorted(
        set(stats.failures)
        | set(stats.retries)
        | set(stats.skipped_tuples)
        | set(stats.restarts)
        | set(stats.recovery_time_s)
    )
    if not names:
        return "supervision: no failures recorded"
    header = (
        f"{'operator':<20} {'failures':>8} {'retries':>8} "
        f"{'skipped':>8} {'restarts':>8} {'recovery_s':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in names:
        lines.append(
            f"{name:<20} {stats.failures.get(name, 0):>8} "
            f"{stats.retries.get(name, 0):>8} "
            f"{stats.skipped_tuples.get(name, 0):>8} "
            f"{stats.restarts.get(name, 0):>8} "
            f"{stats.recovery_time_s.get(name, 0.0):>10.4f}"
        )
    return "\n".join(lines)
