"""Shared-memory block transport for the multi-process runtime.

The paper's PEs exchange tuples over InfoSphere network connectors; our
:class:`~repro.streams.procengine.ProcessEngine` exchanges them over two
transports with very different cost profiles:

* **Block ring** (:class:`BlockRing`) — a bounded single-producer /
  single-consumer ring buffer living in POSIX shared memory.  Each slot
  holds one :data:`~repro.streams.batcher.BLOCK_SCHEMA` matrix tuple
  (a ``(k, d)`` observation block plus its per-row sequence numbers).
  The producer copies the block *once* into the mapped slot; the
  consumer dispatches a **numpy view straight into the shared mapping**
  — no pickling, no second copy — and releases the slot after the
  dispatch returns.  This is the hot path: with the
  :class:`~repro.streams.batcher.Batcher` upstream, virtually all data
  bytes cross process boundaries through rings.
* **Wire queue** — a bounded ``multiprocessing.Queue`` carrying
  explicitly serialized control/scalar tuples
  (:func:`repro.streams.tuples.to_wire`).  Low rate, pickled, ordered.

Ring design notes
-----------------
Rings are SPSC by construction (one ring per producer-process →
consumer-process pair), so the only synchronization is a pair of
monotonically increasing 64-bit cursors (``write_idx``, ``read_idx``)
stored in the mapping itself, each written *only by its own side* as a
single aligned store, which x86-TSO (and the GIL on each side) makes
safely visible in order: the producer fills the slot *then* publishes
``write_idx``; the consumer reads the slot *then* publishes
``read_idx``.  Full/empty waits
are short polls (no semaphores), which keeps the ring state fully
crash-recoverable: a consumer that dies mid-dispatch and is restarted
re-attaches and resumes from the last *committed* ``read_idx`` — the one
in-flight slot is re-delivered rather than lost.

Sizing guidance lives in ``docs/performance.md`` (§ shm transport
tuning): ``slots × slot_rows`` bounds the in-flight rows per edge (the
backpressure window), ``slot_rows`` should be ≥ the upstream batch size
or blocks fall back to the pickled queue path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import struct
import threading
import time
from typing import Callable

import numpy as np

__all__ = [
    "BlockRing",
    "RingFull",
    "RingItem",
    "ensure_shared_tracker",
    "safe_mp_context",
]


def ensure_shared_tracker() -> None:
    """Start the resource-tracker daemon *before* any worker forks.

    Every process that creates or attaches a shared-memory segment
    registers it with :mod:`multiprocessing.resource_tracker`.  When the
    daemon is already running at fork time, all children inherit its fd
    and the registrations land in one shared cache (a set, so
    create-side and attach-side registrations collapse and a single
    unlink balances them).  If instead each child lazily starts its own
    tracker, a worker's attach registration outlives the coordinator's
    unlink and the orphan tracker prints spurious leak warnings at exit.
    """
    try:  # pragma: no cover - interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass

_CTRL = struct.Struct("<qq")  # write_idx, read_idx
#: Single-cursor view: each side commits ONLY its own cursor (producer at
#: offset 0, consumer at offset 8).  Writing both as a pair would race —
#: a producer's put could overwrite the consumer's just-committed
#: read_idx with a stale value, re-delivering (duplicating) a block.
_CURSOR = struct.Struct("<q")
# dst_idx, dst_port, count, tuple_seq, event_ts (epoch seconds; 0.0
# encodes "no event-time lineage" — tuples are stamped with time.time(),
# which is never 0.0 on any real clock).
_META = struct.Struct("<qqqqd")


class RingFull(RuntimeError):
    """A blocking ring put timed out or was aborted."""


def safe_mp_context(prefer: str | None = None):
    """A :mod:`multiprocessing` context that is safe to start *now*.

    ``fork`` is the cheapest start method but forking a multi-threaded
    process can deadlock the child on locks held by threads that do not
    survive the fork (the classic reason one must never fork while
    :class:`~repro.streams.engine.ThreadedEngine` threads are live).
    This helper picks ``fork`` only when the calling process is
    single-threaded, otherwise falls back to ``forkserver`` (children
    fork from a clean single-threaded server) and finally ``spawn``.

    Pass ``prefer`` to force a specific method (validated by
    :func:`multiprocessing.get_context`).
    """
    if prefer is not None:
        return mp.get_context(prefer)
    methods = mp.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return mp.get_context("fork")
    for method in ("forkserver", "spawn"):
        if method in methods:
            return mp.get_context(method)
    return mp.get_context()  # pragma: no cover - exotic platforms


class RingItem:
    """One block read from a ring — **views into shared memory**.

    ``xs`` and ``seqs`` alias the ring slot; they are valid only until
    :meth:`BlockRing.release` commits the read cursor.  Consumers that
    retain block payloads beyond the dispatch must copy.
    """

    __slots__ = (
        "dst_idx", "dst_port", "xs", "seqs", "tuple_seq", "event_ts",
    )

    def __init__(self, dst_idx, dst_port, xs, seqs, tuple_seq, event_ts=None):
        self.dst_idx = int(dst_idx)
        self.dst_port = int(dst_port)
        self.xs = xs
        self.seqs = seqs
        self.tuple_seq = int(tuple_seq)
        self.event_ts = event_ts


class BlockRing:
    """Bounded SPSC ring of fixed-capacity block slots in shared memory.

    Parameters
    ----------
    name:
        Shared-memory segment name (``create=True`` makes it).
    slots:
        Number of block slots (the backpressure bound of this edge).
    slot_rows:
        Maximum rows per block; larger blocks must use the queue path.
    dim:
        Row dimensionality ``d`` (fixed per ring; rings are created
        lazily once the first block reveals it).
    create:
        Create the segment (producer side) vs attach (consumer side).
    """

    def __init__(
        self,
        name: str,
        *,
        slots: int,
        slot_rows: int,
        dim: int,
        create: bool = False,
    ) -> None:
        from multiprocessing import shared_memory

        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_rows < 1:
            raise ValueError(f"slot_rows must be >= 1, got {slot_rows}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.name = name
        self.slots = int(slots)
        self.slot_rows = int(slot_rows)
        self.dim = int(dim)
        self._seqs_bytes = 8 * self.slot_rows
        self._xs_bytes = 8 * self.slot_rows * self.dim
        self._slot_bytes = _META.size + self._seqs_bytes + self._xs_bytes
        total = _CTRL.size + self.slots * self._slot_bytes
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=total
        )
        self._owner = create
        if create:
            _CTRL.pack_into(self._shm.buf, 0, 0, 0)
        # Per-slot numpy views built once: np.frombuffer + reshape cost
        # ~1-2 µs each, which dominates the per-block transport overhead
        # for small blocks.  The views alias the mapping, so they stay
        # valid for the lifetime of this handle and must be dropped
        # before the segment can be unmapped (see close()).
        self._seq_views: list[np.ndarray] = []
        self._xs_views: list[np.ndarray] = []
        for slot in range(self.slots):
            off = _CTRL.size + slot * self._slot_bytes
            self._seq_views.append(
                np.frombuffer(
                    self._shm.buf, dtype=np.int64, count=self.slot_rows,
                    offset=off + _META.size,
                )
            )
            self._xs_views.append(
                np.frombuffer(
                    self._shm.buf, dtype=np.float64,
                    count=self.slot_rows * self.dim,
                    offset=off + _META.size + self._seqs_bytes,
                ).reshape(self.slot_rows, self.dim)
            )
        #: Blocks written / read through this handle (local counters).
        self.blocks_in = 0
        self.blocks_out = 0
        self._pending_release = False

    # -- cursors ---------------------------------------------------------

    def _cursors(self) -> tuple[int, int]:
        return _CTRL.unpack_from(self._shm.buf, 0)

    def depth(self) -> int:
        """Blocks currently buffered (published but unread)."""
        w, r = self._cursors()
        return max(int(w - r), 0)

    def _slot_offset(self, idx: int) -> int:
        return _CTRL.size + (idx % self.slots) * self._slot_bytes

    # -- producer --------------------------------------------------------

    def try_put(
        self,
        dst_idx: int,
        dst_port: int,
        xs: np.ndarray,
        seqs: np.ndarray | None,
        tuple_seq: int,
        event_ts: float | None = None,
    ) -> bool:
        """Publish one block; ``False`` when the ring is full.

        ``xs`` must be ``(k, d)`` with ``k <= slot_rows`` and matching
        ``dim`` — callers route oversized blocks through the queue
        fallback instead.
        """
        k = xs.shape[0]
        if k > self.slot_rows or xs.shape[1] != self.dim:
            raise ValueError(
                f"block shape {xs.shape} does not fit ring slots "
                f"({self.slot_rows} x {self.dim})"
            )
        w, r = self._cursors()
        if w - r >= self.slots:
            return False
        slot = w % self.slots
        off = self._slot_offset(w)
        _META.pack_into(
            self._shm.buf, off, dst_idx, dst_port, k, tuple_seq,
            0.0 if event_ts is None else float(event_ts),
        )
        seq_view = self._seq_views[slot]
        if seqs is not None:
            seq_view[:k] = np.asarray(seqs, dtype=np.int64)
        else:
            seq_view[:k] = -1
        # The single producer-side copy: source array -> mapped slot.
        np.copyto(self._xs_views[slot][:k], xs, casting="same_kind")
        # Publish *after* the slot is fully written (own cursor only).
        _CURSOR.pack_into(self._shm.buf, 0, w + 1)
        self.blocks_in += 1
        return True

    def put(
        self,
        dst_idx: int,
        dst_port: int,
        xs: np.ndarray,
        seqs: np.ndarray | None,
        tuple_seq: int,
        event_ts: float | None = None,
        *,
        timeout_s: float = 60.0,
        poll_s: float = 0.0005,
        should_abort: Callable[[], bool] | None = None,
    ) -> None:
        """Blocking put with backpressure; raises :class:`RingFull` on
        timeout and :class:`RingFull` (aborted) when ``should_abort``."""
        deadline = time.monotonic() + timeout_s
        while not self.try_put(
            dst_idx, dst_port, xs, seqs, tuple_seq, event_ts
        ):
            if should_abort is not None and should_abort():
                raise RingFull(f"ring {self.name} put aborted")
            if time.monotonic() > deadline:
                raise RingFull(
                    f"ring {self.name} full for {timeout_s}s "
                    f"(depth {self.depth()}/{self.slots})"
                )
            time.sleep(poll_s)

    # -- consumer --------------------------------------------------------

    def get(self) -> RingItem | None:
        """The oldest unread block as shared-memory views, or ``None``.

        The slot stays reserved until :meth:`release`; exactly one item
        may be outstanding at a time (SPSC discipline).
        """
        if self._pending_release:
            raise RuntimeError(
                "previous RingItem not released before next get()"
            )
        w, r = self._cursors()
        if r >= w:
            return None
        slot = r % self.slots
        dst_idx, dst_port, count, tuple_seq, event_ts = _META.unpack_from(
            self._shm.buf, self._slot_offset(r)
        )
        seqs = self._seq_views[slot][:count]
        xs = self._xs_views[slot][:count]
        self._pending_release = True
        return RingItem(
            dst_idx, dst_port, xs, seqs, tuple_seq,
            event_ts if event_ts > 0.0 else None,
        )

    def release(self) -> None:
        """Commit the read cursor: the slot becomes writable again."""
        if not self._pending_release:
            return
        _, r = self._cursors()
        _CURSOR.pack_into(self._shm.buf, _CURSOR.size, r + 1)
        self._pending_release = False
        self.blocks_out += 1

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Unmap this handle (consumer views may pin it; best-effort)."""
        # Drop the cached slot views first — they alias the mapping and
        # would otherwise keep it pinned (BufferError) until GC.
        self._seq_views = []
        self._xs_views = []
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views at teardown
            pass

    def unlink(self) -> None:
        """Remove the backing segment (idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def disown(self) -> None:
        """Hand unlink responsibility to another process.

        The Python resource tracker unlinks any segment its creating
        process did not explicitly release, printing a spurious leak
        warning when the coordinator unlinks it later.  A worker that
        creates a ring and ships its name to the coordinator calls this
        to unregister the segment from its local tracker.
        """
        if not self._owner:
            return
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass
        self._owner = False


def ring_name(run_id: str, src: str, dst: str) -> str:
    """A unique, filesystem-safe segment name for one transport edge."""
    return f"repro-{run_id}-{os.getpid()}-{src}-{dst}"
