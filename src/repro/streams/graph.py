"""Dataflow graph: operators plus typed port-to-port connections.

The graph is the static description of the application (the paper's
Fig. 2); runtimes in :mod:`repro.streams.engine` execute it.  Cycles are
allowed — the synchronization pattern (PCA engines ⇄ sync controller) is
inherently cyclic — so validation checks port wiring, not acyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .operators import Operator, Source

__all__ = ["Edge", "Graph", "GraphError"]


class GraphError(ValueError):
    """The graph is structurally invalid."""


@dataclass(frozen=True)
class Edge:
    """A directed connection from an output port to an input port."""

    src: Operator
    src_port: int
    dst: Operator
    dst_port: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.src.name}[{self.src_port}] -> "
            f"{self.dst.name}[{self.dst_port}]"
        )


class Graph:
    """A mutable dataflow graph under construction.

    Multiple edges *from* one output port mean broadcast; multiple edges
    *into* one input port mean merged delivery.  Both are legal, matching
    SPL stream semantics.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._operators: list[Operator] = []
        self._edges: list[Edge] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, op: Operator) -> Operator:
        """Register an operator (names must be unique); returns it."""
        if op.name in self._names:
            raise GraphError(f"duplicate operator name {op.name!r}")
        self._names.add(op.name)
        self._operators.append(op)
        return op

    def connect(
        self,
        src: Operator,
        dst: Operator,
        *,
        out_port: int = 0,
        in_port: int = 0,
    ) -> None:
        """Wire ``src`` output ``out_port`` to ``dst`` input ``in_port``."""
        for op, role in ((src, "source"), (dst, "destination")):
            if op not in self._operators:
                raise GraphError(
                    f"{role} operator {op.name!r} is not in the graph"
                )
        if not 0 <= out_port < src.n_outputs:
            raise GraphError(
                f"{src.name!r} has no output port {out_port} "
                f"(has {src.n_outputs})"
            )
        if not 0 <= in_port < dst.n_inputs:
            raise GraphError(
                f"{dst.name!r} has no input port {in_port} "
                f"(has {dst.n_inputs})"
            )
        edge = Edge(src, out_port, dst, in_port)
        if any(
            e.src is src and e.src_port == out_port
            and e.dst is dst and e.dst_port == in_port
            for e in self._edges
        ):
            raise GraphError(f"duplicate edge {edge!r}")
        self._edges.append(edge)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def operators(self) -> tuple[Operator, ...]:
        return tuple(self._operators)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(self._edges)

    @property
    def sources(self) -> tuple[Source, ...]:
        return tuple(op for op in self._operators if isinstance(op, Source))

    def successors(self, op: Operator, port: int) -> list[tuple[Operator, int]]:
        """``(dst, in_port)`` pairs wired to ``op``'s output ``port``."""
        return [
            (e.dst, e.dst_port)
            for e in self._edges
            if e.src is op and e.src_port == port
        ]

    def in_edges(self, op: Operator) -> list[Edge]:
        """All edges arriving at ``op``."""
        return [e for e in self._edges if e.dst is op]

    def out_edges(self, op: Operator) -> list[Edge]:
        """All edges leaving ``op``."""
        return [e for e in self._edges if e.src is op]

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators)

    def __len__(self) -> int:
        return len(self._operators)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`GraphError` on structural problems.

        Every required (punctuation-tracked) input port must be fed by at
        least one edge; every operator must be reachable from a source; at
        least one source must exist.
        """
        if not self._operators:
            raise GraphError("graph has no operators")
        if not self.sources:
            raise GraphError("graph has no sources")

        fed: dict[tuple[int, int], int] = {}
        for e in self._edges:
            key = (id(e.dst), e.dst_port)
            fed[key] = fed.get(key, 0) + 1
        for op in self._operators:
            for port in range(op.n_inputs):
                if (id(op), port) not in fed and port in op.punctuation_ports:
                    raise GraphError(
                        f"input port {port} of {op.name!r} is not connected"
                    )

        # Reachability from sources (treat edges as undirected is wrong;
        # walk forward from sources, which also covers cyclic sync paths).
        reached: set[int] = set()
        frontier = [op for op in self.sources]
        while frontier:
            op = frontier.pop()
            if id(op) in reached:
                continue
            reached.add(id(op))
            for port in range(op.n_outputs):
                for dst, _ in self.successors(op, port):
                    if id(dst) not in reached:
                        frontier.append(dst)
        unreachable = [
            op.name for op in self._operators if id(op) not in reached
        ]
        if unreachable:
            raise GraphError(
                f"operators unreachable from any source: {unreachable}"
            )
